// Checkpoint/recovery walkthrough for the serving runtime (v2 Engine
// API: the operator is a named, versioned registry entry and every
// journal record is tagged with the bank it pinned), two acts:
//
//   1. Supervised self-healing: a shard is killed mid-load by the
//      deterministic fault injector; the supervisor requeues its
//      in-flight batch and respawns the shard from the latest
//      checkpoint. Clients never notice — every response is bit-exact.
//
//   2. Hard crash + restart: an unsupervised server dies with work
//      queued, in flight, and even accepted-but-never-enqueued. A new
//      server restores from the newest valid checkpoint and replays
//      the journal's unacknowledged requests, reproducing bit-for-bit
//      the outputs the dead server would have returned.
//
// Everything (arrivals, payloads, fault points) derives from one seed,
// printed below: a failing run is reproducible from its log line.
#include <cstdio>
#include <filesystem>
#include <future>
#include <sstream>
#include <vector>

#include "maddness/amm.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace ssma;
using serve::recovery::CheckpointManager;
using serve::recovery::FaultInjector;
using serve::recovery::FaultKind;
using serve::recovery::FaultPlan;
using serve::recovery::FaultSite;
using serve::recovery::RequestJournal;

namespace {

struct Workload {
  maddness::Amm amm;
  maddness::QuantizedActivations pool;
};

Workload make_workload(std::uint64_t seed) {
  Rng rng(seed);
  const int ncodebooks = 8, nout = 16;
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d), w(d, nout);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  Workload wl{maddness::Amm::train(cfg, train, w), {}};

  Matrix fresh(256, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  wl.pool = maddness::quantize_activations(fresh, wl.amm.activation_scale());
  return wl;
}

std::vector<std::uint8_t> payload(const Workload& wl, std::size_t id) {
  const std::size_t r = id % wl.pool.rows;
  return {wl.pool.row(r), wl.pool.row(r) + wl.pool.cols};
}

std::vector<std::int16_t> reference(const Workload& wl,
                                    const std::vector<std::uint8_t>& codes,
                                    std::size_t rows) {
  maddness::QuantizedActivations q;
  q.rows = rows;
  q.cols = wl.pool.cols;
  q.scale = wl.pool.scale;
  q.codes = codes;
  return wl.amm.apply_int16(q);
}

}  // namespace

int main() {
  const std::uint64_t seed = 0x5eedac7ull;
  const Workload wl = make_workload(seed);
  const auto scratch =
      std::filesystem::temp_directory_path() / "ssma-recovery-demo";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  std::printf("recovery demo  seed=0x%llx  scratch=%s\n\n",
              static_cast<unsigned long long>(seed),
              scratch.string().c_str());

  // ---------------------------------------------- act 1: self-healing
  {
    std::printf("[1] supervised pool, shard killed mid-load\n");
    FaultInjector fault(seed);
    FaultPlan kill;
    kill.site = FaultSite::kExecute;  // outputs computed, ack pending
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 10;
    fault.arm(kill);

    CheckpointManager ckpts((scratch / "act1").string(), &fault);
    RequestJournal journal((scratch / "act1.jnl").string());

    serve::ServerOptions opts;
    opts.num_workers = 4;
    opts.batcher.max_batch_tokens = 8;
    opts.recovery.fault = &fault;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoint_every = 64;
    opts.recovery.supervise = true;
    serve::InferenceServer server(opts);
    server.register_model("embed", wl.amm);

    constexpr std::size_t kRequests = 200;
    std::vector<std::future<serve::InferenceResult>> futs;
    for (std::size_t id = 0; id < kRequests; ++id)
      futs.push_back(server.submit("embed", payload(wl, id), 1));

    std::size_t exact = 0;
    for (std::size_t id = 0; id < futs.size(); ++id)
      exact += futs[id].get().outputs ==
               reference(wl, payload(wl, id), 1);
    server.shutdown();

    std::printf("    served %zu/%zu bit-exact, shard respawns: %d\n",
                exact, kRequests, server.respawn_count());
    for (const std::string& line : fault.fired_log())
      std::printf("    fault fired: %s\n", line.c_str());
    const auto snap = server.metrics();
    std::printf("    p99 %.1f us over %zu batches\n\n", snap.p99_us,
                snap.batches);
  }

  // ------------------------------------- act 2: hard crash + restart
  const std::string jnl_path = (scratch / "act2.jnl").string();
  const std::string ckpt_dir = (scratch / "act2").string();
  constexpr std::size_t kRequests = 96;
  std::size_t served_before = 0;
  {
    std::printf("[2] unsupervised server crashes with work outstanding\n");
    FaultInjector fault(seed);
    FaultPlan kill;
    kill.site = FaultSite::kExecute;
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 7;
    fault.arm(kill);
    FaultPlan lost;  // accepted into the WAL, lost before the queue
    lost.site = FaultSite::kEnqueue;
    lost.kind = FaultKind::kKillShard;
    lost.fire_at = 20;
    fault.arm(lost);

    CheckpointManager ckpts(ckpt_dir, &fault);
    RequestJournal journal(jnl_path);

    serve::ServerOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 2 * kRequests;
    opts.batcher.max_batch_tokens = 1;
    opts.batcher.max_wait = std::chrono::microseconds(0);
    opts.recovery.fault = &fault;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoint_every = 16;
    serve::InferenceServer server(opts);
    server.register_model("embed", wl.amm);

    std::vector<std::future<serve::InferenceResult>> futs;
    for (std::size_t id = 0; id < kRequests; ++id)
      futs.push_back(server.submit("embed", payload(wl, id), 1));
    server.shutdown();  // the "crash": stranded futures fail

    for (auto& fut : futs) {
      try {
        fut.get();
        served_before++;
      } catch (const std::exception&) {
      }
    }
    std::printf("    crash: %zu/%zu acknowledged before the shard died\n",
                served_before, kRequests);
  }
  {
    CheckpointManager ckpts(ckpt_dir);
    const auto rs = serve::recovery::recover_state(ckpts, jnl_path);
    std::printf("    restart: checkpoint v%llu, journal %llu accepted / "
                "%llu completed -> %zu to replay\n",
                static_cast<unsigned long long>(rs.checkpoint_version),
                static_cast<unsigned long long>(rs.journal.accepted),
                static_cast<unsigned long long>(rs.journal.completed),
                rs.journal.unacknowledged.size());

    RequestJournal journal(jnl_path);
    serve::ServerOptions opts;
    opts.num_workers = 4;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.journal = &journal;
    auto server = serve::InferenceServer::restore(rs, opts);
    std::printf("    restored registry serves embed@%llu\n",
                static_cast<unsigned long long>(
                    server->registry().latest_version("embed")));
    auto futs = server->replay(rs.journal.unacknowledged);

    std::size_t exact = 0;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const auto& rec = rs.journal.unacknowledged[i];
      exact += futs[i].get().outputs ==
               reference(wl, rec.codes, rec.rows);
    }
    server->shutdown();
    std::printf("    replayed %zu/%zu bit-exact vs the fault-free "
                "kernel (total %zu + %zu = %zu of %zu)\n",
                exact, futs.size(), served_before, exact,
                served_before + exact, kRequests);
    if (served_before + exact != kRequests) {
      std::printf("    RECOVERY INCOMPLETE\n");
      return 1;
    }
  }
  std::printf("\nevery request either acknowledged before the crash or "
              "replayed bit-exactly after it.\n");
  return 0;
}
