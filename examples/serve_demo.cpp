// Serving-runtime demo on the v2 Engine API: train two MADDNESS
// operators and a two-stage pipeline, register them in one
// InferenceServer's model registry, push an interleaved closed-loop
// workload through a pool of simulated accelerator macros, hot-swap one
// model's LUT bank under load, and print the per-model serving metrics
// plus the pool-aggregate PPA report.
//
// Then a whole trained CNN: its MADDNESS-substituted convs are
// registered with engine::register_network and the network classifies
// images end-to-end with every patch matmul served through the fused
// ExecutionPlan — bit-exact vs the local LUT forward pass.
//
//   build/examples/serve_demo
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/layer_mapping.hpp"
#include "engine/pipeline.hpp"
#include "maddness/amm.hpp"
#include "nn/dataset.hpp"
#include "nn/maddness_network.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

namespace {

maddness::Amm train_operator(Rng& rng, int ncodebooks, int nout,
                             float spread = 220.0f) {
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, spread));
  Matrix w(d, static_cast<std::size_t>(nout));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  return maddness::Amm::train(cfg, train, w);
}

}  // namespace

int main() {
  std::printf("== ssma serve demo (engine API v2) ==\n\n");

  // 1. Three deployables: two single-matmul models plus a two-stage
  //    pipeline (a 4-codebook feature layer chained into a dense head).
  Rng rng(42);
  const maddness::Amm embed = train_operator(rng, 4, 8);
  const maddness::Amm wide = train_operator(rng, 8, 16);

  const std::size_t d = 4 * 9;
  Matrix calib(384, d);
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
  Matrix w0(d, 36), w1(36, 12);
  for (std::size_t i = 0; i < w0.size(); ++i)
    w0.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  for (std::size_t i = 0; i < w1.size(); ++i)
    w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config pcfg;
  pcfg.ncodebooks = 4;
  Matrix mid;
  const maddness::Amm stage0 =
      engine::train_chained_stage(pcfg, calib, w0, &mid);
  const maddness::Amm stage1 =
      engine::train_chained_stage(pcfg, mid, w1, nullptr);

  // 2. One server, simulate backend: every shard owns an event-driven
  //    macro; the registry maps (name, version) -> immutable bank.
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.engine.backend = engine::Backend::kSimulate;
  opts.engine.accel.ns = 4;
  opts.engine.accel.ndec = 8;
  opts.batcher.max_batch_tokens = 16;
  serve::InferenceServer server(opts);
  server.register_model("embed", embed);
  server.register_model("wide", wide);
  server.register_pipeline("mlp", {&stage0, &stage1});
  const core::TilePlan plan = core::plan_tiles(
      embed.cfg().ncodebooks, embed.lut().nout, opts.engine.accel.ns,
      opts.engine.accel.ndec);
  std::printf(
      "server: %d simulated macros; registry holds %zu models "
      "(embed tile plan: %zu tile(s))\n\n",
      opts.num_workers, server.registry().num_models(),
      plan.tiles.size());

  // 3. Closed-loop load interleaving the two matmul models.
  Matrix fresh(128, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool =
      maddness::quantize_activations(fresh, embed.activation_scale());
  Matrix fresh_w(128, 8 * 9);
  for (std::size_t i = 0; i < fresh_w.size(); ++i)
    fresh_w.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool_w =
      maddness::quantize_activations(fresh_w, wide.activation_scale());

  serve::LoadSpec spec;
  spec.total_requests = 128;
  spec.rows_per_request = 4;
  spec.model_refs = {"embed@latest"};
  serve::LoadGenerator gen(pool, spec);
  serve::LoadReport load = gen.run_closed_loop(server, 8);
  std::printf("closed-loop embed (8 clients): %zu requests, %.0f "
              "tokens/s, p50 %.2f ms\n",
              load.completed, load.tokens_per_sec, load.p50_ms);

  serve::LoadSpec spec_w = spec;
  spec_w.model_refs = {"wide@latest"};
  serve::LoadGenerator gen_w(pool_w, spec_w);
  load = gen_w.run_closed_loop(server, 8);
  std::printf("closed-loop wide  (8 clients): %zu requests, %.0f "
              "tokens/s, p50 %.2f ms\n",
              load.completed, load.tokens_per_sec, load.p50_ms);

  // 4. Zero-downtime hot-swap: retrain embed, register as version 2
  //    while the server keeps accepting traffic, then serve more. Old
  //    in-flight batches finish on v1; everything after resolves v2.
  const maddness::Amm embed_v2 = train_operator(rng, 4, 8, 200.0f);
  const std::uint64_t v2 = server.register_model("embed", embed_v2);
  std::printf("\nhot-swapped embed to version %llu (no restart, no "
              "dropped requests)\n",
              static_cast<unsigned long long>(v2));
  auto fut = server.submit("embed@latest",
                           std::vector<std::uint8_t>(
                               pool.row(0), pool.row(0) + pool.cols),
                           1);
  std::printf("post-swap request served by embed@%llu\n",
              static_cast<unsigned long long>(fut.get().model_version));

  // 5. A pipeline request: one row through both stages.
  auto pfut = server.submit("mlp",
                            std::vector<std::uint8_t>(
                                pool.row(1), pool.row(1) + pool.cols),
                            1);
  std::printf("pipeline request: %zu outputs from 2 chained stages\n",
              pfut.get().outputs.size());

  // 6. Per-model metrics and the merged PPA view of the shard pool.
  server.shutdown();
  std::printf("\n-- serving metrics (per-model table at the bottom) "
              "--\n%s\n",
              server.metrics().render().c_str());
  std::printf("-- shard load --\n");
  const auto& shard_tokens = server.shard_tokens();
  for (std::size_t wi = 0; wi < shard_tokens.size(); ++wi)
    std::printf("  worker %zu: %zu tokens\n", wi, shard_tokens[wi]);
  std::printf("\n-- pool-aggregate PPA (4 macros) --\n%s\n",
              server.aggregate_report().render().c_str());

  // 7. Whole-network serving through the fused ExecutionPlan: train a
  //    tiny CNN, substitute its 3x3 convs with MADDNESS, register
  //    every segment via register_network, and classify images
  //    end-to-end with each conv's im2col patch matmul routed through
  //    a kernel-backend server. Pipelines execute with in-register
  //    stage handoffs (the fused epilogue); the served run is
  //    bit-exact vs the local LUT forward pass.
  std::printf("== whole-network serving (fused execution plan) ==\n\n");
  Rng crng(1);
  nn::Dataset data = nn::make_synthetic_dataset(crng, 60, 8, 8);
  nn::Network net;
  net.emplace<nn::Conv2d>(3, 8, 3, 1, 1, crng);
  net.emplace<nn::BatchNorm2d>(8);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2d>(8, 8, 3, 1, 1, crng);
  net.emplace<nn::BatchNorm2d>(8);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(8 * 8 * 8, 10, crng);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 20;
  Rng trng(55);
  nn::train(net, data, tc, trng);
  std::vector<std::size_t> cidx(30);
  for (std::size_t i = 0; i < cidx.size(); ++i) cidx[i] = i;
  const nn::MaddnessNetwork mnet(net, nn::take_batch(data, cidx).first);

  auto registry = std::make_shared<engine::ModelRegistry>();
  const std::vector<std::string> names =
      engine::register_network(*registry, "cnn", mnet);
  // The dense two-stage mlp rides in the same registry: its handle
  // carries a compiled plan whose interior boundary never touches
  // memory in the fused walk.
  registry->register_pipeline("mlp", {&stage0, &stage1});
  const engine::ModelRef mlp = registry->resolve("mlp");
  std::printf(
      "registry: %zu CNN segment(s) + mlp pipeline (%zu stages, "
      "%zu intermediate bytes/row avoided by fusion)\n",
      names.size(), mlp->plan().num_stages(),
      mlp->plan().fused_bytes_avoided_per_row());

  serve::ServerOptions copts;
  copts.num_workers = 2;
  copts.queue_capacity = 1024;
  copts.engine.backend = engine::Backend::kKernel;
  copts.batcher.max_batch_tokens = 256;
  serve::InferenceServer cserver(registry, copts);
  const nn::MaddnessNetwork::ConvExecutor exec =
      [&](std::size_t conv, const maddness::QuantizedActivations& q) {
        return cserver.submit(names[conv] + "@latest", q.codes, q.rows)
            .get()
            .outputs;
      };

  const std::size_t kImages = 10;
  const auto argmax = [](const nn::Tensor& t) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
      if (t[i] > t[best]) best = i;
    return best;
  };
  std::size_t agree = 0;
  bool bit_exact = true;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kImages; ++i) {
    std::vector<std::size_t> one{i};
    const nn::Tensor x = nn::take_batch(data, one).first;
    const nn::Tensor served = mnet.forward_served(x, exec);
    const nn::Tensor local = mnet.forward(x, /*use_amm=*/true);
    for (std::size_t k = 0; k < local.size(); ++k)
      if (served[k] != local[k]) bit_exact = false;
    if (argmax(served) == argmax(mnet.forward(x, /*use_amm=*/false)))
      ++agree;
  }
  const double serve_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  auto mfut = cserver.submit("mlp",
                             std::vector<std::uint8_t>(
                                 pool.row(2), pool.row(2) + pool.cols),
                             1);
  std::printf("mlp via fused plan: %zu outputs\n",
              mfut.get().outputs.size());
  cserver.shutdown();
  std::printf(
      "served %zu images end-to-end: %.0f images/s, bit-exact vs "
      "local LUT forward: %s, top-1 agreement vs float: %zu/%zu\n",
      kImages, static_cast<double>(kImages) / serve_s,
      bit_exact ? "yes" : "NO", agree, kImages);
  return bit_exact ? 0 : 1;
}
