// Serving-runtime demo on the v2 Engine API: train two MADDNESS
// operators and a two-stage pipeline, register them in one
// InferenceServer's model registry, push an interleaved closed-loop
// workload through a pool of simulated accelerator macros, hot-swap one
// model's LUT bank under load, and print the per-model serving metrics
// plus the pool-aggregate PPA report.
//
//   build/examples/serve_demo
#include <cstdio>

#include "core/layer_mapping.hpp"
#include "engine/pipeline.hpp"
#include "maddness/amm.hpp"
#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

namespace {

maddness::Amm train_operator(Rng& rng, int ncodebooks, int nout,
                             float spread = 220.0f) {
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, spread));
  Matrix w(d, static_cast<std::size_t>(nout));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  return maddness::Amm::train(cfg, train, w);
}

}  // namespace

int main() {
  std::printf("== ssma serve demo (engine API v2) ==\n\n");

  // 1. Three deployables: two single-matmul models plus a two-stage
  //    pipeline (a 4-codebook feature layer chained into a dense head).
  Rng rng(42);
  const maddness::Amm embed = train_operator(rng, 4, 8);
  const maddness::Amm wide = train_operator(rng, 8, 16);

  const std::size_t d = 4 * 9;
  Matrix calib(384, d);
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
  Matrix w0(d, 36), w1(36, 12);
  for (std::size_t i = 0; i < w0.size(); ++i)
    w0.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  for (std::size_t i = 0; i < w1.size(); ++i)
    w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config pcfg;
  pcfg.ncodebooks = 4;
  Matrix mid;
  const maddness::Amm stage0 =
      engine::train_chained_stage(pcfg, calib, w0, &mid);
  const maddness::Amm stage1 =
      engine::train_chained_stage(pcfg, mid, w1, nullptr);

  // 2. One server, simulate backend: every shard owns an event-driven
  //    macro; the registry maps (name, version) -> immutable bank.
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.engine.backend = engine::Backend::kSimulate;
  opts.engine.accel.ns = 4;
  opts.engine.accel.ndec = 8;
  opts.batcher.max_batch_tokens = 16;
  serve::InferenceServer server(opts);
  server.register_model("embed", embed);
  server.register_model("wide", wide);
  server.register_pipeline("mlp", {&stage0, &stage1});
  const core::TilePlan plan = core::plan_tiles(
      embed.cfg().ncodebooks, embed.lut().nout, opts.engine.accel.ns,
      opts.engine.accel.ndec);
  std::printf(
      "server: %d simulated macros; registry holds %zu models "
      "(embed tile plan: %zu tile(s))\n\n",
      opts.num_workers, server.registry().num_models(),
      plan.tiles.size());

  // 3. Closed-loop load interleaving the two matmul models.
  Matrix fresh(128, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool =
      maddness::quantize_activations(fresh, embed.activation_scale());
  Matrix fresh_w(128, 8 * 9);
  for (std::size_t i = 0; i < fresh_w.size(); ++i)
    fresh_w.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool_w =
      maddness::quantize_activations(fresh_w, wide.activation_scale());

  serve::LoadSpec spec;
  spec.total_requests = 128;
  spec.rows_per_request = 4;
  spec.model_refs = {"embed@latest"};
  serve::LoadGenerator gen(pool, spec);
  serve::LoadReport load = gen.run_closed_loop(server, 8);
  std::printf("closed-loop embed (8 clients): %zu requests, %.0f "
              "tokens/s, p50 %.2f ms\n",
              load.completed, load.tokens_per_sec, load.p50_ms);

  serve::LoadSpec spec_w = spec;
  spec_w.model_refs = {"wide@latest"};
  serve::LoadGenerator gen_w(pool_w, spec_w);
  load = gen_w.run_closed_loop(server, 8);
  std::printf("closed-loop wide  (8 clients): %zu requests, %.0f "
              "tokens/s, p50 %.2f ms\n",
              load.completed, load.tokens_per_sec, load.p50_ms);

  // 4. Zero-downtime hot-swap: retrain embed, register as version 2
  //    while the server keeps accepting traffic, then serve more. Old
  //    in-flight batches finish on v1; everything after resolves v2.
  const maddness::Amm embed_v2 = train_operator(rng, 4, 8, 200.0f);
  const std::uint64_t v2 = server.register_model("embed", embed_v2);
  std::printf("\nhot-swapped embed to version %llu (no restart, no "
              "dropped requests)\n",
              static_cast<unsigned long long>(v2));
  auto fut = server.submit("embed@latest",
                           std::vector<std::uint8_t>(
                               pool.row(0), pool.row(0) + pool.cols),
                           1);
  std::printf("post-swap request served by embed@%llu\n",
              static_cast<unsigned long long>(fut.get().model_version));

  // 5. A pipeline request: one row through both stages.
  auto pfut = server.submit("mlp",
                            std::vector<std::uint8_t>(
                                pool.row(1), pool.row(1) + pool.cols),
                            1);
  std::printf("pipeline request: %zu outputs from 2 chained stages\n",
              pfut.get().outputs.size());

  // 6. Per-model metrics and the merged PPA view of the shard pool.
  server.shutdown();
  std::printf("\n-- serving metrics (per-model table at the bottom) "
              "--\n%s\n",
              server.metrics().render().c_str());
  std::printf("-- shard load --\n");
  const auto& shard_tokens = server.shard_tokens();
  for (std::size_t wi = 0; wi < shard_tokens.size(); ++wi)
    std::printf("  worker %zu: %zu tokens\n", wi, shard_tokens[wi]);
  std::printf("\n-- pool-aggregate PPA (4 macros) --\n%s\n",
              server.aggregate_report().render().c_str());
  return 0;
}
