// Serving-runtime demo: train a MADDNESS operator, stand up an
// InferenceServer fronting a pool of simulated accelerator macros, push
// a closed-loop workload through it, and print the serving metrics plus
// the pool-aggregate PPA report (per-shard silicon and energy merged).
//
//   build/examples/serve_demo
#include <cstdio>

#include "maddness/amm.hpp"
#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

int main() {
  std::printf("== ssma serve demo ==\n\n");

  // 1. Train a small operator: 4 input channels (9 dims each) -> 8 outs.
  Rng rng(42);
  const int ncodebooks = 4, nout = 8;
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, nout);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  const maddness::Amm amm = maddness::Amm::train(cfg, train, w);
  std::printf("trained operator: %d codebooks x 9 dims -> %d outputs\n",
              ncodebooks, nout);

  // 2. A pool of 4 simulated macros behind one server. Each worker owns
  //    a private replica deserialized from the trained operator.
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.mode = serve::ExecutionMode::kSimulate;
  opts.accel.ns = 4;
  opts.accel.ndec = 8;
  opts.batcher.max_batch_tokens = 16;
  serve::InferenceServer server(amm, opts);
  std::printf("server: %d workers, tile plan %zu tile(s)\n\n",
              opts.num_workers, server.plan().tiles.size());

  // 3. Closed-loop load: 8 clients, 256 requests x 4 rows.
  Matrix fresh(128, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool =
      maddness::quantize_activations(fresh, amm.activation_scale());

  serve::LoadSpec spec;
  spec.total_requests = 256;
  spec.rows_per_request = 4;
  serve::LoadGenerator gen(pool, spec);
  const serve::LoadReport load = gen.run_closed_loop(server, 8);
  std::printf("closed-loop (8 clients): %zu requests, %.0f tokens/s, "
              "p50 %.2f ms, p99 %.2f ms\n",
              load.completed, load.tokens_per_sec, load.p50_ms,
              load.p99_ms);

  // 4. Server-side metrics and the merged PPA view of the shard pool.
  server.shutdown();
  std::printf("\n-- serving metrics --\n%s\n",
              server.metrics().render().c_str());
  std::printf("-- shard load --\n");
  const auto& shard_tokens = server.shard_tokens();
  for (std::size_t wi = 0; wi < shard_tokens.size(); ++wi)
    std::printf("  worker %zu: %zu tokens\n", wi, shard_tokens[wi]);
  std::printf("\n-- pool-aggregate PPA (4 macros) --\n%s\n",
              server.aggregate_report().render().c_str());
  return 0;
}
