// End-to-end CNN deployment (Fig. 3): train a small CNN on the synthetic
// dataset, substitute its 3x3 convolutions with MADDNESS LUTs, classify
// test images three ways — float, MADDNESS software, and the first conv
// layer running on the event-driven accelerator macro — and show the
// predictions agree.
//
//   build/examples/cnn_inference
#include <cstdio>

#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/maddness_network.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

int main() {
  std::printf("== CNN inference through the accelerator ==\n\n");

  // Train a compact ResNet-style CNN.
  Rng rng(11);
  nn::Dataset train_set = nn::make_synthetic_dataset(rng, 400, 8, 8);
  nn::Dataset test_set = nn::make_synthetic_dataset(rng, 60, 8, 8);
  nn::ResnetConfig rc;
  rc.width = 6;
  rc.img_h = 8;
  rc.img_w = 8;
  nn::Network net = nn::make_resnet9(rc, rng);

  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 25;
  tc.lr_max = 0.02;
  Rng trng(12);
  std::printf("Training (%zu parameters)...\n", net.num_parameters());
  nn::train(net, train_set, tc, trng);
  std::printf("Float test accuracy: %.1f%%\n\n",
              100.0 * nn::evaluate(net, test_set));

  // Substitute convs with MADDNESS and fine-tune the classifier.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 96; ++i) idx.push_back(i);
  auto [calib, cl] = nn::take_batch(train_set, idx);
  (void)cl;
  nn::MaddnessNetwork mnet(net, calib);
  mnet.fine_tune_classifier(train_set.images, train_set.labels, 30, 0.05);
  std::printf("Substituted %zu convs; multiplications remaining in conv\n"
              "layers: 0 (table lookups only).\n\n",
              mnet.num_substituted_convs());

  // Classify a few test images along all three paths.
  std::vector<std::size_t> sample = {0, 1, 2, 3, 4, 5, 6, 7};
  auto [images, labels] = nn::take_batch(test_set, sample);
  const auto float_pred = nn::predict(net.forward(images, false));
  const auto amm_pred = nn::predict(mnet.forward(images, true));

  // Drive the first substituted conv through the event-driven macro and
  // confirm the silicon-level path agrees with the software decode.
  const nn::MaddnessConv2d& mc = mnet.substituted_conv(0);
  const Matrix cols = nn::im2col(images, 3, mc.stride(), mc.pad());
  const auto q =
      maddness::quantize_activations(cols, mc.amm().activation_scale());
  maddness::QuantizedActivations probe = q;
  probe.rows = std::min<std::size_t>(q.rows, 32);
  probe.codes.resize(probe.rows * q.cols);
  core::AcceleratorOptions ao;
  ao.ns = static_cast<int>(mc.in_ch());
  ao.ndec = static_cast<int>(mc.out_ch());
  core::Accelerator acc(ao);
  const auto hw = acc.run(mc.amm(), probe);
  const bool hw_ok = hw.outputs == mc.amm().apply_int16(probe);

  TextTable t({"image", "label", "float pred", "MADDNESS pred"});
  for (std::size_t i = 0; i < sample.size(); ++i)
    t.add_row({std::to_string(i), std::to_string(labels[i]),
               std::to_string(float_pred[i]), std::to_string(amm_pred[i])});
  std::printf("%s\n", t.render().c_str());

  std::printf("First conv layer on the simulated macro: %s\n",
              hw_ok ? "bit-exact vs software decode" : "MISMATCH!");
  std::printf("Macro run: %.1f fJ/op at %.1f MHz (Ndec=%d, NS=%d)\n",
              hw.report.energy_per_op_fj, hw.report.freq_mhz, ao.ndec,
              ao.ns);
  return hw_ok ? 0 : 1;
}
