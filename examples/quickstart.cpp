// Quickstart: train a MADDNESS approximate-matmul operator, compare it
// against exact GEMM, then run the same workload bit-exactly through the
// event-driven model of the self-synchronous accelerator macro and print
// its PPA report.
//
//   build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "core/accelerator.hpp"
#include "maddness/amm.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

int main() {
  std::printf("== ssma quickstart ==\n\n");

  // 1. A synthetic workload: activations (N x 36 = 4 channels x 9 dims,
  //    non-negative like post-ReLU data) and a weight matrix (36 x 8).
  Rng rng(42);
  const int ncodebooks = 4, nout = 8;
  // Activations cluster around a few modes per channel, as real
  // post-ReLU feature maps do — the structure product quantization
  // exploits.
  Matrix centers(12, 36);
  for (std::size_t i = 0; i < centers.size(); ++i)
    centers.data()[i] = static_cast<float>(rng.next_double(0.0, 6.0));
  Matrix activations(512, 36);
  for (std::size_t i = 0; i < activations.rows(); ++i) {
    const int k = rng.next_int(0, 11);
    for (std::size_t j = 0; j < 36; ++j)
      activations(i, j) = static_cast<float>(
          std::max(0.0, centers(k, j) + rng.next_gaussian(0.0, 0.25)));
  }
  Matrix weights(36, nout);
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights.data()[i] = static_cast<float>(rng.next_gaussian(0.0, 0.3));

  // 2. Train the MADDNESS operator: per-codebook hash trees, prototypes,
  //    INT8 LUTs. This is the offline step that removes all runtime
  //    multiplications.
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  const maddness::Amm amm = maddness::Amm::train(cfg, activations, weights);
  std::printf("Trained MADDNESS: %d codebooks x 16 prototypes, %d outputs\n",
              cfg.ncodebooks, nout);

  // 3. Compare against the exact product.
  Matrix exact;
  gemm(activations, weights, exact);
  const Matrix approx = amm.apply(activations);
  std::printf("Approximation error (relative Frobenius): %.3f\n\n",
              maddness::relative_error(approx, exact));

  // 4. Run the same workload on the simulated macro (4 blocks, 8 lanes)
  //    and confirm hardware outputs match the software decode bit for
  //    bit.
  core::AcceleratorOptions opts;
  opts.ns = ncodebooks;
  opts.ndec = nout;
  core::Accelerator acc(opts);

  const auto q = maddness::quantize_activations(
      activations, amm.activation_scale());
  // Simulate a slice of the workload (event-driven simulation is
  // detailed; 64 tokens is plenty to reach steady state).
  maddness::QuantizedActivations slice = q;
  slice.rows = 64;
  slice.codes.resize(64 * q.cols);
  const auto result = acc.run(amm, slice);

  const auto sw = amm.apply_int16(slice);
  std::printf("Hardware vs software outputs: %s\n\n",
              result.outputs == sw ? "bit-exact MATCH" : "MISMATCH!");

  // 5. The PPA report of the run.
  std::printf("%s\n", result.report.render().c_str());

  std::printf(
      "Next steps: examples/cnn_inference (end-to-end CNN),\n"
      "examples/macro_simulation (handshake-level trace),\n"
      "examples/pvt_sweep (voltage/corner robustness).\n");
  return 0;
}
