// PVT robustness demonstration — the "all-digital, self-synchronous"
// selling point: sweep supply voltage, process corner, temperature and
// within-die variation, and show that the macro's *outputs never change*
// (only its speed does), while the analog prior-work encoder [21] starts
// misclassifying under the same variations.
//
//   build/examples/pvt_sweep
#include <cstdio>

#include "baselines/analog_encoder_model.hpp"
#include "ppa/corner.hpp"
#include "sim/macro.hpp"
#include "sim/monte_carlo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

int main() {
  std::printf("== PVT sweep: functional invariance of the proposed macro ==\n\n");

  const int ndec = 4, ns = 4, tokens = 10;
  Rng rng(5);
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n)
        t.set_threshold(l, n, static_cast<std::uint8_t>(rng.next_int(1, 254)));
  }
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  std::vector<std::vector<sim::Subvec>> inputs(tokens,
                                               std::vector<sim::Subvec>(ns));
  for (auto& tok : inputs)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));

  // Golden outputs at the nominal point.
  std::vector<std::vector<std::int16_t>> golden;
  {
    sim::MacroConfig cfg;
    cfg.ndec = ndec;
    cfg.ns = ns;
    sim::Macro m(cfg);
    m.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    golden = m.run(inputs).outputs;
  }

  TextTable t({"VDD [V]", "corner", "temp [C]", "variation",
               "interval [ns]", "outputs"});
  Rng vrng(99);
  for (double vdd : {0.5, 0.7, 1.0}) {
    for (ppa::Corner corner :
         {ppa::Corner::TTG, ppa::Corner::FFG, ppa::Corner::SSG}) {
      for (double temp : {0.0, 85.0}) {
        for (bool with_var : {false, true}) {
          sim::MacroConfig cfg;
          cfg.ndec = ndec;
          cfg.ns = ns;
          cfg.op = {vdd, corner, temp};
          sim::Macro m(cfg);
          if (with_var)
            m.set_variation(sim::sample_variation(
                ns, ndec, sim::VariationConfig{}, vrng));
          m.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
          const auto res = m.run(inputs);
          t.add_row({TextTable::num(vdd, 1), ppa::corner_name(corner),
                     TextTable::num(temp, 0), with_var ? "MC die" : "nominal",
                     TextTable::num(res.stats.output_interval_ns.mean(), 2),
                     res.outputs == golden ? "identical" : "CORRUPTED"});
        }
      }
    }
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "-- Contrast: the analog time-domain encoder of [21] under the same\n"
      "   kind of device mismatch (encoding flip rate, 16 prototypes):\n\n");
  TextTable ta({"delay-cell mismatch sigma", "encode flip rate"});
  Matrix protos(16, 9);
  Rng prng(3);
  for (std::size_t i = 0; i < protos.size(); ++i)
    protos.data()[i] = static_cast<float>(prng.next_int(0, 63));
  for (double sigma : {0.0, 0.02, 0.05, 0.10, 0.15}) {
    Rng mrng(17);
    const double rate = baselines::AnalogTimeDomainEncoder::
        misclassification_rate(protos, sigma, 1500, mrng);
    ta.add_row({TextTable::num(sigma * 100, 0) + "%",
                TextTable::pct(rate)});
  }
  std::printf("%s\n", ta.render().c_str());
  std::printf(
      "The digital BDT macro is bit-stable across every PVT condition —\n"
      "variation shows up only as latency (handled by the self-timed\n"
      "handshake), whereas the analog race flips encodings and needs\n"
      "post-fabrication calibration (Sec. II-C of the paper).\n");
  return 0;
}
