// Continuous-learning rollout walkthrough, two acts on one serving
// runtime (journal + checkpoints wired, so every verdict is durable):
//
//   1. Healthy canary: live traffic fills the seeded reservoir, the
//      controller retrains a candidate in the background, stages it as
//      embed@2, mirrors traffic through it on a spare engine, and
//      auto-promotes when the drift budget holds. A restart then proves
//      the promotion checkpointed: the recovered server serves @2.
//
//   2. Regressed canary: the deterministic fault injector forces every
//      shadow comparison to report a fully-drifted batch
//      (FaultSite::kShadowCompare, "shadow_drift"). The error budget
//      blows, the candidate is discarded, and live serving never blips
//      off version 1.
//
// Everything derives from one seed, printed below: a failing run is
// reproducible from its log line.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "maddness/amm.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/rollout/rollout.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace ssma;
using serve::recovery::CheckpointManager;
using serve::recovery::FaultInjector;
using serve::recovery::RequestJournal;
using serve::rollout::RolloutManager;
using serve::rollout::RolloutOptions;
using serve::rollout::RolloutReport;
using serve::rollout::RolloutState;

namespace {

/// The workload keeps the regression target (weights + config) around:
/// that is what the rollout controller retrains candidates against.
struct Workload {
  maddness::Config cfg;
  Matrix weights;
  maddness::Amm amm;
  maddness::QuantizedActivations pool;
};

Workload make_workload(std::uint64_t seed) {
  Rng rng(seed);
  const int ncodebooks = 4, nout = 8;
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d), w(d, nout);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  Workload wl{cfg, w, maddness::Amm::train(cfg, train, w), {}};

  Matrix fresh(256, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  wl.pool = maddness::quantize_activations(fresh, wl.amm.activation_scale());
  return wl;
}

std::vector<std::uint8_t> payload(const Workload& wl, std::size_t id) {
  const std::size_t r = id % wl.pool.rows;
  return {wl.pool.row(r), wl.pool.row(r) + wl.pool.cols};
}

/// Wide-open drift gate for the promote act: a genuinely retrained
/// candidate has fresh hash trees, so its outputs legitimately differ
/// from the live bank's. Act 2 shows the gate closing via injection.
RolloutOptions demo_options(std::uint64_t seed) {
  RolloutOptions r;
  r.seed = seed;
  r.reservoir_rows = 96;
  r.min_train_rows = 96;
  r.min_shadow_rows = 24;
  r.drift_tolerance = std::numeric_limits<std::int16_t>::max();
  r.error_budget = 1.0;
  return r;
}

/// Pumps single-row closed-loop traffic until the rollout reaches a
/// terminal state, narrating each state transition as it happens.
RolloutState pump_until_decided(serve::InferenceServer& server,
                                RolloutManager& mgr, const Workload& wl,
                                std::size_t* submitted) {
  RolloutState last = RolloutState::kIdle;
  for (std::size_t guard = 0; guard < 20000; ++guard) {
    const RolloutReport rep = mgr.report("embed");
    if (rep.state != last) {
      std::printf("    state -> %-10s  (seen %llu rows, sampled %zu, "
                  "shadowed %zu, drifted %zu)\n",
                  to_string(rep.state),
                  static_cast<unsigned long long>(rep.seen_rows),
                  rep.sampled_rows, rep.shadow_rows, rep.drift_rows);
      last = rep.state;
    }
    if (rep.state == RolloutState::kPromoted ||
        rep.state == RolloutState::kRolledBack)
      return rep.state;
    server.submit("embed@latest", payload(wl, *submitted), 1).get();
    ++*submitted;
  }
  return last;
}

}  // namespace

int main() {
  const std::uint64_t seed = 0x5eedca11ull;
  const Workload wl = make_workload(seed);
  const auto scratch =
      std::filesystem::temp_directory_path() / "ssma-rollout-demo";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  std::printf("rollout demo  seed=0x%llx  scratch=%s\n\n",
              static_cast<unsigned long long>(seed),
              scratch.string().c_str());

  // ------------------------------- act 1: healthy canary, auto-promote
  const std::string jnl_path = (scratch / "wal.jnl").string();
  const std::string ckpt_dir = (scratch / "ckpts").string();
  {
    std::printf("[1] sample -> retrain -> shadow -> promote\n");
    CheckpointManager ckpts(ckpt_dir);
    RequestJournal journal(jnl_path);
    serve::ServerOptions opts;
    opts.num_workers = 1;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    serve::InferenceServer server(opts);
    server.register_model("embed", wl.amm);

    RolloutManager mgr(server, demo_options(seed));
    mgr.manage("embed", wl.weights, wl.cfg);
    mgr.start();

    std::size_t submitted = 0;
    const RolloutState verdict =
        pump_until_decided(server, mgr, wl, &submitted);
    const RolloutReport rep = mgr.report("embed");
    server.shutdown();
    mgr.stop();
    std::printf("    verdict: %s — embed@latest is now @%llu "
                "(drift %zu/%zu rows, budget %.2f)\n",
                to_string(verdict),
                static_cast<unsigned long long>(
                    server.registry().latest_version("embed")),
                rep.drift_rows, rep.shadow_rows, rep.error_budget);
    if (verdict != RolloutState::kPromoted) {
      std::printf("    PROMOTION DID NOT HAPPEN\n");
      return 1;
    }
  }
  {
    // The promotion force-checkpointed; a cold restart must agree.
    CheckpointManager ckpts(ckpt_dir);
    const auto rs = serve::recovery::recover_state(ckpts, jnl_path);
    serve::ServerOptions opts;
    opts.num_workers = 1;
    auto restored = serve::InferenceServer::restore(rs, opts);
    const std::uint64_t v = restored->registry().latest_version("embed");
    const std::uint64_t served =
        restored->submit("embed@latest", payload(wl, 0), 1)
            .get()
            .model_version;
    restored->shutdown();
    std::printf("    restart: recovered registry serves embed@%llu, "
                "first response from @%llu\n\n",
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(served));
    if (v != 2 || served != 2) {
      std::printf("    PROMOTION DID NOT SURVIVE RESTART\n");
      return 1;
    }
  }

  // --------------------------- act 2: regressed canary, auto-rollback
  {
    std::printf("[2] injected drift blows the budget -> rollback\n");
    FaultInjector fault(seed);
    // Every shadow comparison reports a fully-drifted batch: a
    // deterministic stand-in for a model-quality regression.
    fault.arm_named("shadow_drift", 1, /*repeat=*/true);

    serve::ServerOptions opts;
    opts.num_workers = 1;
    serve::InferenceServer server(opts);
    server.register_model("embed", wl.amm);

    RolloutOptions ropts = demo_options(seed);
    ropts.error_budget = 0.5;
    ropts.fault = &fault;
    RolloutManager mgr(server, ropts);
    mgr.manage("embed", wl.weights, wl.cfg);
    mgr.start();

    std::size_t submitted = 0;
    const RolloutState verdict =
        pump_until_decided(server, mgr, wl, &submitted);
    const RolloutReport rep = mgr.report("embed");
    const std::uint64_t latest = server.registry().latest_version("embed");
    const bool candidate_gone =
        server.registry().try_resolve("embed", rep.candidate_version) ==
        nullptr;
    server.shutdown();
    mgr.stop();
    std::printf("    verdict: %s — candidate @%llu discarded, "
                "embed@latest stays @%llu (drift %.0f%% > budget %.0f%%)\n",
                to_string(verdict),
                static_cast<unsigned long long>(rep.candidate_version),
                static_cast<unsigned long long>(latest),
                rep.drift_fraction * 100.0, rep.error_budget * 100.0);
    if (verdict != RolloutState::kRolledBack || latest != 1 ||
        !candidate_gone) {
      std::printf("    ROLLBACK DID NOT HOLD\n");
      return 1;
    }
  }

  std::printf("\na good candidate promoted durably; a bad one was "
              "caught in shadow and never served a byte of live "
              "traffic.\n");
  return 0;
}
