// Drives the event-driven macro directly at the circuit level: programs
// thresholds and LUTs, streams tokens, and prints a timeline of the
// self-synchronous pipeline (per-block latencies, token intervals,
// energy ledger) — the view a designer would use to study the
// architecture.
//
//   build/examples/macro_simulation
#include <cstdio>
#include <fstream>

#include "sim/macro.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

int main() {
  std::printf("== Circuit-level macro simulation ==\n\n");

  const int ndec = 4, ns = 4, tokens = 12;
  sim::MacroConfig cfg;
  cfg.ndec = ndec;
  cfg.ns = ns;
  cfg.op = ppa::nominal_05v();
  sim::Macro macro(cfg);

  sim::TraceSink trace;
  macro.set_trace(&trace);

  // Program: random decision trees and LUT contents (as the global write
  // driver would after MADDNESS training).
  Rng rng(7);
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n)
        t.set_threshold(l, n, static_cast<std::uint8_t>(rng.next_int(1, 254)));
  }
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  macro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  std::printf("Programmed %d blocks x %d decoders (%d SRAM bits) via the\n"
              "write port; write energy so far: %.1f pJ\n\n",
              ns, ndec, ns * ndec * 16 * 8,
              macro.ctx().ledger.fj(sim::EnergyCat::kWrite) * 1e-3);

  // Stream random tokens.
  std::vector<std::vector<sim::Subvec>> inputs(tokens,
                                               std::vector<sim::Subvec>(ns));
  for (auto& tok : inputs)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));

  const auto res = macro.run(inputs);

  std::printf("Per-token outputs (lane values, int16):\n");
  for (int k = 0; k < tokens; ++k) {
    std::printf("  token %2d:", k);
    for (int d = 0; d < ndec; ++d) std::printf(" %6d", res.outputs[k][d]);
    std::printf("\n");
  }

  std::printf("\nPipeline timing:\n");
  TextTable t({"metric", "value"});
  t.add_row({"tokens", std::to_string(tokens)});
  t.add_row({"simulated time [ns]", TextTable::num(res.stats.duration_ns, 1)});
  t.add_row({"events executed", std::to_string(res.stats.events)});
  t.add_row({"first-token latency [ns]",
             TextTable::num(res.stats.token_latency_ns.min(), 2)});
  t.add_row({"steady-state interval [ns]",
             TextTable::num(res.stats.output_interval_ns.mean(), 2)});
  t.add_row({"interval min/max [ns]",
             TextTable::num(res.stats.output_interval_ns.min(), 2) + " / " +
                 TextTable::num(res.stats.output_interval_ns.max(), 2)});
  t.add_row({"block 0 mean latency [ns]",
             TextTable::num(macro.block(0).latency_ns().mean(), 2)});
  std::printf("%s\n", t.render().c_str());

  std::printf("Energy ledger:\n%s\n",
              res.stats.ledger.summary().c_str());

  const long long ops = static_cast<long long>(tokens) * ns * ndec * 18;
  std::printf("=> %.1f fJ/op, %.1f TOPS/W on this stream\n\n",
              res.stats.ledger.total_fj() / static_cast<double>(ops),
              res.stats.tops_per_w(ops));

  // Signal trace: first handshake cycles of the pipeline, plus a VCD
  // dump loadable in GTKWave.
  std::printf("First trace records (four-phase handshake visible):\n");
  int shown = 0;
  for (const auto& r : trace.records()) {
    if (shown++ >= 14) break;
    std::printf("  %8.3f ns  %-14s = %s\n", sim::ns_from_ps(r.t),
                r.signal.c_str(), r.value.c_str());
  }
  std::ofstream vcd("macro_trace.vcd");
  vcd << trace.render_vcd();
  std::printf("... %zu records total; waveform written to macro_trace.vcd\n",
              trace.size());
  return 0;
}
