#include "nn/trainer.hpp"

#include <cstdio>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/check.hpp"

namespace ssma::nn {

TrainHistory train(Network& net, const Dataset& data, const TrainConfig& cfg,
                   Rng& rng) {
  SSMA_CHECK(data.size() >= cfg.batch_size);
  TrainHistory hist;
  SgdOptimizer opt(net.params(), cfg.lr_max, cfg.momentum,
                   cfg.weight_decay);
  const std::size_t steps_per_epoch = data.size() / cfg.batch_size;
  const std::size_t total_steps = steps_per_epoch * cfg.epochs;
  std::size_t step = 0;

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto perm = rng.permutation(data.size());
    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0;
    for (std::size_t s = 0; s < steps_per_epoch; ++s) {
      std::vector<std::size_t> idx(
          perm.begin() + s * cfg.batch_size,
          perm.begin() + (s + 1) * cfg.batch_size);
      auto [batch, labels] = take_batch(data, idx);

      opt.set_lr(cosine_lr(cfg.lr_max, cfg.lr_min, step++, total_steps));
      const Tensor logits = net.forward(batch, /*train=*/true);
      const LossResult lr = softmax_cross_entropy(logits, labels);
      net.backward(lr.grad);
      opt.step();

      loss_sum += lr.loss;
      correct += lr.correct;
      seen += labels.size();
    }
    hist.epoch_loss.push_back(loss_sum / static_cast<double>(steps_per_epoch));
    hist.epoch_train_acc.push_back(static_cast<double>(correct) /
                                   static_cast<double>(seen));
    if (cfg.verbose) {
      std::printf("epoch %zu: loss %.4f train-acc %.3f\n", epoch + 1,
                  hist.epoch_loss.back(), hist.epoch_train_acc.back());
      std::fflush(stdout);
    }
  }
  return hist;
}

double evaluate(Network& net, const Dataset& data, std::size_t batch_size) {
  SSMA_CHECK(data.size() >= 1);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    auto [batch, labels] = take_batch(data, idx);
    const Tensor logits = net.forward(batch, /*train=*/false);
    const auto preds = predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i)
      correct += (preds[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ssma::nn
