// Softmax cross-entropy loss over logits.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace ssma::nn {

struct LossResult {
  double loss = 0.0;     ///< mean cross-entropy over the batch
  Tensor grad;           ///< dL/dlogits (already divided by batch size)
  std::size_t correct = 0;  ///< argmax == label count
};

/// logits: (N, classes, 1, 1); labels: N class indices.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Argmax prediction per row.
std::vector<int> predict(const Tensor& logits);

}  // namespace ssma::nn
