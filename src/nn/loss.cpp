#include "nn/loss.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  SSMA_CHECK(logits.n() == labels.size());
  SSMA_CHECK(logits.h() == 1 && logits.w() == 1);
  const std::size_t n = logits.n(), k = logits.c();
  LossResult res;
  res.grad = Tensor(n, k, 1, 1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    SSMA_CHECK(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < k);
    const float* row = logits.data() + i * k;
    float maxv = row[0];
    std::size_t arg = 0;
    for (std::size_t c = 1; c < k; ++c)
      if (row[c] > maxv) {
        maxv = row[c];
        arg = c;
      }
    double denom = 0.0;
    for (std::size_t c = 0; c < k; ++c)
      denom += std::exp(static_cast<double>(row[c]) - maxv);
    const double logp_label =
        static_cast<double>(row[labels[i]]) - maxv - std::log(denom);
    total -= logp_label;
    if (arg == static_cast<std::size_t>(labels[i])) ++res.correct;
    for (std::size_t c = 0; c < k; ++c) {
      const double p =
          std::exp(static_cast<double>(row[c]) - maxv) / denom;
      const double target = (c == static_cast<std::size_t>(labels[i])) ? 1.0 : 0.0;
      res.grad.at(i, c, 0, 0) =
          static_cast<float>((p - target) / static_cast<double>(n));
    }
  }
  res.loss = total / static_cast<double>(n);
  return res;
}

std::vector<int> predict(const Tensor& logits) {
  std::vector<int> out(logits.n());
  const std::size_t k = logits.c();
  for (std::size_t i = 0; i < logits.n(); ++i) {
    const float* row = logits.data() + i * k;
    std::size_t arg = 0;
    for (std::size_t c = 1; c < k; ++c)
      if (row[c] > row[arg]) arg = c;
    out[i] = static_cast<int>(arg);
  }
  return out;
}

}  // namespace ssma::nn
