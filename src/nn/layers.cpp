#include "nn/layers.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma::nn {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_ch, std::size_t out_ch, int k, int stride,
               int pad, Rng& rng)
    : in_ch_(in_ch), out_ch_(out_ch), k_(k), stride_(stride), pad_(pad) {
  SSMA_CHECK(in_ch >= 1 && out_ch >= 1 && k >= 1 && stride >= 1 && pad >= 0);
  w_.value = Tensor(out_ch, in_ch, k, k);
  w_.grad = Tensor(out_ch, in_ch, k, k);
  b_.value = Tensor(out_ch, 1, 1, 1);
  b_.grad = Tensor(out_ch, 1, 1, 1);
  b_.decay = false;
  // He initialization for ReLU networks.
  const double std =
      std::sqrt(2.0 / (static_cast<double>(in_ch) * k * k));
  for (std::size_t i = 0; i < w_.value.size(); ++i)
    w_.value[i] = static_cast<float>(rng.next_gaussian(0.0, std));
}

Matrix Conv2d::weight_matrix() const {
  const std::size_t rows = in_ch_ * static_cast<std::size_t>(k_) * k_;
  Matrix w(rows, out_ch_);
  for (std::size_t o = 0; o < out_ch_; ++o) {
    std::size_t r = 0;
    for (std::size_t c = 0; c < in_ch_; ++c)
      for (int ky = 0; ky < k_; ++ky)
        for (int kx = 0; kx < k_; ++kx, ++r)
          w(r, o) = w_.value.at(o, c, ky, kx);
  }
  return w;
}

void Conv2d::set_weight_matrix(const Matrix& w) {
  SSMA_CHECK(w.rows() == in_ch_ * static_cast<std::size_t>(k_) * k_);
  SSMA_CHECK(w.cols() == out_ch_);
  for (std::size_t o = 0; o < out_ch_; ++o) {
    std::size_t r = 0;
    for (std::size_t c = 0; c < in_ch_; ++c)
      for (int ky = 0; ky < k_; ++ky)
        for (int kx = 0; kx < k_; ++kx, ++r)
          w_.value.at(o, c, ky, kx) = w(r, o);
  }
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  SSMA_CHECK_MSG(x.c() == in_ch_, "conv2d channel mismatch");
  in_n_ = x.n();
  in_h_ = x.h();
  in_w_ = x.w();
  const std::size_t oh = conv_out_dim(x.h(), k_, stride_, pad_);
  const std::size_t ow = conv_out_dim(x.w(), k_, stride_, pad_);
  cols_ = im2col(x, k_, stride_, pad_);

  Matrix w = weight_matrix();  // (C*k*k) x out_ch
  Matrix y;                    // rows x out_ch
  gemm(cols_, w, y);

  Tensor out(x.n(), out_ch_, oh, ow);
  std::size_t row = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row)
        for (std::size_t o = 0; o < out_ch_; ++o)
          out.at(n, o, oy, ox) = y(row, o) + b_.value[o];
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t oh = grad_out.h(), ow = grad_out.w();
  const std::size_t rows = grad_out.n() * oh * ow;
  SSMA_CHECK(rows == cols_.rows());

  // Reshape grad to rows x out_ch.
  Matrix g(rows, out_ch_);
  std::size_t row = 0;
  for (std::size_t n = 0; n < grad_out.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row)
        for (std::size_t o = 0; o < out_ch_; ++o)
          g(row, o) = grad_out.at(n, o, oy, ox);

  // dW = cols^T g ; db = sum rows of g.
  Matrix dw;
  gemm_at(cols_, g, dw);  // (C*k*k) x out_ch
  for (std::size_t o = 0; o < out_ch_; ++o) {
    std::size_t r = 0;
    for (std::size_t c = 0; c < in_ch_; ++c)
      for (int ky = 0; ky < k_; ++ky)
        for (int kx = 0; kx < k_; ++kx, ++r)
          w_.grad.at(o, c, ky, kx) += dw(r, o);
    double db = 0.0;
    for (std::size_t rr = 0; rr < rows; ++rr) db += g(rr, o);
    b_.grad[o] += static_cast<float>(db);
  }

  // dX = col2im(g W^T).
  Matrix w = weight_matrix();
  Matrix dcols;
  gemm_bt(g, w, dcols);  // rows x (C*k*k)
  return col2im(dcols, in_n_, in_ch_, in_h_, in_w_, k_, stride_, pad_);
}

// ------------------------------------------------------------- BatchNorm

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum, double eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  SSMA_CHECK(channels >= 1);
  gamma_.value = Tensor(channels, 1, 1, 1, 1.0f);
  gamma_.grad = Tensor(channels, 1, 1, 1);
  gamma_.decay = false;
  beta_.value = Tensor(channels, 1, 1, 1, 0.0f);
  beta_.grad = Tensor(channels, 1, 1, 1);
  beta_.decay = false;
  run_mean_.assign(channels, 0.0);
  run_var_.assign(channels, 1.0);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  SSMA_CHECK(x.c() == channels_);
  const std::size_t per_ch = x.n() * x.h() * x.w();
  SSMA_CHECK(per_ch >= 1);
  Tensor out(x.n(), x.c(), x.h(), x.w());
  xhat_ = Tensor(x.n(), x.c(), x.h(), x.w());
  batch_mean_.assign(channels_, 0.0);
  batch_inv_std_.assign(channels_, 0.0);

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (train) {
      double s = 0.0, sq = 0.0;
      for (std::size_t n = 0; n < x.n(); ++n)
        for (std::size_t h = 0; h < x.h(); ++h)
          for (std::size_t w = 0; w < x.w(); ++w) {
            const double v = x.at(n, c, h, w);
            s += v;
            sq += v * v;
          }
      mean = s / static_cast<double>(per_ch);
      var = std::max(sq / static_cast<double>(per_ch) - mean * mean, 0.0);
      run_mean_[c] = (1.0 - momentum_) * run_mean_[c] + momentum_ * mean;
      run_var_[c] = (1.0 - momentum_) * run_var_[c] + momentum_ * var;
    } else {
      mean = run_mean_[c];
      var = run_var_[c];
    }
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    batch_mean_[c] = mean;
    batch_inv_std_[c] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::size_t n = 0; n < x.n(); ++n)
      for (std::size_t h = 0; h < x.h(); ++h)
        for (std::size_t w = 0; w < x.w(); ++w) {
          const float xh =
              static_cast<float>((x.at(n, c, h, w) - mean) * inv_std);
          xhat_.at(n, c, h, w) = xh;
          out.at(n, c, h, w) = g * xh + b;
        }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  SSMA_CHECK(grad_out.same_shape(xhat_));
  const std::size_t per_ch = grad_out.n() * grad_out.h() * grad_out.w();
  Tensor dx(grad_out.n(), grad_out.c(), grad_out.h(), grad_out.w());
  for (std::size_t c = 0; c < channels_; ++c) {
    double dgamma = 0.0, dbeta = 0.0;
    for (std::size_t n = 0; n < grad_out.n(); ++n)
      for (std::size_t h = 0; h < grad_out.h(); ++h)
        for (std::size_t w = 0; w < grad_out.w(); ++w) {
          const double go = grad_out.at(n, c, h, w);
          dgamma += go * xhat_.at(n, c, h, w);
          dbeta += go;
        }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    const double g = gamma_.value[c];
    const double inv_std = batch_inv_std_[c];
    const double m = static_cast<double>(per_ch);
    for (std::size_t n = 0; n < grad_out.n(); ++n)
      for (std::size_t h = 0; h < grad_out.h(); ++h)
        for (std::size_t w = 0; w < grad_out.w(); ++w) {
          const double go = grad_out.at(n, c, h, w);
          const double xh = xhat_.at(n, c, h, w);
          dx.at(n, c, h, w) = static_cast<float>(
              g * inv_std * (go - dbeta / m - xh * dgamma / m));
        }
  }
  return dx;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  mask_ = Tensor(x.n(), x.c(), x.h(), x.w());
  Tensor out(x.n(), x.c(), x.h(), x.w());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    out[i] = pos ? x[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  SSMA_CHECK(grad_out.same_shape(mask_));
  Tensor dx(grad_out.n(), grad_out.c(), grad_out.h(), grad_out.w());
  for (std::size_t i = 0; i < dx.size(); ++i) dx[i] = grad_out[i] * mask_[i];
  return dx;
}

// ------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(int k, int stride)
    : k_(k), stride_(stride < 0 ? k : stride) {
  SSMA_CHECK(k >= 1 && stride_ >= 1);
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  in_n_ = x.n();
  in_c_ = x.c();
  in_h_ = x.h();
  in_w_ = x.w();
  const std::size_t oh = conv_out_dim(x.h(), k_, stride_, 0);
  const std::size_t ow = conv_out_dim(x.w(), k_, stride_, 0);
  Tensor out(x.n(), x.c(), oh, ow);
  argmax_.assign(out.size(), 0);
  std::size_t idx = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t c = 0; c < x.c(); ++c)
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox, ++idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_flat = 0;
          for (int ky = 0; ky < k_; ++ky)
            for (int kx = 0; kx < k_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              if (iy >= x.h() || ix >= x.w()) continue;
              const float v = x.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_flat = ((n * x.c() + c) * x.h() + iy) * x.w() + ix;
              }
            }
          out[idx] = best;
          argmax_[idx] = best_flat;
        }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  SSMA_CHECK(grad_out.size() == argmax_.size());
  Tensor dx(in_n_, in_c_, in_h_, in_w_, 0.0f);
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    dx[argmax_[i]] += grad_out[i];
  return dx;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  SSMA_CHECK(in_features >= 1 && out_features >= 1);
  w_.value = Tensor(out_features, in_features, 1, 1);
  w_.grad = Tensor(out_features, in_features, 1, 1);
  b_.value = Tensor(out_features, 1, 1, 1);
  b_.grad = Tensor(out_features, 1, 1, 1);
  b_.decay = false;
  const double std = std::sqrt(2.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < w_.value.size(); ++i)
    w_.value[i] = static_cast<float>(rng.next_gaussian(0.0, std));
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  SSMA_CHECK_MSG(x.c() * x.h() * x.w() == in_f_, "linear feature mismatch");
  saved_x_ = x;
  Tensor out(x.n(), out_f_, 1, 1);
  for (std::size_t n = 0; n < x.n(); ++n) {
    const float* xi = x.data() + n * in_f_;
    for (std::size_t o = 0; o < out_f_; ++o) {
      const float* wr = w_.value.data() + o * in_f_;
      double acc = b_.value[o];
      for (std::size_t i = 0; i < in_f_; ++i) acc += wr[i] * xi[i];
      out.at(n, o, 0, 0) = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  SSMA_CHECK(grad_out.c() == out_f_);
  Tensor dx(saved_x_.n(), saved_x_.c(), saved_x_.h(), saved_x_.w());
  for (std::size_t n = 0; n < saved_x_.n(); ++n) {
    const float* xi = saved_x_.data() + n * in_f_;
    float* dxi = dx.data() + n * in_f_;
    for (std::size_t o = 0; o < out_f_; ++o) {
      const float go = grad_out.at(n, o, 0, 0);
      b_.grad[o] += go;
      float* wg = w_.grad.data() + o * in_f_;
      const float* wr = w_.value.data() + o * in_f_;
      for (std::size_t i = 0; i < in_f_; ++i) {
        wg[i] += go * xi[i];
        dxi[i] += go * wr[i];
      }
    }
  }
  return dx;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  c_ = x.c();
  h_ = x.h();
  w_ = x.w();
  Tensor out(x.n(), x.c() * x.h() * x.w(), 1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  return out;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.n(), c_, h_, w_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) dx[i] = grad_out[i];
  return dx;
}

// -------------------------------------------------------------- Residual

Residual::Residual(std::vector<std::unique_ptr<Layer>> body)
    : body_(std::move(body)) {
  SSMA_CHECK(!body_.empty());
}

Tensor Residual::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (auto& l : body_) y = l->forward(y, train);
  SSMA_CHECK_MSG(y.same_shape(x), "residual body must preserve shape");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = body_.rbegin(); it != body_.rend(); ++it)
    g = (*it)->backward(g);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] += grad_out[i];
  return g;
}

std::vector<Param*> Residual::params() {
  std::vector<Param*> ps;
  for (auto& l : body_)
    for (Param* p : l->params()) ps.push_back(p);
  return ps;
}

}  // namespace ssma::nn
