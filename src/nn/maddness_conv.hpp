// MADDNESS-substituted 3x3 convolution: the deployment path of Fig. 3.
// A trained (BN-folded) Conv2d is converted offline — each input channel
// becomes one codebook/compute block, each output channel one decoder
// lane — and inference replaces the conv GEMM with encode + LUT lookups
// through exactly the INT8/int16 arithmetic the macro implements.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "maddness/amm.hpp"
#include "nn/layers.hpp"

namespace ssma::nn {

class MaddnessConv2d {
 public:
  /// Trains the substitution from a conv layer (must be 3x3) and a
  /// calibration activation tensor (the layer's *input* distribution,
  /// non-negative). `max_calib_rows` caps the im2col rows used for
  /// training the hash trees/prototypes.
  MaddnessConv2d(Conv2d& conv, const Tensor& calibration,
                 const maddness::Config& base_cfg = {},
                 std::size_t max_calib_rows = 4096,
                 std::uint64_t seed = 1);

  std::size_t in_ch() const { return in_ch_; }
  std::size_t out_ch() const { return out_ch_; }
  const maddness::Amm& amm() const { return *amm_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  /// Approximate forward pass (encode -> lookup -> int16 accumulate ->
  /// dequantize -> +bias).
  Tensor forward(const Tensor& x) const;

  /// Exact float forward with the same (folded) weights, for accuracy
  /// comparisons.
  Tensor forward_exact(const Tensor& x) const;

  /// Forward pass with the patch matmul delegated: `apply` maps the
  /// quantized im2col patch rows to int16 accumulators (rows x out_ch)
  /// — e.g. a serving round-trip to this layer's registered model.
  /// Bit-exact vs forward() when the executor runs the same operator.
  using ApplyFn = std::function<std::vector<std::int16_t>(
      const maddness::QuantizedActivations&)>;
  Tensor forward_with(const Tensor& x, const ApplyFn& apply) const;

 private:
  std::size_t in_ch_, out_ch_;
  int stride_, pad_;
  Matrix weights_;             ///< (C*9) x out_ch, folded
  std::vector<float> bias_;
  std::unique_ptr<maddness::Amm> amm_;
};

}  // namespace ssma::nn
