#include "nn/resnet.hpp"

#include "util/check.hpp"

namespace ssma::nn {

namespace {

std::vector<std::unique_ptr<Layer>> conv_bn_relu(std::size_t in,
                                                 std::size_t out, Rng& rng) {
  std::vector<std::unique_ptr<Layer>> ls;
  ls.push_back(std::make_unique<Conv2d>(in, out, 3, 1, 1, rng));
  ls.push_back(std::make_unique<BatchNorm2d>(out));
  ls.push_back(std::make_unique<ReLU>());
  return ls;
}

}  // namespace

Network make_resnet9(const ResnetConfig& cfg, Rng& rng) {
  SSMA_CHECK(cfg.width >= 1 && cfg.classes >= 2);
  SSMA_CHECK_MSG(cfg.img_h % 8 == 0 && cfg.img_w % 8 == 0,
                 "image dims must be divisible by 8");
  const std::size_t b = cfg.width;
  Network net;

  for (auto& l : conv_bn_relu(3, b, rng)) net.add(std::move(l));
  for (auto& l : conv_bn_relu(b, 2 * b, rng)) net.add(std::move(l));
  net.emplace<MaxPool2d>(2);

  {
    std::vector<std::unique_ptr<Layer>> body;
    for (auto& l : conv_bn_relu(2 * b, 2 * b, rng)) body.push_back(std::move(l));
    for (auto& l : conv_bn_relu(2 * b, 2 * b, rng)) body.push_back(std::move(l));
    net.emplace<Residual>(std::move(body));
  }

  for (auto& l : conv_bn_relu(2 * b, 4 * b, rng)) net.add(std::move(l));
  net.emplace<MaxPool2d>(2);

  {
    std::vector<std::unique_ptr<Layer>> body;
    for (auto& l : conv_bn_relu(4 * b, 4 * b, rng)) body.push_back(std::move(l));
    for (auto& l : conv_bn_relu(4 * b, 4 * b, rng)) body.push_back(std::move(l));
    net.emplace<Residual>(std::move(body));
  }

  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * b * (cfg.img_h / 8) * (cfg.img_w / 8),
                      cfg.classes, rng);
  return net;
}

}  // namespace ssma::nn
