// Neural-network layers with forward and backward passes. Enough to train
// the ResNet-style CNN used for the Table II accuracy experiment from
// scratch: Conv2d (im2col), BatchNorm2d (with inference-time folding),
// ReLU, MaxPool2d, Linear, Flatten, and a Residual wrapper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

/// A trainable parameter and its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  bool decay = true;  ///< participates in weight decay
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;
  /// `train` toggles training behaviour (BN batch stats).
  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// Consumes dL/dout, returns dL/din; accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::vector<Param*> params() { return {}; }
};

// ---------------------------------------------------------------- Conv2d

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_ch, std::size_t out_ch, int k, int stride, int pad,
         Rng& rng);

  std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t in_ch() const { return in_ch_; }
  std::size_t out_ch() const { return out_ch_; }
  int kernel() const { return k_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  /// Weights as a (C*k*k) x out_ch matrix — the layout the MADDNESS LUT
  /// builder consumes directly.
  Matrix weight_matrix() const;
  void set_weight_matrix(const Matrix& w);
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::size_t in_ch_, out_ch_;
  int k_, stride_, pad_;
  Param w_;  ///< (out_ch, in_ch, k, k)
  Param b_;  ///< (out_ch, 1, 1, 1)
  // Saved for backward.
  Matrix cols_;
  std::size_t in_h_ = 0, in_w_ = 0, in_n_ = 0;
};

// ------------------------------------------------------------- BatchNorm

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double eps = 1e-5);

  std::string name() const override { return "batchnorm2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

  const std::vector<double>& running_mean() const { return run_mean_; }
  const std::vector<double>& running_var() const { return run_var_; }
  float gamma(std::size_t c) const { return gamma_.value[c]; }
  float beta(std::size_t c) const { return beta_.value[c]; }
  double eps() const { return eps_; }

 private:
  std::size_t channels_;
  double momentum_, eps_;
  Param gamma_, beta_;
  std::vector<double> run_mean_, run_var_;
  // Saved for backward.
  Tensor xhat_;
  std::vector<double> batch_mean_, batch_inv_std_;
};

// ------------------------------------------------------------------ ReLU

class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor mask_;
};

// ------------------------------------------------------------- MaxPool2d

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int k, int stride = -1);  // stride defaults to k

  std::string name() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  int k_, stride_;
  std::vector<std::size_t> argmax_;
  std::size_t in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

// ---------------------------------------------------------------- Linear

class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::string name() const override { return "linear"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  std::size_t in_features() const { return in_f_; }
  std::size_t out_features() const { return out_f_; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::size_t in_f_, out_f_;
  Param w_;  ///< (out_f, in_f, 1, 1)
  Param b_;
  Tensor saved_x_;
};

// --------------------------------------------------------------- Flatten

class Flatten : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::size_t c_ = 0, h_ = 0, w_ = 0;
};

// -------------------------------------------------------------- Residual

/// y = x + body(x). Shapes must match (identity shortcut).
class Residual : public Layer {
 public:
  explicit Residual(std::vector<std::unique_ptr<Layer>> body);

  std::string name() const override { return "residual"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  const std::vector<std::unique_ptr<Layer>>& body() const { return body_; }

 private:
  std::vector<std::unique_ptr<Layer>> body_;
};

}  // namespace ssma::nn
