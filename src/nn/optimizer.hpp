// SGD with momentum and decoupled weight decay, plus a cosine learning
// rate schedule — the standard recipe for small CNNs.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace ssma::nn {

class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<Param*> params, double lr, double momentum = 0.9,
               double weight_decay = 5e-4);

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  double lr_, momentum_, weight_decay_;
};

/// Cosine schedule from lr_max to lr_min over total_steps.
double cosine_lr(double lr_max, double lr_min, std::size_t step,
                 std::size_t total_steps);

}  // namespace ssma::nn
