#include "nn/maddness_conv.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

MaddnessConv2d::MaddnessConv2d(Conv2d& conv, const Tensor& calibration,
                               const maddness::Config& base_cfg,
                               std::size_t max_calib_rows,
                               std::uint64_t seed)
    : in_ch_(conv.in_ch()),
      out_ch_(conv.out_ch()),
      stride_(conv.stride()),
      pad_(conv.pad()) {
  SSMA_CHECK_MSG(conv.kernel() == 3,
                 "MADDNESS mapping targets 3x3 kernels (9-dim subvectors)");
  SSMA_CHECK(calibration.c() == in_ch_);

  weights_ = conv.weight_matrix();
  bias_.resize(out_ch_);
  for (std::size_t o = 0; o < out_ch_; ++o)
    bias_[o] = conv.bias().value[o];

  // Calibration rows: im2col of the layer input, subsampled.
  Matrix cols = im2col(calibration, 3, stride_, pad_);
  Matrix sample;
  if (cols.rows() > max_calib_rows) {
    Rng rng(seed);
    const auto perm = rng.permutation(cols.rows());
    sample = Matrix(max_calib_rows, cols.cols());
    for (std::size_t i = 0; i < max_calib_rows; ++i)
      for (std::size_t j = 0; j < cols.cols(); ++j)
        sample(i, j) = cols(perm[i], j);
  } else {
    sample = std::move(cols);
  }

  maddness::Config cfg = base_cfg;
  cfg.ncodebooks = static_cast<int>(in_ch_);
  cfg.subvec_dim = 9;
  amm_ = std::make_unique<maddness::Amm>(
      maddness::Amm::train(cfg, sample, weights_));
}

Tensor MaddnessConv2d::forward(const Tensor& x) const {
  SSMA_CHECK(x.c() == in_ch_);
  const std::size_t oh = conv_out_dim(x.h(), 3, stride_, pad_);
  const std::size_t ow = conv_out_dim(x.w(), 3, stride_, pad_);
  const Matrix cols = im2col(x, 3, stride_, pad_);
  const Matrix y = amm_->apply(cols);  // rows x out_ch

  Tensor out(x.n(), out_ch_, oh, ow);
  std::size_t row = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row)
        for (std::size_t o = 0; o < out_ch_; ++o)
          out.at(n, o, oy, ox) = y(row, o) + bias_[o];
  return out;
}

Tensor MaddnessConv2d::forward_with(const Tensor& x,
                                    const ApplyFn& apply) const {
  SSMA_CHECK(x.c() == in_ch_);
  const std::size_t oh = conv_out_dim(x.h(), 3, stride_, pad_);
  const std::size_t ow = conv_out_dim(x.w(), 3, stride_, pad_);
  const Matrix cols = im2col(x, 3, stride_, pad_);
  // Quantize with the operator's calibrated activation scale — the
  // executor sees exactly the rows Amm::apply would encode, so a remote
  // apply_int16 on the same operator reproduces forward() bit-for-bit.
  const maddness::QuantizedActivations q =
      maddness::quantize_activations(cols, amm_->activation_scale());
  const std::vector<std::int16_t> acc = apply(q);
  SSMA_CHECK_MSG(acc.size() == cols.rows() * out_ch_,
                 "conv executor returned wrong accumulator shape");
  const Matrix y = amm_->dequantize_result(acc, cols.rows());

  Tensor out(x.n(), out_ch_, oh, ow);
  std::size_t row = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row)
        for (std::size_t o = 0; o < out_ch_; ++o)
          out.at(n, o, oy, ox) = y(row, o) + bias_[o];
  return out;
}

Tensor MaddnessConv2d::forward_exact(const Tensor& x) const {
  SSMA_CHECK(x.c() == in_ch_);
  const std::size_t oh = conv_out_dim(x.h(), 3, stride_, pad_);
  const std::size_t ow = conv_out_dim(x.w(), 3, stride_, pad_);
  const Matrix cols = im2col(x, 3, stride_, pad_);
  Matrix y;
  gemm(cols, weights_, y);

  Tensor out(x.n(), out_ch_, oh, ow);
  std::size_t row = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row)
        for (std::size_t o = 0; o < out_ch_; ++o)
          out.at(n, o, oy, ox) = y(row, o) + bias_[o];
  return out;
}

}  // namespace ssma::nn
