// ResNet-9-style CNN builder (the paper evaluates ResNet9 on CIFAR-10).
// The width parameter scales channel counts so tests can train tiny
// variants quickly while examples/benches use a wider one.
//
// Architecture (width b, input 3 x H x W, H/W divisible by 8):
//   conv3x3(3,b)   - bn - relu
//   conv3x3(b,2b)  - bn - relu - maxpool2
//   residual{ conv3x3(2b,2b)-bn-relu, conv3x3(2b,2b)-bn-relu }
//   conv3x3(2b,4b) - bn - relu - maxpool2
//   residual{ conv3x3(4b,4b)-bn-relu, conv3x3(4b,4b)-bn-relu }
//   maxpool2 - flatten - linear(4b*(H/8)*(W/8), classes)
#pragma once

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

struct ResnetConfig {
  std::size_t width = 16;     ///< base channel count b
  std::size_t classes = 10;
  std::size_t img_h = 16;
  std::size_t img_w = 16;
};

Network make_resnet9(const ResnetConfig& cfg, Rng& rng);

}  // namespace ssma::nn
