#include "nn/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma::nn {

SgdOptimizer::SgdOptimizer(std::vector<Param*> params, double lr,
                           double momentum, double weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  SSMA_CHECK(lr > 0.0 && momentum >= 0.0 && weight_decay >= 0.0);
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    SSMA_CHECK(p != nullptr);
    velocity_.emplace_back(p->value.n(), p->value.c(), p->value.h(),
                           p->value.w());
  }
}

void SgdOptimizer::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    Tensor& v = velocity_[pi];
    const float wd = p.decay ? static_cast<float>(weight_decay_) : 0.0f;
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i] + wd * p.value[i];
      v[i] = static_cast<float>(momentum_) * v[i] + g;
      p.value[i] -= static_cast<float>(lr_) * v[i];
      p.grad[i] = 0.0f;
    }
  }
}

double cosine_lr(double lr_max, double lr_min, std::size_t step,
                 std::size_t total_steps) {
  SSMA_CHECK(total_steps >= 1);
  const double t =
      std::min(1.0, static_cast<double>(step) / static_cast<double>(total_steps));
  return lr_min + 0.5 * (lr_max - lr_min) * (1.0 + std::cos(3.14159265358979 * t));
}

}  // namespace ssma::nn
