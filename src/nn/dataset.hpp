// Synthetic 10-class image dataset (substitute for CIFAR-10, which is not
// available offline — see DESIGN.md §3). Classes are procedurally
// generated texture/shape families with per-sample jitter and noise:
// learnable by a small CNN but far from trivial, which is what the
// accuracy-preservation experiment needs (the claim under test is
// *relative*: MADDNESS-substituted accuracy vs float accuracy).
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

struct Dataset {
  Tensor images;            ///< (N, 3, H, W), values in [0, 1]
  std::vector<int> labels;  ///< class index per image

  std::size_t size() const { return labels.size(); }
};

inline constexpr int kNumClasses = 10;

/// Generates `n` samples of size 3 x h x w with balanced classes.
Dataset make_synthetic_dataset(Rng& rng, std::size_t n, std::size_t h,
                               std::size_t w);

/// Extracts a batch by indices.
std::pair<Tensor, std::vector<int>> take_batch(
    const Dataset& ds, const std::vector<std::size_t>& idx);

}  // namespace ssma::nn
