// Sequential network container plus batch-norm folding for inference
// (the form the MADDNESS substitution consumes).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace ssma::nn {

class Network {
 public:
  Network() = default;

  Network& add(std::unique_ptr<Layer> layer);
  template <typename L, typename... Args>
  Network& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, bool train = false);
  /// Backward through all layers; returns dL/dinput.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();
  void zero_grads();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Total trainable scalar count.
  std::size_t num_parameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Folds a BatchNorm2d (inference statistics) into the preceding Conv2d:
/// w' = w * gamma/sqrt(var+eps), b' = (b - mean) * gamma/sqrt(var+eps) + beta.
/// After folding, conv(x) == bn(conv(x)) in eval mode.
void fold_batchnorm(Conv2d& conv, const BatchNorm2d& bn);

}  // namespace ssma::nn
