// Whole-network MADDNESS substitution: walks a trained Network, folds
// each Conv2d+BatchNorm2d pair, trains a MaddnessConv2d per 3x3 conv
// (calibrating each on the float activations reaching that layer), and
// exposes a forward pass that can run either the exact float path or the
// substituted LUT path — the software equivalent of deploying the CNN
// onto the accelerator (Fig. 3), used by the Table II accuracy bench.
//
// Lifetime: borrows non-conv layers (ReLU/pool/linear/...) from the
// source network, which must outlive this object.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/maddness_conv.hpp"
#include "nn/network.hpp"

namespace ssma::nn {

class MaddnessNetwork {
 public:
  struct Options {
    maddness::Config base_cfg = {};
    std::size_t max_calib_rows = 3000;
    std::uint64_t seed = 1;
    /// Propagate calibration through the *approximate* path so each layer
    /// is calibrated on the activation distribution it will actually see
    /// at inference (error-aware calibration). Strongly recommended for
    /// deep networks; the exact path is kept for ablation.
    bool error_aware_calibration = true;
    /// Joint ridge refit of the prototypes (MADDNESS §4.2) — markedly
    /// better reconstruction than plain bucket means for deep stacks.
    bool ridge_prototypes = true;
  };

  /// `trained` must be in its final state; `calibration` is a batch of
  /// representative inputs used to fit the per-layer codebooks.
  MaddnessNetwork(Network& trained, const Tensor& calibration);
  MaddnessNetwork(Network& trained, const Tensor& calibration,
                  const Options& opts);

  /// Forward pass; `use_amm` selects the LUT path vs the exact float
  /// path (identical layer structure, BN already folded in both).
  Tensor forward(const Tensor& x, bool use_amm) const;

  /// Forward pass with every substituted conv's patch matmul delegated
  /// to `exec(conv_idx, q)` — conv_idx matches substituted_amms() /
  /// register_network_layers order, q is the layer's quantized im2col
  /// batch, and the return is the int16 accumulators. Serving each
  /// layer through a model registry this way reproduces
  /// forward(x, /*use_amm=*/true) bit-for-bit: the network runs
  /// end-to-end with all LUT compute behind the executor.
  using ConvExecutor = std::function<std::vector<std::int16_t>(
      std::size_t, const maddness::QuantizedActivations&)>;
  Tensor forward_served(const Tensor& x, const ConvExecutor& exec) const;

  std::size_t num_substituted_convs() const { return nconvs_; }

  /// Access to a substituted conv (for driving the circuit simulator).
  const MaddnessConv2d& substituted_conv(std::size_t i) const;

  /// The substituted convs' trained operators in network order — the
  /// stage list engine::register_network_layers exports into a model
  /// registry for served CNN-feature (patch-matmul) workloads.
  std::vector<const maddness::Amm*> substituted_amms() const;

  /// Codebook-aware recovery step: re-trains the network's final Linear
  /// classifier on features produced by the *substituted* path (the
  /// cheap analogue of the codebook-aware training the MADDNESS line of
  /// work uses to retain accuracy). Requires the last stage to be a
  /// Linear layer; mutates that layer in the source network.
  void fine_tune_classifier(const Tensor& images,
                            const std::vector<int>& labels,
                            std::size_t epochs = 30, double lr = 0.05,
                            std::size_t batch = 64,
                            std::uint64_t seed = 11);

 private:
  struct Stage {
    // Exactly one of these is set.
    std::unique_ptr<MaddnessConv2d> mconv;
    Layer* borrowed = nullptr;
    std::vector<Stage> residual_body;  // used when this is a residual
    bool is_residual = false;
  };

  static std::vector<Stage> build_stages(
      const std::vector<Layer*>& layers, Tensor& calib, const Options& opts,
      std::size_t& nconvs, std::vector<const MaddnessConv2d*>& registry);
  static Tensor run_stages(const std::vector<Stage>& stages, const Tensor& x,
                           bool use_amm);
  Tensor run_stages_served(const std::vector<Stage>& stages,
                           const Tensor& x, const ConvExecutor& exec) const;

  std::vector<Stage> stages_;
  std::size_t nconvs_ = 0;
  std::vector<const MaddnessConv2d*> registry_;
};

}  // namespace ssma::nn
