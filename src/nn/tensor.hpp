// Minimal 4-D tensor (N, C, H, W) in float, the data currency of the NN
// substrate. Row-major, dense, value semantics.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace ssma::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
         float fill = 0.0f);

  std::size_t n() const { return n_; }
  std::size_t c() const { return c_; }
  std::size_t h() const { return h_; }
  std::size_t w() const { return w_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool same_shape(const Tensor& o) const {
    return n_ == o.n_ && c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
  }

  void fill(float v);
  double sum() const;

 private:
  std::size_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// im2col for a (N,C,H,W) input with kernel k, stride s, padding p.
/// Output: (N * out_h * out_w) x (C * k * k), with the column ordering
/// (c, ky, kx) — i.e. each input channel contributes a contiguous k*k
/// patch, which is exactly the per-codebook subvector layout the
/// accelerator's compute blocks consume (Fig. 3).
Matrix im2col(const Tensor& x, int k, int stride, int pad);

/// Adjoint of im2col: scatters gradient columns back onto the input.
Tensor col2im(const Matrix& cols, std::size_t n, std::size_t c,
              std::size_t h, std::size_t w, int k, int stride, int pad);

/// Output spatial size for a conv/pool dimension.
std::size_t conv_out_dim(std::size_t in, int k, int stride, int pad);

}  // namespace ssma::nn
