// Minibatch SGD training loop and evaluation helpers.
#pragma once

#include "nn/dataset.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

struct TrainConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  double lr_max = 0.02;
  double lr_min = 0.002;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_train_acc;
};

/// Trains in place; deterministic given `rng`.
TrainHistory train(Network& net, const Dataset& data, const TrainConfig& cfg,
                   Rng& rng);

/// Top-1 accuracy in eval mode (batched).
double evaluate(Network& net, const Dataset& data,
                std::size_t batch_size = 64);

}  // namespace ssma::nn
