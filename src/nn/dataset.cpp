#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ssma::nn {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Base intensity pattern for a class at pixel (y, x), in [0, 1].
/// `phase`, `freq_jitter` randomize each sample within its class family.
double class_pattern(int cls, double y, double x, double h, double w,
                     double phase, double freq_jitter) {
  const double cy = y / h - 0.5, cx = x / w - 0.5;  // centered coords
  const double r = std::sqrt(cy * cy + cx * cx);
  const double f = (2.0 + freq_jitter) * 2.0 * kPi;
  switch (cls) {
    case 0:  // horizontal stripes
      return 0.5 + 0.5 * std::sin(f * (y / h) + phase);
    case 1:  // vertical stripes
      return 0.5 + 0.5 * std::sin(f * (x / w) + phase);
    case 2:  // diagonal stripes
      return 0.5 + 0.5 * std::sin(f * ((x + y) / (h + w)) * 2.0 + phase);
    case 3:  // checkerboard
      return 0.5 + 0.5 * std::sin(f * (y / h) + phase) *
                       std::sin(f * (x / w) + phase);
    case 4:  // centered blob
      return std::exp(-r * r / 0.04);
    case 5:  // four corner blobs
      return std::exp(-((std::abs(cy) - 0.3) * (std::abs(cy) - 0.3) +
                        (std::abs(cx) - 0.3) * (std::abs(cx) - 0.3)) /
                      0.015);
    case 6:  // ring
      return std::exp(-(r - 0.3) * (r - 0.3) / 0.006);
    case 7:  // horizontal gradient
      return x / w;
    case 8:  // radial sinusoid
      return 0.5 + 0.5 * std::cos(f * r * 2.2 + phase);
    case 9:  // grid of dots
      return (0.5 + 0.5 * std::sin(f * 1.5 * (y / h) + phase)) *
             (0.5 + 0.5 * std::sin(f * 1.5 * (x / w) + phase));
    default:
      return 0.0;
  }
}

}  // namespace

Dataset make_synthetic_dataset(Rng& rng, std::size_t n, std::size_t h,
                               std::size_t w) {
  SSMA_CHECK(n >= 1 && h >= 8 && w >= 8);
  Dataset ds;
  ds.images = Tensor(n, 3, h, w);
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % kNumClasses);
    ds.labels[i] = cls;
    const double phase = rng.next_double(0.0, 2.0 * kPi);
    const double fj = rng.next_double(-0.4, 0.4);
    const double brightness = rng.next_double(0.7, 1.0);
    // Class-dependent colorization with per-sample jitter: channel c gets
    // weight depending on (cls + c) so color carries class signal too.
    double cw[3];
    for (int c = 0; c < 3; ++c)
      cw[c] = 0.45 + 0.55 * (((cls + c) % 3) / 2.0) +
              rng.next_double(-0.08, 0.08);
    for (std::size_t y = 0; y < h; ++y)
      for (std::size_t x = 0; x < w; ++x) {
        const double p = class_pattern(cls, static_cast<double>(y),
                                       static_cast<double>(x),
                                       static_cast<double>(h),
                                       static_cast<double>(w), phase, fj);
        for (int c = 0; c < 3; ++c) {
          double v = brightness * cw[c] * p + rng.next_gaussian(0.0, 0.05);
          ds.images.at(i, c, y, x) =
              static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
      }
  }
  return ds;
}

std::pair<Tensor, std::vector<int>> take_batch(
    const Dataset& ds, const std::vector<std::size_t>& idx) {
  SSMA_CHECK(!idx.empty());
  const std::size_t c = ds.images.c(), h = ds.images.h(), w = ds.images.w();
  Tensor batch(idx.size(), c, h, w);
  std::vector<int> labels(idx.size());
  for (std::size_t bi = 0; bi < idx.size(); ++bi) {
    SSMA_CHECK(idx[bi] < ds.size());
    labels[bi] = ds.labels[idx[bi]];
    for (std::size_t ci = 0; ci < c; ++ci)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x)
          batch.at(bi, ci, y, x) = ds.images.at(idx[bi], ci, y, x);
  }
  return {std::move(batch), std::move(labels)};
}

}  // namespace ssma::nn
