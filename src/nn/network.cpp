#include "nn/network.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma::nn {

Network& Network::add(std::unique_ptr<Layer> layer) {
  SSMA_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Network::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (auto& l : layers_) y = l->forward(y, train);
  return y;
}

Tensor Network::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> ps;
  for (auto& l : layers_)
    for (Param* p : l->params()) ps.push_back(p);
  return ps;
}

void Network::zero_grads() {
  for (Param* p : params()) p->grad.fill(0.0f);
}

std::size_t Network::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

void fold_batchnorm(Conv2d& conv, const BatchNorm2d& bn) {
  const std::size_t out_ch = conv.out_ch();
  SSMA_CHECK_MSG(bn.running_mean().size() == out_ch,
                 "batchnorm/conv channel mismatch");
  for (std::size_t o = 0; o < out_ch; ++o) {
    const double scale =
        bn.gamma(o) / std::sqrt(bn.running_var()[o] + bn.eps());
    for (std::size_t c = 0; c < conv.in_ch(); ++c)
      for (int ky = 0; ky < conv.kernel(); ++ky)
        for (int kx = 0; kx < conv.kernel(); ++kx)
          conv.weight().value.at(o, c, ky, kx) = static_cast<float>(
              conv.weight().value.at(o, c, ky, kx) * scale);
    conv.bias().value[o] = static_cast<float>(
        (conv.bias().value[o] - bn.running_mean()[o]) * scale + bn.beta(o));
  }
}

}  // namespace ssma::nn
