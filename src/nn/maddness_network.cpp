#include "nn/maddness_network.hpp"

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::nn {

namespace {

/// Flattens a Network into raw layer pointers (top level only; residual
/// bodies are handled recursively by build_stages).
std::vector<Layer*> layer_pointers(Network& net) {
  std::vector<Layer*> ls;
  for (std::size_t i = 0; i < net.num_layers(); ++i)
    ls.push_back(&net.layer(i));
  return ls;
}

std::vector<Layer*> body_pointers(const Residual& res) {
  std::vector<Layer*> ls;
  for (const auto& l : res.body()) ls.push_back(l.get());
  return ls;
}

}  // namespace

std::vector<MaddnessNetwork::Stage> MaddnessNetwork::build_stages(
    const std::vector<Layer*>& layers, Tensor& calib, const Options& opts,
    std::size_t& nconvs, std::vector<const MaddnessConv2d*>& registry) {
  std::vector<Stage> stages;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(layers[i])) {
      // Fold a directly following BatchNorm2d into a copy of the conv.
      Conv2d folded = *conv;
      bool skip_bn = false;
      if (i + 1 < layers.size()) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(layers[i + 1])) {
          fold_batchnorm(folded, *bn);
          skip_bn = true;
        }
      }
      Stage s;
      maddness::Config cfg = opts.base_cfg;
      if (opts.ridge_prototypes)
        cfg.proto_opt = maddness::PrototypeOpt::kRidgeJoint;
      s.mconv = std::make_unique<MaddnessConv2d>(
          folded, calib, cfg, opts.max_calib_rows, opts.seed + nconvs);
      ++nconvs;
      registry.push_back(s.mconv.get());
      // Error-aware calibration: downstream layers see the approximate
      // activations they will get at inference.
      calib = opts.error_aware_calibration ? s.mconv->forward(calib)
                                           : s.mconv->forward_exact(calib);
      stages.push_back(std::move(s));
      if (skip_bn) ++i;
      continue;
    }
    if (auto* res = dynamic_cast<Residual*>(layers[i])) {
      Stage s;
      s.is_residual = true;
      Tensor body_calib = calib;
      s.residual_body = build_stages(body_pointers(*res), body_calib, opts,
                                     nconvs, registry);
      SSMA_CHECK_MSG(body_calib.same_shape(calib),
                     "residual body must preserve shape");
      for (std::size_t j = 0; j < calib.size(); ++j)
        calib[j] += body_calib[j];
      stages.push_back(std::move(s));
      continue;
    }
    // Any other layer is borrowed and run in eval mode.
    Stage s;
    s.borrowed = layers[i];
    calib = layers[i]->forward(calib, /*train=*/false);
    stages.push_back(std::move(s));
  }
  return stages;
}

MaddnessNetwork::MaddnessNetwork(Network& trained, const Tensor& calibration)
    : MaddnessNetwork(trained, calibration, Options{}) {}

MaddnessNetwork::MaddnessNetwork(Network& trained, const Tensor& calibration,
                                 const Options& opts) {
  Tensor calib = calibration;
  stages_ =
      build_stages(layer_pointers(trained), calib, opts, nconvs_, registry_);
  SSMA_CHECK_MSG(nconvs_ >= 1, "network contains no 3x3 convolutions");
}

Tensor MaddnessNetwork::run_stages(const std::vector<Stage>& stages,
                                   const Tensor& x, bool use_amm) {
  Tensor y = x;
  for (const auto& s : stages) {
    if (s.mconv) {
      y = use_amm ? s.mconv->forward(y) : s.mconv->forward_exact(y);
    } else if (s.is_residual) {
      Tensor body = run_stages(s.residual_body, y, use_amm);
      SSMA_CHECK(body.same_shape(y));
      for (std::size_t i = 0; i < y.size(); ++i) y[i] += body[i];
    } else {
      y = s.borrowed->forward(y, /*train=*/false);
    }
  }
  return y;
}

Tensor MaddnessNetwork::forward(const Tensor& x, bool use_amm) const {
  return run_stages(stages_, x, use_amm);
}

Tensor MaddnessNetwork::run_stages_served(const std::vector<Stage>& stages,
                                          const Tensor& x,
                                          const ConvExecutor& exec) const {
  Tensor y = x;
  for (const auto& s : stages) {
    if (s.mconv) {
      // registry_ holds the substituted convs in training order (the
      // same order substituted_amms() exports); recover this stage's
      // executor index from it.
      std::size_t idx = 0;
      while (idx < registry_.size() && registry_[idx] != s.mconv.get())
        ++idx;
      SSMA_CHECK(idx < registry_.size());
      y = s.mconv->forward_with(
          y, [&](const maddness::QuantizedActivations& q) {
            return exec(idx, q);
          });
    } else if (s.is_residual) {
      Tensor body = run_stages_served(s.residual_body, y, exec);
      SSMA_CHECK(body.same_shape(y));
      for (std::size_t i = 0; i < y.size(); ++i) y[i] += body[i];
    } else {
      y = s.borrowed->forward(y, /*train=*/false);
    }
  }
  return y;
}

Tensor MaddnessNetwork::forward_served(const Tensor& x,
                                       const ConvExecutor& exec) const {
  return run_stages_served(stages_, x, exec);
}

const MaddnessConv2d& MaddnessNetwork::substituted_conv(
    std::size_t i) const {
  SSMA_CHECK(i < registry_.size());
  return *registry_[i];
}

std::vector<const maddness::Amm*> MaddnessNetwork::substituted_amms()
    const {
  std::vector<const maddness::Amm*> amms;
  amms.reserve(registry_.size());
  for (const MaddnessConv2d* conv : registry_)
    amms.push_back(&conv->amm());
  return amms;
}

void MaddnessNetwork::fine_tune_classifier(const Tensor& images,
                                           const std::vector<int>& labels,
                                           std::size_t epochs, double lr,
                                           std::size_t batch,
                                           std::uint64_t seed) {
  SSMA_CHECK(images.n() == labels.size());
  SSMA_CHECK(!stages_.empty());
  auto* linear = dynamic_cast<Linear*>(stages_.back().borrowed);
  SSMA_CHECK_MSG(linear != nullptr,
                 "fine_tune_classifier requires a final Linear layer");

  // Features: substituted path up to (excluding) the final Linear.
  Tensor feats = images;
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    if (s.mconv) {
      feats = s.mconv->forward(feats);
    } else if (s.is_residual) {
      Tensor body = run_stages(s.residual_body, feats, /*use_amm=*/true);
      for (std::size_t j = 0; j < feats.size(); ++j) feats[j] += body[j];
    } else {
      feats = s.borrowed->forward(feats, /*train=*/false);
    }
  }

  SgdOptimizer opt({&linear->weight(), &linear->bias()}, lr, 0.9, 1e-4);
  Rng rng(seed);
  const std::size_t n = feats.n();
  const std::size_t steps = std::max<std::size_t>(1, n / batch);
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto perm = rng.permutation(n);
    for (std::size_t s = 0; s < steps; ++s) {
      const std::size_t lo = s * batch;
      const std::size_t hi = std::min(n, lo + batch);
      Tensor xb(hi - lo, feats.c(), 1, 1);
      std::vector<int> yb(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        yb[i - lo] = labels[perm[i]];
        for (std::size_t c = 0; c < feats.c(); ++c)
          xb.at(i - lo, c, 0, 0) = feats.at(perm[i], c, 0, 0);
      }
      const Tensor logits = linear->forward(xb, true);
      const LossResult lres = softmax_cross_entropy(logits, yb);
      linear->backward(lres.grad);
      opt.step();
    }
  }
}

}  // namespace ssma::nn
