#include "nn/tensor.hpp"

#include "util/check.hpp"

namespace ssma::nn {

Tensor::Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
               float fill)
    : n_(n), c_(c), h_(h), w_(w), data_(n * c * h * w, fill) {}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  SSMA_CHECK_MSG(n < n_ && c < c_ && h < h_ && w < w_, "tensor index OOB");
  return data_[((n * c_ + c) * h_ + h) * w_ + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  SSMA_CHECK_MSG(n < n_ && c < c_ && h < h_ && w < w_, "tensor index OOB");
  return data_[((n * c_ + c) * h_ + h) * w_ + w];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

std::size_t conv_out_dim(std::size_t in, int k, int stride, int pad) {
  SSMA_CHECK(k >= 1 && stride >= 1 && pad >= 0);
  const long long out =
      (static_cast<long long>(in) + 2LL * pad - k) / stride + 1;
  SSMA_CHECK_MSG(out >= 1, "conv output dimension collapsed");
  return static_cast<std::size_t>(out);
}

Matrix im2col(const Tensor& x, int k, int stride, int pad) {
  const std::size_t oh = conv_out_dim(x.h(), k, stride, pad);
  const std::size_t ow = conv_out_dim(x.w(), k, stride, pad);
  Matrix cols(x.n() * oh * ow,
              x.c() * static_cast<std::size_t>(k) * k);
  std::size_t row = 0;
  for (std::size_t n = 0; n < x.n(); ++n)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row) {
        float* dst = cols.row(row);
        std::size_t col = 0;
        for (std::size_t c = 0; c < x.c(); ++c)
          for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx, ++col) {
              const long long iy =
                  static_cast<long long>(oy) * stride + ky - pad;
              const long long ix =
                  static_cast<long long>(ox) * stride + kx - pad;
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<long long>(x.h()) ||
                  ix >= static_cast<long long>(x.w())) {
                dst[col] = 0.0f;
              } else {
                dst[col] = x.at(n, c, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
              }
            }
      }
  return cols;
}

Tensor col2im(const Matrix& cols, std::size_t n, std::size_t c,
              std::size_t h, std::size_t w, int k, int stride, int pad) {
  const std::size_t oh = conv_out_dim(h, k, stride, pad);
  const std::size_t ow = conv_out_dim(w, k, stride, pad);
  SSMA_CHECK(cols.rows() == n * oh * ow);
  SSMA_CHECK(cols.cols() == c * static_cast<std::size_t>(k) * k);
  Tensor x(n, c, h, w, 0.0f);
  std::size_t row = 0;
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox, ++row) {
        const float* src = cols.row(row);
        std::size_t col = 0;
        for (std::size_t ci = 0; ci < c; ++ci)
          for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx, ++col) {
              const long long iy =
                  static_cast<long long>(oy) * stride + ky - pad;
              const long long ix =
                  static_cast<long long>(ox) * stride + kx - pad;
              if (iy < 0 || ix < 0 || iy >= static_cast<long long>(h) ||
                  ix >= static_cast<long long>(w))
                continue;
              x.at(ni, ci, static_cast<std::size_t>(iy),
                   static_cast<std::size_t>(ix)) += src[col];
            }
      }
  return x;
}

}  // namespace ssma::nn
