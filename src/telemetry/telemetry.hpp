// Request-lifecycle tracing: a lock-free per-thread ring-buffer span
// collector with nanosecond monotonic timestamps.
//
// Every serving-pipeline stage (admission, queue wait, batch formation,
// encode, LUT accumulation, the dequant->ReLU->requant epilogue, ack,
// checkpointing, journal appends, hot-swap) records a SpanEvent into the
// thread's SpanRecorder; TraceSession snapshots every recorder and
// renders a Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) with one track per thread, so a request's time can
// be attributed stage by stage across shards.
//
// Two gates keep the zero-alloc serving hot path intact:
//   * compile-time — the SSMA_TRACE CMake knob (default ON) defines
//     SSMA_TRACE_ENABLED; when OFF every SSMA_TRACE_* macro expands to
//     ((void)0), so instrumented TUs are byte-identical in behavior to
//     uninstrumented ones (the classes below still compile — tests and
//     exporters are knob-independent — but no call site records).
//   * runtime — TraceSession::enable()/disable(); a disabled session
//     costs one relaxed atomic load per span site and allocates nothing
//     (thread recorders are created lazily on the first recorded span).
//
// The ring buffer is a per-slot seqlock over std::atomic words: the
// owner thread writes, any thread snapshots, and a reader that races a
// wrap sees either the old event or the new one, never a torn mix —
// TSan-clean by construction (tests/test_telemetry.cpp hammers this).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ssma::telemetry {

using TraceClock = std::chrono::steady_clock;

/// Lifecycle stages a span can describe (the serving pipeline in
/// admission order, then the durability/registry side channels).
enum class Stage : std::uint8_t {
  kAdmit = 0,       ///< InferenceServer::submit admission
  kQueueWait,       ///< enqueue -> picked into a batch
  kBatchForm,       ///< first pop -> batch closed (Batcher::next_batch)
  kEncode,          ///< Amm::encode_batch inside the engine
  kLutAccumulate,   ///< Amm::apply_int16 / accelerator stage run
  kEpilogue,        ///< dequant -> ReLU -> requant stage handoff
  kAck,             ///< response slicing + promise fulfillment
  kCheckpoint,      ///< registry/state checkpoint write
  kJournalAppend,   ///< write-ahead journal append
  kSwap,            ///< register_model version bump (hot-swap)
  kDeviceWait,      ///< paced backend: modeled device service time
  kReplay,          ///< journal replay re-admission
  kNetRead,         ///< TCP front end: frame read + decode
  kNetWrite,        ///< TCP front end: response serialize + write
  kAdmitReject,     ///< admission controller shed a request
  kReplSend,        ///< leader: replication record/checkpoint send
  kReplApply,       ///< follower: record persisted + replayed into the
                    ///< warm standby
  kPromotion,       ///< follower: seal -> drain -> serving transition
  kShadowExecute,   ///< rollout: candidate bank run on the spare engine
  kShadowCompare,   ///< rollout: live-vs-candidate drift comparison
};

inline constexpr int kNumStages = 20;
const char* stage_name(Stage stage);

/// Sentinel for "no request id attached" (spans outside any request,
/// e.g. an idle checkpoint). 0 is a real request id.
inline constexpr std::uint64_t kNoRequestId = ~std::uint64_t{0};

/// Sentinel for "no stage tag attached". Tags are 24-bit: they ride in
/// the same seqlock payload word as the stage enum.
inline constexpr std::uint32_t kNoSpanTag = 0xFFFFFFu;

/// One closed span. Timestamps are nanoseconds since the session epoch.
/// [id_lo, id_hi] is the request-id range the span covers (a batch span
/// covers every request stitched into the batch; single-request spans
/// have id_lo == id_hi; kNoRequestId both when unattributed). `tag`
/// disambiguates repeated spans of one stage — pipeline engines tag
/// kEncode/kLutAccumulate/kEpilogue with the plan stage index so
/// Perfetto shows per-layer time ("epilogue/2") instead of one merged
/// row.
struct SpanEvent {
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
  std::uint64_t id_lo = kNoRequestId;
  std::uint64_t id_hi = kNoRequestId;
  Stage stage = Stage::kAdmit;
  std::uint32_t tag = kNoSpanTag;
};

/// Fixed-capacity single-writer ring buffer of SpanEvents. The owner
/// thread pushes; any thread snapshots concurrently (per-slot seqlock:
/// a snapshot drops a slot it raced rather than returning torn data).
/// When the ring wraps, the oldest events are overwritten — pushed()
/// minus the snapshot size is the number of spans lost to wrap.
class SpanRecorder {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpanRecorder(std::size_t capacity);
  ~SpanRecorder();
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Owner thread only.
  void push(const SpanEvent& ev);

  /// Any thread: every event still live in the ring, oldest first.
  std::vector<SpanEvent> snapshot() const;

  /// Total events ever pushed (monotonic, survives wrap).
  std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return size_; }

  const std::string& track() const { return track_; }
  void set_track(std::string name) { track_ = std::move(name); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq;
    std::atomic<std::uint64_t> w[5];
  };

  // Anonymous-mmap slab, NOT a value-initialized vector: a default
  // ring is 768 KB/thread, and eagerly zeroing (and so faulting in)
  // all of it when a thread records its first span costs more than the
  // spans themselves on short bursts. mmap'd zero pages fault lazily,
  // so a thread only pays for the slots it actually writes — and
  // unlike calloc this can't regress to heap + memset when glibc
  // adapts its mmap threshold after a TraceSession::clear(). All-zero
  // bytes IS the valid initial state (seq == 0 == unwritten).
  Slot* slots_ = nullptr;
  std::size_t size_ = 0;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::string track_;  ///< set at registration, before events flow
};

/// Process-wide span collection: a registry of per-thread recorders plus
/// the runtime on/off gate and the time epoch. All methods are
/// thread-safe; recording methods touch only the calling thread's
/// recorder (created lazily, registered under the session mutex once).
class TraceSession {
 public:
  static TraceSession& instance();

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every registered recorder and resets the epoch to now.
  /// Threads that recorded before keep working: their next span lazily
  /// registers a fresh recorder (generation check).
  void clear();

  /// Ring capacity for recorders registered after this call.
  void set_ring_capacity(std::size_t capacity);

  std::uint64_t now_ns() const { return to_ns(TraceClock::now()); }
  /// Nanoseconds since the session epoch (0 for pre-epoch instants).
  std::uint64_t to_ns(TraceClock::time_point t) const;

  /// Names the calling thread's track in the exported trace (e.g.
  /// "shard-3"). Cheap when tracing is off: the name is stashed
  /// thread-locally and only materializes a recorder with the first
  /// recorded span.
  void set_thread_track(std::string name);

  /// Records a closed span on the calling thread's track. No-op when
  /// the session is disabled. `tag` (24-bit, kNoSpanTag = untagged)
  /// distinguishes repeated spans of one stage, e.g. per-layer epilogue
  /// time in a pipeline model.
  void record_span(Stage stage, std::uint64_t t_begin_ns,
                   std::uint64_t t_end_ns, std::uint64_t id_lo,
                   std::uint64_t id_hi, std::uint32_t tag = kNoSpanTag);
  void record_span(Stage stage, TraceClock::time_point begin,
                   TraceClock::time_point end, std::uint64_t id_lo,
                   std::uint64_t id_hi, std::uint32_t tag = kNoSpanTag);

  /// One thread's snapshot: track name, live events (oldest first) and
  /// the total pushed count (pushed - events.size() = lost to wrap).
  struct TrackEvents {
    std::string track;
    std::vector<SpanEvent> events;
    std::uint64_t pushed = 0;
  };
  std::vector<TrackEvents> collect() const;

  /// Chrome trace-event JSON ("X" complete events, one track per
  /// recorded thread, request-id ranges in args) — open in Perfetto or
  /// chrome://tracing.
  std::string render_chrome_json() const;

 private:
  TraceSession();

  std::shared_ptr<SpanRecorder> thread_recorder();

  std::atomic<bool> enabled_{false};
  /// Epoch as a raw tick count so to_ns() — two calls per recorded
  /// span — never touches mu_. Written only by the constructor and
  /// clear(), read relaxed on the record path.
  std::atomic<TraceClock::rep> epoch_ticks_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SpanRecorder>> recorders_;
  std::size_t ring_capacity_;
  std::uint64_t generation_ = 0;  ///< guarded by mu_
  /// Lock-free mirror of generation_ for the record_span fast path.
  std::atomic<std::uint64_t> generation_public_{0};
};

/// Thread-local request-id range engine spans inherit when their call
/// site cannot know the ids (e.g. run_batch stages). RAII: restores the
/// previous range so nested scopes compose.
class RequestScope {
 public:
  RequestScope(std::uint64_t id_lo, std::uint64_t id_hi);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// The innermost active range on this thread ({kNoRequestId,
  /// kNoRequestId} outside any scope).
  static std::uint64_t current_lo();
  static std::uint64_t current_hi();

 private:
  std::uint64_t prev_lo_;
  std::uint64_t prev_hi_;
};

/// RAII span: timestamps the constructor and destructor, pushes on
/// destruction. When ids are omitted the innermost RequestScope range
/// is attached. A disabled session makes both ends a single relaxed
/// atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(Stage stage)
      : ScopedSpan(stage, RequestScope::current_lo(),
                   RequestScope::current_hi()) {}
  /// Tagged span, ids from the RequestScope (see SpanEvent::tag).
  ScopedSpan(Stage stage, std::uint32_t tag)
      : ScopedSpan(stage, RequestScope::current_lo(),
                   RequestScope::current_hi(), tag) {}
  ScopedSpan(Stage stage, std::uint64_t id_lo, std::uint64_t id_hi,
             std::uint32_t tag = kNoSpanTag);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint64_t t_begin_ns_ = 0;
  std::uint64_t id_lo_;
  std::uint64_t id_hi_;
  Stage stage_;
  std::uint32_t tag_;
  bool active_;
};

}  // namespace ssma::telemetry

// Hot-path instrumentation macros. With the SSMA_TRACE CMake knob OFF
// (no SSMA_TRACE_ENABLED define) every macro expands to ((void)0) —
// arguments are not evaluated, nothing is compiled in, and the PR 4
// zero-allocation serving path is untouched.
#if defined(SSMA_TRACE_ENABLED)

#define SSMA_TRACE_CAT2(a, b) a##b
#define SSMA_TRACE_CAT(a, b) SSMA_TRACE_CAT2(a, b)

/// Scoped span over the enclosing block, ids from the RequestScope.
#define SSMA_TRACE_SPAN(stage)             \
  ::ssma::telemetry::ScopedSpan SSMA_TRACE_CAT( \
      ssma_trace_span_, __LINE__)(::ssma::telemetry::Stage::stage)

/// Scoped span with an explicit request-id range.
#define SSMA_TRACE_SPAN_IDS(stage, id_lo, id_hi) \
  ::ssma::telemetry::ScopedSpan SSMA_TRACE_CAT(       \
      ssma_trace_span_, __LINE__)(::ssma::telemetry::Stage::stage, (id_lo), \
                                  (id_hi))

/// Scoped span tagged with a small integer (e.g. the pipeline stage
/// index), ids from the RequestScope. The exported trace names the span
/// "<stage>/<tag>" so repeated stages aggregate per tag in Perfetto.
#define SSMA_TRACE_SPAN_TAG(stage, tag)                                \
  ::ssma::telemetry::ScopedSpan SSMA_TRACE_CAT(ssma_trace_span_,       \
                                               __LINE__)(             \
      ::ssma::telemetry::Stage::stage, static_cast<std::uint32_t>(tag))

/// Records a span closed elsewhere (begin/end are TraceClock
/// time_points or ns-since-epoch u64s).
#define SSMA_TRACE_RECORD(stage, begin, end, id_lo, id_hi)       \
  ::ssma::telemetry::TraceSession::instance().record_span(       \
      ::ssma::telemetry::Stage::stage, (begin), (end), (id_lo), (id_hi))

/// Names the calling thread's track in the exported trace.
#define SSMA_TRACE_SET_THREAD(name) \
  ::ssma::telemetry::TraceSession::instance().set_thread_track(name)

/// Pins a request-id range for spans recorded deeper in the call tree.
#define SSMA_TRACE_REQUEST_SCOPE(id_lo, id_hi)         \
  ::ssma::telemetry::RequestScope SSMA_TRACE_CAT(           \
      ssma_trace_reqscope_, __LINE__)((id_lo), (id_hi))

#else  // !SSMA_TRACE_ENABLED

#define SSMA_TRACE_SPAN(stage) ((void)0)
#define SSMA_TRACE_SPAN_IDS(stage, id_lo, id_hi) ((void)0)
#define SSMA_TRACE_SPAN_TAG(stage, tag) ((void)0)
#define SSMA_TRACE_RECORD(stage, begin, end, id_lo, id_hi) ((void)0)
#define SSMA_TRACE_SET_THREAD(name) ((void)0)
#define SSMA_TRACE_REQUEST_SCOPE(id_lo, id_hi) ((void)0)

#endif  // SSMA_TRACE_ENABLED
