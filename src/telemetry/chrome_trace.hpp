// Minimal Chrome trace-event JSON writer, shared by the serving span
// exporter (telemetry::TraceSession) and the simulator signal exporter
// (sim::TraceSink) so both timelines open in the same Perfetto /
// chrome://tracing UI.
//
// Emits the JSON-object form {"traceEvents":[...]} with "X" (complete)
// and "i" (instant) events plus "M" metadata events for process/thread
// names. Timestamps and durations are microseconds (the trace-event
// contract); callers convert from their native unit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssma::telemetry {

class ChromeTraceWriter {
 public:
  /// One "args" entry. `json_value` is a pre-serialized JSON value —
  /// build via num_arg()/str_arg() rather than by hand.
  struct Arg {
    std::string key;
    std::string json_value;
  };

  static Arg num_arg(std::string key, std::uint64_t value);
  static Arg num_arg(std::string key, double value);
  static Arg str_arg(std::string key, const std::string& value);

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string escape(const std::string& s);

  explicit ChromeTraceWriter(std::string process_name = "ssma",
                             int pid = 1);

  /// Names a track ("M" thread_name metadata event).
  void add_thread_name(int tid, const std::string& name);

  /// "X" complete event spanning [ts_us, ts_us + dur_us).
  void add_complete(int tid, const std::string& name, double ts_us,
                    double dur_us, const std::vector<Arg>& args = {});

  /// "i" instant event (thread scope).
  void add_instant(int tid, const std::string& name, double ts_us,
                   const std::vector<Arg>& args = {});

  std::size_t size() const { return events_.size(); }

  /// The full {"traceEvents":[...]} document.
  std::string render() const;

 private:
  void push_event(const std::string& body);

  int pid_;
  std::vector<std::string> events_;  ///< pre-serialized objects
};

}  // namespace ssma::telemetry
