// Per-tier kernel dispatch counters and the roofline self-model.
//
// The LUT-accumulate and encoder dispatchers record, per SIMD tier,
// how many calls/rows they processed, how many bytes the kernel
// gathered (LUT: one table byte per row x codebook x output column;
// encoder: four threshold-compare bytes per row x codebook), and the
// wall time spent — cheap global relaxed atomics, two clock reads per
// *batch-level* dispatch, compiled out entirely when the SSMA_TRACE
// CMake knob is off.
//
// RooflineReport turns measured (rows, seconds) points into an
// achieved-vs-theoretical bandwidth comparison per tier, in the style
// of an operations/data-movement analysis: theoretical GB/s is a
// bytes-per-cycle peak model per tier times the estimated core clock,
// and MACs avoided counts the multiplies a dense GEMM of the same
// shape would have issued. bench/amm_kernel_sweep emits this as
// BENCH_roofline.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssma::telemetry {

/// Mirrors maddness::KernelTier (scalar=0, ssse3=1, avx2=2) without
/// including the kernel headers — keeps telemetry dependency-free.
inline constexpr int kNumKernelTiers = 3;
const char* kernel_tier_label(int tier);

struct KernelCounters {
  std::uint64_t calls = 0;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;  ///< gathered/compared table bytes
  std::uint64_t ns = 0;     ///< wall time inside the kernel
};

struct KernelProfileSnapshot {
  KernelCounters lut[kNumKernelTiers];
  KernelCounters encode[kNumKernelTiers];
};

/// Called by the kernel dispatchers after each batch-level call.
/// `tier` is the tier that actually ran (post availability clamp).
void record_lut_dispatch(int tier, std::uint64_t rows,
                         std::uint64_t bytes, std::uint64_t ns);
void record_encode_dispatch(int tier, std::uint64_t rows,
                            std::uint64_t bytes, std::uint64_t ns);

KernelProfileSnapshot kernel_profile_snapshot();
void kernel_profile_reset();

/// Peak table-bytes-per-cycle model per tier: what the inner loop
/// could move if load/shuffle ports were the only limit. LUT gather:
/// scalar one byte per iteration; SSSE3 pshufb covers a 16-byte lane;
/// AVX2 covers two. Encoder compares are narrower (one split decision
/// per level vs. a full row of output columns).
double lut_peak_bytes_per_cycle(int tier);
double encoder_peak_bytes_per_cycle(int tier);

/// Core clock estimate from /proc/cpuinfo ("@ N.NNGHz" in the model
/// name, else the "cpu MHz" line); falls back to `fallback_ghz` when
/// neither parses. Good enough for a self-model — roofline fractions
/// are read as ballpark, not as a calibrated limit.
double estimate_cpu_ghz(double fallback_ghz = 2.0);

/// One measured kernel x tier point against its theoretical ceiling.
struct RooflineEntry {
  std::string kernel;  ///< "lut_accumulate" or "encode"
  std::string tier;    ///< kernel_tier_label(tier)
  std::uint64_t rows = 0;
  std::uint64_t ncodebooks = 0;
  std::uint64_t nout = 0;       ///< output cols (lut) / input dim (encode)
  double bytes_per_row = 0.0;
  double rows_per_s = 0.0;
  double achieved_gbps = 0.0;
  double theoretical_gbps = 0.0;
  double frac_of_peak = 0.0;
  double macs_avoided_per_s = 0.0;  ///< dense-GEMM MACs replaced by adds

  std::string json() const;
};

/// Measured effect of the fused pipeline epilogue (engine/execution_plan):
/// one chained-stage shape run with in-register handoffs vs the
/// materializing walk, plus the intermediate traffic the fusion removes
/// (ExecutionPlan::fused_bytes_avoided_per_row — int16 accumulator +
/// dequantized float write/read per interior boundary).
struct FusionRoofline {
  std::uint64_t stages = 0;  ///< 0 = not measured
  std::string tier;
  std::uint64_t rows = 0;
  std::uint64_t ncodebooks = 0;
  std::uint64_t inter_cols = 0;  ///< width of each interior boundary
  std::uint64_t bytes_avoided_per_row = 0;
  double fused_rows_per_s = 0.0;
  double unfused_rows_per_s = 0.0;
  double speedup = 0.0;

  std::string json() const;
};

struct RooflineReport {
  double cpu_ghz = 0.0;
  std::string headline_cell;  ///< e.g. "rows=256 ncb=32 nout=128"
  std::vector<RooflineEntry> entries;
  /// Included in json() when fusion.stages >= 2.
  FusionRoofline fusion;

  std::string json() const;
};

/// Builds one entry from a measured timing. `d` is the dense input
/// dimension the AMM shape replaces (for MACs avoided = rows*d*nout);
/// `seconds_per_call` is the measured kernel-only time.
RooflineEntry make_roofline_entry(const std::string& kernel, int tier,
                                  std::uint64_t rows,
                                  std::uint64_t ncodebooks,
                                  std::uint64_t nout, std::uint64_t d,
                                  double bytes_per_call,
                                  double seconds_per_call,
                                  double cpu_ghz);

}  // namespace ssma::telemetry
