#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <sstream>

namespace ssma::telemetry {

namespace {

// Fixed-point microsecond formatting with nanosecond resolution.
// Locale-independent (no ostream << double) so rendered traces are
// byte-stable across environments.
std::string format_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

ChromeTraceWriter::Arg ChromeTraceWriter::num_arg(std::string key,
                                                  std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return Arg{std::move(key), buf};
}

ChromeTraceWriter::Arg ChromeTraceWriter::num_arg(std::string key,
                                                  double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Arg{std::move(key), buf};
}

ChromeTraceWriter::Arg ChromeTraceWriter::str_arg(
    std::string key, const std::string& value) {
  return Arg{std::move(key), "\"" + escape(value) + "\""};
}

std::string ChromeTraceWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

ChromeTraceWriter::ChromeTraceWriter(std::string process_name, int pid)
    : pid_(pid) {
  std::ostringstream oss;
  oss << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid_
      << ",\"tid\":0,\"args\":{\"name\":\"" << escape(process_name)
      << "\"}}";
  push_event(oss.str());
}

void ChromeTraceWriter::add_thread_name(int tid,
                                        const std::string& name) {
  std::ostringstream oss;
  oss << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid_
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << escape(name)
      << "\"}}";
  push_event(oss.str());
}

void ChromeTraceWriter::add_complete(int tid, const std::string& name,
                                     double ts_us, double dur_us,
                                     const std::vector<Arg>& args) {
  std::ostringstream oss;
  oss << "{\"name\":\"" << escape(name) << "\",\"ph\":\"X\",\"pid\":"
      << pid_ << ",\"tid\":" << tid << ",\"ts\":" << format_us(ts_us)
      << ",\"dur\":" << format_us(dur_us);
  if (!args.empty()) {
    oss << ",\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) oss << ",";
      oss << "\"" << escape(args[i].key) << "\":" << args[i].json_value;
    }
    oss << "}";
  }
  oss << "}";
  push_event(oss.str());
}

void ChromeTraceWriter::add_instant(int tid, const std::string& name,
                                    double ts_us,
                                    const std::vector<Arg>& args) {
  std::ostringstream oss;
  oss << "{\"name\":\"" << escape(name) << "\",\"ph\":\"i\",\"pid\":"
      << pid_ << ",\"tid\":" << tid << ",\"ts\":" << format_us(ts_us)
      << ",\"s\":\"t\"";
  if (!args.empty()) {
    oss << ",\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) oss << ",";
      oss << "\"" << escape(args[i].key) << "\":" << args[i].json_value;
    }
    oss << "}";
  }
  oss << "}";
  push_event(oss.str());
}

void ChromeTraceWriter::push_event(const std::string& body) {
  events_.push_back(body);
}

std::string ChromeTraceWriter::render() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) oss << ",";
    oss << "\n" << events_[i];
  }
  oss << "\n],\"displayTimeUnit\":\"ns\"}\n";
  return oss.str();
}

}  // namespace ssma::telemetry
