#include "telemetry/kernel_profile.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ssma::telemetry {

namespace {

struct TierAtomics {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> rows{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> ns{0};
};

TierAtomics g_lut[kNumKernelTiers];
TierAtomics g_encode[kNumKernelTiers];

int clamp_tier(int tier) {
  if (tier < 0) return 0;
  if (tier >= kNumKernelTiers) return kNumKernelTiers - 1;
  return tier;
}

void add(TierAtomics& t, std::uint64_t rows, std::uint64_t bytes,
         std::uint64_t ns) {
  t.calls.fetch_add(1, std::memory_order_relaxed);
  t.rows.fetch_add(rows, std::memory_order_relaxed);
  t.bytes.fetch_add(bytes, std::memory_order_relaxed);
  t.ns.fetch_add(ns, std::memory_order_relaxed);
}

KernelCounters load(const TierAtomics& t) {
  KernelCounters c;
  c.calls = t.calls.load(std::memory_order_relaxed);
  c.rows = t.rows.load(std::memory_order_relaxed);
  c.bytes = t.bytes.load(std::memory_order_relaxed);
  c.ns = t.ns.load(std::memory_order_relaxed);
  return c;
}

void reset(TierAtomics& t) {
  t.calls.store(0, std::memory_order_relaxed);
  t.rows.store(0, std::memory_order_relaxed);
  t.bytes.store(0, std::memory_order_relaxed);
  t.ns.store(0, std::memory_order_relaxed);
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* kernel_tier_label(int tier) {
  switch (clamp_tier(tier)) {
    case 0:
      return "scalar";
    case 1:
      return "ssse3";
    default:
      return "avx2";
  }
}

void record_lut_dispatch(int tier, std::uint64_t rows,
                         std::uint64_t bytes, std::uint64_t ns) {
  add(g_lut[clamp_tier(tier)], rows, bytes, ns);
}

void record_encode_dispatch(int tier, std::uint64_t rows,
                            std::uint64_t bytes, std::uint64_t ns) {
  add(g_encode[clamp_tier(tier)], rows, bytes, ns);
}

KernelProfileSnapshot kernel_profile_snapshot() {
  KernelProfileSnapshot snap;
  for (int t = 0; t < kNumKernelTiers; ++t) {
    snap.lut[t] = load(g_lut[t]);
    snap.encode[t] = load(g_encode[t]);
  }
  return snap;
}

void kernel_profile_reset() {
  for (int t = 0; t < kNumKernelTiers; ++t) {
    reset(g_lut[t]);
    reset(g_encode[t]);
  }
}

double lut_peak_bytes_per_cycle(int tier) {
  // Scalar: one table byte per loop iteration. SSSE3: one pshufb
  // gathers a 16-byte lane per cycle on the shuffle port. AVX2: the
  // 256-bit shuffle covers two lanes.
  switch (clamp_tier(tier)) {
    case 0:
      return 1.0;
    case 1:
      return 16.0;
    default:
      return 32.0;
  }
}

double encoder_peak_bytes_per_cycle(int tier) {
  // The encoder walks a 4-level hash tree: per row x codebook it
  // touches 4 threshold bytes but must serialize on the level
  // dependency, so its ceiling sits well under the LUT gather's.
  switch (clamp_tier(tier)) {
    case 0:
      return 0.25;
    case 1:
      return 4.0;
    default:
      return 8.0;
  }
}

double estimate_cpu_ghz(double fallback_ghz) {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  double mhz = 0.0;
  while (std::getline(in, line)) {
    // Prefer the nominal frequency baked into the model name (e.g.
    // "Intel(R) Xeon(R) Processor @ 2.10GHz") — "cpu MHz" reflects the
    // current governor state, which wobbles.
    if (line.rfind("model name", 0) == 0) {
      const auto at = line.find('@');
      if (at != std::string::npos) {
        double ghz = 0.0;
        if (std::sscanf(line.c_str() + at, "@ %lfGHz", &ghz) == 1 &&
            ghz > 0.1) {
          return ghz;
        }
      }
    }
    if (mhz == 0.0 && line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        mhz = std::atof(line.c_str() + colon + 1);
      }
    }
  }
  if (mhz > 100.0) return mhz / 1000.0;
  return fallback_ghz;
}

std::string RooflineEntry::json() const {
  std::ostringstream oss;
  oss << "{\"kernel\":\"" << kernel << "\",\"tier\":\"" << tier
      << "\",\"rows\":" << rows << ",\"ncodebooks\":" << ncodebooks
      << ",\"nout\":" << nout
      << ",\"bytes_per_row\":" << format_double(bytes_per_row)
      << ",\"rows_per_s\":" << format_double(rows_per_s)
      << ",\"achieved_gbps\":" << format_double(achieved_gbps)
      << ",\"theoretical_gbps\":" << format_double(theoretical_gbps)
      << ",\"frac_of_peak\":" << format_double(frac_of_peak)
      << ",\"macs_avoided_per_s\":" << format_double(macs_avoided_per_s)
      << "}";
  return oss.str();
}

std::string FusionRoofline::json() const {
  std::ostringstream oss;
  oss << "{\"stages\": " << stages << ", \"tier\": \"" << tier
      << "\", \"rows\": " << rows << ", \"ncodebooks\": " << ncodebooks
      << ", \"inter_cols\": " << inter_cols
      << ", \"bytes_avoided_per_row\": " << bytes_avoided_per_row
      << ", \"fused_rows_per_s\": " << format_double(fused_rows_per_s)
      << ", \"unfused_rows_per_s\": " << format_double(unfused_rows_per_s)
      << ", \"speedup\": " << format_double(speedup) << "}";
  return oss.str();
}

std::string RooflineReport::json() const {
  std::ostringstream oss;
  oss << "{\n  \"cpu_ghz\": " << format_double(cpu_ghz)
      << ",\n  \"headline_cell\": \"" << headline_cell
      << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    oss << "    " << entries[i].json();
    if (i + 1 < entries.size()) oss << ",";
    oss << "\n";
  }
  oss << "  ]";
  if (fusion.stages >= 2) oss << ",\n  \"fusion\": " << fusion.json();
  oss << "\n}\n";
  return oss.str();
}

RooflineEntry make_roofline_entry(const std::string& kernel, int tier,
                                  std::uint64_t rows,
                                  std::uint64_t ncodebooks,
                                  std::uint64_t nout, std::uint64_t d,
                                  double bytes_per_call,
                                  double seconds_per_call,
                                  double cpu_ghz) {
  RooflineEntry e;
  e.kernel = kernel;
  e.tier = kernel_tier_label(tier);
  e.rows = rows;
  e.ncodebooks = ncodebooks;
  e.nout = nout;
  e.bytes_per_row = rows ? bytes_per_call / static_cast<double>(rows) : 0.0;
  if (seconds_per_call > 0.0) {
    e.rows_per_s = static_cast<double>(rows) / seconds_per_call;
    e.achieved_gbps = bytes_per_call / seconds_per_call / 1e9;
    // A dense GEMM of the same shape issues rows*d*nout MACs; the AMM
    // replaces them with rows*ncb*nout byte-gathers + adds.
    e.macs_avoided_per_s = static_cast<double>(rows) *
                           static_cast<double>(d) *
                           static_cast<double>(nout) / seconds_per_call;
  }
  const double peak = kernel == "encode"
                          ? encoder_peak_bytes_per_cycle(tier)
                          : lut_peak_bytes_per_cycle(tier);
  e.theoretical_gbps = peak * cpu_ghz;  // GHz x bytes/cycle = GB/s
  if (e.theoretical_gbps > 0.0)
    e.frac_of_peak = e.achieved_gbps / e.theoretical_gbps;
  return e;
}

}  // namespace ssma::telemetry
