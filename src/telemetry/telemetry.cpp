#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "telemetry/chrome_trace.hpp"
#include "util/check.hpp"

namespace ssma::telemetry {

namespace {

constexpr std::size_t kDefaultRingCapacity = 16384;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

// Per-thread recorder handle. The shared_ptr keeps the ring alive for
// collect() even after recorders_ is cleared; `generation` detects a
// TraceSession::clear() so the thread re-registers lazily.
struct ThreadSlot {
  std::shared_ptr<SpanRecorder> recorder;
  std::string pending_track;
  std::uint64_t generation = ~std::uint64_t{0};
};

thread_local ThreadSlot t_slot;

thread_local std::uint64_t t_scope_lo = kNoRequestId;
thread_local std::uint64_t t_scope_hi = kNoRequestId;

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kAdmit:
      return "admit";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchForm:
      return "batch_form";
    case Stage::kEncode:
      return "encode";
    case Stage::kLutAccumulate:
      return "lut_accumulate";
    case Stage::kEpilogue:
      return "epilogue";
    case Stage::kAck:
      return "ack";
    case Stage::kCheckpoint:
      return "checkpoint";
    case Stage::kJournalAppend:
      return "journal_append";
    case Stage::kSwap:
      return "swap";
    case Stage::kDeviceWait:
      return "device_wait";
    case Stage::kReplay:
      return "replay";
    case Stage::kNetRead:
      return "net_read";
    case Stage::kNetWrite:
      return "net_write";
    case Stage::kAdmitReject:
      return "admit_reject";
    case Stage::kReplSend:
      return "repl_send";
    case Stage::kReplApply:
      return "repl_apply";
    case Stage::kPromotion:
      return "promotion";
    case Stage::kShadowExecute:
      return "shadow_execute";
    case Stage::kShadowCompare:
      return "shadow_compare";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SpanRecorder — per-slot seqlock over atomic words.
//
// Writer (owner thread only): bump seq to odd (acq_rel RMW), store the
// five payload words relaxed, store seq even with release. Reader (any
// thread): load seq acquire, skip if odd/unwritten, read payload with
// acquire, re-check seq — a mismatch means a concurrent overwrite and
// the slot is retried or dropped. Every access is atomic and ordering
// is carried per-access (no standalone fences — TSan models this
// protocol and rejects atomic_thread_fence), so the race is resolved
// by protocol, not UB.
// ---------------------------------------------------------------------------

namespace {

void* slab_alloc(std::size_t bytes) {
#if defined(__unix__) || defined(__APPLE__)
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
#else
  return std::calloc(bytes, 1);
#endif
}

void slab_free(void* p, std::size_t bytes) {
  if (p == nullptr) return;
#if defined(__unix__) || defined(__APPLE__)
  ::munmap(p, bytes);
#else
  (void)bytes;
  std::free(p);
#endif
}

}  // namespace

SpanRecorder::SpanRecorder(std::size_t capacity) : mask_(0) {
  // The slab is handed to the seqlock as zero bytes straight from the
  // allocator; both depend on the payload being plain lock-free 64-bit
  // atomics freed without destructors.
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "seqlock payload must be lock-free");
  static_assert(std::is_trivially_destructible_v<Slot>,
                "slab is freed without running destructors");
  size_ = round_up_pow2(capacity);
  slots_ = static_cast<Slot*>(slab_alloc(size_ * sizeof(Slot)));
  SSMA_CHECK_MSG(slots_ != nullptr, "span ring allocation failed");
  mask_ = size_ - 1;
}

SpanRecorder::~SpanRecorder() { slab_free(slots_, size_ * sizeof(Slot)); }

void SpanRecorder::push(const SpanEvent& ev) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & mask_];
  const std::uint64_t q = s.seq.load(std::memory_order_relaxed);
  // Odd transition is an acq_rel RMW, not store+fence: the acquire
  // half pins the payload stores below it, and TSan models per-access
  // ordering but rejects standalone fences (-fsanitize=thread).
  s.seq.exchange(q + 1, std::memory_order_acq_rel);
  s.w[0].store(ev.t_begin_ns, std::memory_order_relaxed);
  s.w[1].store(ev.t_end_ns, std::memory_order_relaxed);
  s.w[2].store(ev.id_lo, std::memory_order_relaxed);
  s.w[3].store(ev.id_hi, std::memory_order_relaxed);
  // Stage enum in the low byte, 24-bit tag above it — one payload word
  // keeps the slot layout (and the seqlock protocol) unchanged.
  s.w[4].store(static_cast<std::uint64_t>(ev.stage) |
                   (static_cast<std::uint64_t>(ev.tag & kNoSpanTag) << 8),
               std::memory_order_relaxed);
  s.seq.store(q + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

namespace {

bool read_slot(const std::atomic<std::uint64_t>& seq,
               const std::atomic<std::uint64_t> (&w)[5], SpanEvent* ev) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t s1 = seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1)) continue;  // unwritten or mid-write
    std::uint64_t v[5];
    // Acquire loads (not relaxed + fence, see push) keep the re-check
    // below every payload read.
    for (int i = 0; i < 5; ++i) v[i] = w[i].load(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) != s1) continue;
    ev->t_begin_ns = v[0];
    ev->t_end_ns = v[1];
    ev->id_lo = v[2];
    ev->id_hi = v[3];
    ev->stage = static_cast<Stage>(v[4] & 0xFF);
    ev->tag = static_cast<std::uint32_t>((v[4] >> 8) & kNoSpanTag);
    return true;
  }
  return false;
}

}  // namespace

std::vector<SpanEvent> SpanRecorder::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, size_);
  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  // Oldest live slot first. A push racing this loop may replace the
  // oldest event with the newest in place — either version is returned
  // untorn, or the slot is dropped after retries.
  for (std::uint64_t i = h - n; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    SpanEvent ev;
    if (read_slot(s.seq, s.w, &ev)) out.push_back(ev);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

TraceSession::TraceSession()
    : epoch_ticks_(TraceClock::now().time_since_epoch().count()),
      ring_capacity_(kDefaultRingCapacity) {}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  recorders_.clear();
  ++generation_;
  generation_public_.store(generation_, std::memory_order_release);
  epoch_ticks_.store(TraceClock::now().time_since_epoch().count(),
                     std::memory_order_relaxed);
}

void TraceSession::set_ring_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_capacity_ = std::max<std::size_t>(capacity, 8);
}

std::uint64_t TraceSession::to_ns(TraceClock::time_point t) const {
  const TraceClock::time_point epoch{TraceClock::duration(
      epoch_ticks_.load(std::memory_order_relaxed))};
  if (t <= epoch) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch)
          .count());
}

void TraceSession::set_thread_track(std::string name) {
  t_slot.pending_track = name;
  std::lock_guard<std::mutex> lk(mu_);
  if (t_slot.recorder && t_slot.generation == generation_)
    t_slot.recorder->set_track(std::move(name));
}

std::shared_ptr<SpanRecorder> TraceSession::thread_recorder() {
  std::lock_guard<std::mutex> lk(mu_);
  if (t_slot.recorder && t_slot.generation == generation_)
    return t_slot.recorder;
  auto rec = std::make_shared<SpanRecorder>(ring_capacity_);
  if (t_slot.pending_track.empty()) {
    rec->set_track("thread-" + std::to_string(recorders_.size()));
  } else {
    rec->set_track(t_slot.pending_track);
  }
  recorders_.push_back(rec);
  t_slot.recorder = rec;
  t_slot.generation = generation_;
  return rec;
}

void TraceSession::record_span(Stage stage, std::uint64_t t_begin_ns,
                               std::uint64_t t_end_ns,
                               std::uint64_t id_lo, std::uint64_t id_hi,
                               std::uint32_t tag) {
  if (!enabled()) return;
  SpanRecorder* rec = nullptr;
  if (t_slot.recorder &&
      t_slot.generation ==
          generation_public_.load(std::memory_order_acquire)) {
    rec = t_slot.recorder.get();
  } else {
    rec = thread_recorder().get();
  }
  SpanEvent ev;
  ev.t_begin_ns = t_begin_ns;
  ev.t_end_ns = std::max(t_begin_ns, t_end_ns);
  ev.id_lo = id_lo;
  ev.id_hi = id_hi;
  ev.stage = stage;
  ev.tag = tag;
  rec->push(ev);
}

void TraceSession::record_span(Stage stage, TraceClock::time_point begin,
                               TraceClock::time_point end,
                               std::uint64_t id_lo, std::uint64_t id_hi,
                               std::uint32_t tag) {
  if (!enabled()) return;
  record_span(stage, to_ns(begin), to_ns(end), id_lo, id_hi, tag);
}

std::vector<TraceSession::TrackEvents> TraceSession::collect() const {
  std::vector<std::shared_ptr<SpanRecorder>> recorders;
  {
    std::lock_guard<std::mutex> lk(mu_);
    recorders = recorders_;
  }
  std::vector<TrackEvents> out;
  out.reserve(recorders.size());
  for (const auto& rec : recorders) {
    TrackEvents te;
    te.track = rec->track();
    te.events = rec->snapshot();
    te.pushed = rec->pushed();
    out.push_back(std::move(te));
  }
  return out;
}

std::string TraceSession::render_chrome_json() const {
  ChromeTraceWriter writer("ssma-serve");
  const auto tracks = collect();
  for (std::size_t ti = 0; ti < tracks.size(); ++ti) {
    const int tid = static_cast<int>(ti) + 1;
    writer.add_thread_name(tid, tracks[ti].track);
    for (const auto& ev : tracks[ti].events) {
      std::vector<ChromeTraceWriter::Arg> args;
      if (ev.id_lo != kNoRequestId) {
        if (ev.id_lo == ev.id_hi) {
          args.push_back(ChromeTraceWriter::num_arg("req", ev.id_lo));
        } else {
          args.push_back(ChromeTraceWriter::num_arg("req_lo", ev.id_lo));
          args.push_back(ChromeTraceWriter::num_arg("req_hi", ev.id_hi));
        }
      }
      // Tagged spans render as "<stage>/<tag>" (one Perfetto aggregation
      // row per pipeline layer) with the tag duplicated as a numeric arg.
      std::string name = stage_name(ev.stage);
      if (ev.tag != kNoSpanTag) {
        name += '/';
        name += std::to_string(ev.tag);
        args.push_back(ChromeTraceWriter::num_arg(
            "stage_idx", static_cast<std::uint64_t>(ev.tag)));
      }
      writer.add_complete(
          tid, name,
          static_cast<double>(ev.t_begin_ns) * 1e-3,
          static_cast<double>(ev.t_end_ns - ev.t_begin_ns) * 1e-3, args);
    }
  }
  return writer.render();
}

// ---------------------------------------------------------------------------
// RequestScope / ScopedSpan
// ---------------------------------------------------------------------------

RequestScope::RequestScope(std::uint64_t id_lo, std::uint64_t id_hi)
    : prev_lo_(t_scope_lo), prev_hi_(t_scope_hi) {
  t_scope_lo = id_lo;
  t_scope_hi = id_hi;
}

RequestScope::~RequestScope() {
  t_scope_lo = prev_lo_;
  t_scope_hi = prev_hi_;
}

std::uint64_t RequestScope::current_lo() { return t_scope_lo; }
std::uint64_t RequestScope::current_hi() { return t_scope_hi; }

ScopedSpan::ScopedSpan(Stage stage, std::uint64_t id_lo,
                       std::uint64_t id_hi, std::uint32_t tag)
    : id_lo_(id_lo),
      id_hi_(id_hi),
      stage_(stage),
      tag_(tag),
      active_(TraceSession::instance().enabled()) {
  if (active_) t_begin_ns_ = TraceSession::instance().now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  auto& session = TraceSession::instance();
  session.record_span(stage_, t_begin_ns_, session.now_ns(), id_lo_,
                      id_hi_, tag_);
}

}  // namespace ssma::telemetry
