#include "util/matrix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

float& Matrix::at(std::size_t r, std::size_t c) {
  SSMA_CHECK_MSG(r < rows_ && c < cols_,
                 "index (" << r << "," << c << ") out of " << rows_ << "x"
                           << cols_);
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  SSMA_CHECK_MSG(r < rows_ && c < cols_,
                 "index (" << r << "," << c << ") out of " << rows_ << "x"
                           << cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::fill(float v) {
  for (auto& x : data_) x = v;
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  SSMA_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch");
  if (c.rows() != a.rows() || c.cols() != b.cols())
    c = Matrix(a.rows(), b.cols());
  c.fill(0.0f);

  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  constexpr std::size_t BK = 64, BN = 256;
  for (std::size_t k0 = 0; k0 < K; k0 += BK) {
    const std::size_t k1 = std::min(K, k0 + BK);
    for (std::size_t n0 = 0; n0 < N; n0 += BN) {
      const std::size_t n1 = std::min(N, n0 + BN);
      for (std::size_t m = 0; m < M; ++m) {
        float* crow = c.row(m);
        for (std::size_t k = k0; k < k1; ++k) {
          const float av = a(m, k);
          if (av == 0.0f) continue;
          const float* brow = b.row(k);
          for (std::size_t n = n0; n < n1; ++n) crow[n] += av * brow[n];
        }
      }
    }
  }
}

void gemm_bt(const Matrix& a, const Matrix& b_t, Matrix& c) {
  SSMA_CHECK_MSG(a.cols() == b_t.cols(), "gemm_bt shape mismatch");
  if (c.rows() != a.rows() || c.cols() != b_t.rows())
    c = Matrix(a.rows(), b_t.rows());
  const std::size_t M = a.rows(), K = a.cols(), N = b_t.rows();
  for (std::size_t m = 0; m < M; ++m) {
    const float* arow = a.row(m);
    float* crow = c.row(m);
    for (std::size_t n = 0; n < N; ++n) {
      const float* brow = b_t.row(n);
      float acc = 0.0f;
      for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      crow[n] = acc;
    }
  }
}

void gemm_at(const Matrix& a_t, const Matrix& b, Matrix& c) {
  SSMA_CHECK_MSG(a_t.rows() == b.rows(), "gemm_at shape mismatch");
  if (c.rows() != a_t.cols() || c.cols() != b.cols())
    c = Matrix(a_t.cols(), b.cols());
  c.fill(0.0f);
  const std::size_t M = a_t.cols(), K = a_t.rows(), N = b.cols();
  for (std::size_t k = 0; k < K; ++k) {
    const float* arow = a_t.row(k);
    const float* brow = b.row(k);
    for (std::size_t m = 0; m < M; ++m) {
      const float av = arow[m];
      if (av == 0.0f) continue;
      float* crow = c.row(m);
      for (std::size_t n = 0; n < N; ++n) crow[n] += av * brow[n];
    }
  }
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  SSMA_CHECK(a.cols() == b.rows());
  c = Matrix(a.rows(), b.cols());
  for (std::size_t m = 0; m < a.rows(); ++m)
    for (std::size_t n = 0; n < b.cols(); ++n) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(m, k) * b(k, n);
      c(m, n) = acc;
    }
}

double frobenius_diff(const Matrix& a, const Matrix& b) {
  SSMA_CHECK(a.same_shape(b));
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double frobenius(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace ssma
