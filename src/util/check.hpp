// Error-handling primitives used across the library.
//
// SSMA_CHECK is an always-on precondition/invariant check: it throws
// ssma::CheckError so callers (and tests) can observe contract violations
// deterministically instead of hitting undefined behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssma {

/// Thrown when a runtime contract (precondition, invariant, protocol rule)
/// is violated. Simulator protocol checkers also raise this.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "SSMA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace detail
}  // namespace ssma

#define SSMA_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ssma::detail::check_fail(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define SSMA_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream oss_;                                         \
      oss_ << msg;                                                     \
      ::ssma::detail::check_fail(#expr, __FILE__, __LINE__, oss_.str()); \
    }                                                                  \
  } while (0)
