// Small fixed-point / integer-arithmetic helpers shared by the MADDNESS
// quantizer and the hardware functional model. The hardware accumulates in
// 16-bit two's-complement (CSA + RCA), so helpers here define the exact
// wraparound semantics the simulator must match bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace ssma {

/// Saturating cast of a wide integer to int8 (symmetric [-127, 127] by
/// default so that negation is always representable, matching common
/// INT8 inference practice).
inline std::int8_t saturate_int8(long long v, bool symmetric = true) {
  const long long lo = symmetric ? -127 : -128;
  return static_cast<std::int8_t>(std::clamp<long long>(v, lo, 127));
}

/// Saturating cast to uint8.
inline std::uint8_t saturate_uint8(long long v) {
  return static_cast<std::uint8_t>(std::clamp<long long>(v, 0, 255));
}

/// Round-half-away-from-zero to the nearest integer (what hardware
/// quantizers typically implement). Values beyond the long long range
/// saturate: every caller clamps to a narrow integer range next, so
/// only the sign has to survive (the raw cast would be UB and, on x86,
/// collapse huge positives to LLONG_MIN).
inline long long round_half_away(double x) {
  const double r = x >= 0.0 ? x + 0.5 : x - 0.5;
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63
  if (r >= kTwo63) return std::numeric_limits<long long>::max();
  if (r < -kTwo63) return std::numeric_limits<long long>::min();
  return static_cast<long long>(r);
}

/// 16-bit two's-complement wraparound addition — the semantics of the
/// macro's CSA/RCA accumulation chain.
inline std::int16_t add_wrap16(std::int16_t a, std::int16_t b) {
  return static_cast<std::int16_t>(
      static_cast<std::uint16_t>(a) + static_cast<std::uint16_t>(b));
}

/// Sign extension of an 8-bit LUT word onto the 16-bit accumulation rail.
inline std::int16_t sext8to16(std::int8_t v) {
  return static_cast<std::int16_t>(v);
}

/// Population count of a 16-bit word (used for data-dependent switching
/// energy estimates).
inline int popcount16(std::uint16_t v) {
  int c = 0;
  while (v) {
    v &= static_cast<std::uint16_t>(v - 1);
    ++c;
  }
  return c;
}

}  // namespace ssma
