// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (workload generation, Monte-Carlo
// variation sampling, dataset synthesis, training shuffles) flows through
// ssma::Rng so experiments are bit-reproducible across runs and platforms.
// The core generator is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64 so that nearby seeds give independent streams.
#pragma once

#include <cstdint>
#include <vector>

namespace ssma {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed0001u);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double next_gaussian();

  /// Normal with given mean / stddev.
  double next_gaussian(double mean, double stddev);

  /// Bernoulli with probability p of true.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork an independent stream (useful for per-component variation maps).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace ssma
