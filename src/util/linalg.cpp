#include "util/linalg.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma {

bool cholesky_lower(Matrix& a) {
  SSMA_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= static_cast<double>(a(j, k)) * a(j, k);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = static_cast<float>(ljj);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k)
        s -= static_cast<double>(a(i, k)) * a(j, k);
      a(i, j) = static_cast<float>(s / ljj);
    }
    // Zero the upper triangle so the factor is clean.
    for (std::size_t c = j + 1; c < n; ++c) a(j, c) = 0.0f;
  }
  return true;
}

Matrix spd_solve(const Matrix& a, const Matrix& b) {
  SSMA_CHECK(a.rows() == a.cols());
  SSMA_CHECK(a.rows() == b.rows());
  Matrix l = a;
  SSMA_CHECK_MSG(cholesky_lower(l), "matrix is not positive definite");
  const std::size_t n = a.rows(), m = b.cols();
  // Forward substitution: L y = b.
  Matrix y(n, m);
  for (std::size_t c = 0; c < m; ++c)
    for (std::size_t i = 0; i < n; ++i) {
      double s = b(i, c);
      for (std::size_t k = 0; k < i; ++k)
        s -= static_cast<double>(l(i, k)) * y(k, c);
      y(i, c) = static_cast<float>(s / l(i, i));
    }
  // Back substitution: L^T x = y.
  Matrix x(n, m);
  for (std::size_t c = 0; c < m; ++c)
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double s = y(i, c);
      for (std::size_t k = i + 1; k < n; ++k)
        s -= static_cast<double>(l(k, i)) * x(k, c);
      x(i, c) = static_cast<float>(s / l(i, i));
    }
  return x;
}

Matrix ridge_regression(const Matrix& g, const Matrix& x, double lambda) {
  SSMA_CHECK(g.rows() == x.rows());
  SSMA_CHECK(lambda >= 0.0);
  const std::size_t k = g.cols();
  // Normal equations: (G^T G + lambda I) P = G^T X.
  Matrix gtg(k, k);
  gemm_at(g, g, gtg);
  for (std::size_t i = 0; i < k; ++i)
    gtg(i, i) += static_cast<float>(lambda) + 1e-6f;  // jitter for stability
  Matrix gtx(k, x.cols());
  gemm_at(g, x, gtx);
  return spd_solve(gtg, gtx);
}

}  // namespace ssma
