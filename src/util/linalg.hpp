// Small dense linear-algebra kernels: Cholesky factorization and
// symmetric-positive-definite solves. Used by the MADDNESS prototype
// ridge-regression refit (argmin ||X - G P||^2 + lambda ||P||^2).
#pragma once

#include "util/matrix.hpp"

namespace ssma {

/// In-place lower Cholesky factorization of a symmetric positive-definite
/// matrix (only the lower triangle of `a` is read). Returns false if the
/// matrix is not positive definite (within tolerance).
bool cholesky_lower(Matrix& a);

/// Solves (A) X = B for X where A is SPD, via Cholesky. A is n x n,
/// B is n x m. Throws CheckError if A is not SPD.
Matrix spd_solve(const Matrix& a, const Matrix& b);

/// Ridge regression: solves (G^T G + lambda I) P = G^T X.
/// g: n x k design matrix, x: n x d targets -> returns k x d coefficients.
Matrix ridge_regression(const Matrix& g, const Matrix& x, double lambda);

}  // namespace ssma
