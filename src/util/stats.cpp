#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace ssma {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  SSMA_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  SSMA_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size()));
}

double SampleSet::percentile(double p) const {
  SSMA_CHECK(!samples_.empty());
  SSMA_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SSMA_CHECK(hi > lo);
  SSMA_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(
      std::floor(frac * static_cast<double>(counts_.size())));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream oss;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    for (std::size_t b = 0; b < bar; ++b) oss << '#';
    oss << " " << counts_[i] << "\n";
  }
  return oss.str();
}

}  // namespace ssma
