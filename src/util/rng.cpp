#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSMA_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  SSMA_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<long long>(hi) - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gauss_ = r * std::sin(theta);
  has_cached_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ull); }

}  // namespace ssma
