// Dense row-major matrices (float) with a blocked GEMM. This is the
// numeric substrate for the NN layers (im2col convolution) and for
// MADDNESS training (prototype/LUT construction, ridge refit).
#pragma once

#include <cstddef>
#include <vector>

namespace ssma {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix transposed() const;
  void fill(float v);

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (shapes checked). Blocked with an unrolled inner kernel; good
/// enough to train the example CNN in seconds without external BLAS.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T.
void gemm_bt(const Matrix& a, const Matrix& b_t, Matrix& c);

/// C = A^T * B.
void gemm_at(const Matrix& a_t, const Matrix& b, Matrix& c);

/// Reference triple-loop GEMM for correctness tests.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// Frobenius norm of (A - B); matrices must be the same shape.
double frobenius_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm.
double frobenius(const Matrix& a);

}  // namespace ssma
