// ASCII table renderer used by the benchmark harness to print
// paper-style tables (Table I, Table II, figure series) with aligned
// columns.
#pragma once

#include <string>
#include <vector>

namespace ssma {

class TextTable {
 public:
  /// Column headers define the column count; subsequent rows must match.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats as "x.y%" with the given precision.
  static std::string pct(double fraction, int precision = 1);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssma
