#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace ssma {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SSMA_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SSMA_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << (fraction * 100.0)
      << "%";
  return oss.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream oss;
  auto rule = [&] {
    oss << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) oss << '-';
      oss << '+';
    }
    oss << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    oss << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c] << " |";
    }
    oss << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return oss.str();
}

}  // namespace ssma
