// Little-endian wire helpers shared by every on-disk format in the
// library (AMM operator blobs, serving checkpoints, the request
// journal) and by the network RPC framing. Explicit byte order keeps
// the formats portable across hosts; fixed-width reads fail loudly on
// truncated streams, and fixed-width writes fail loudly when the sink
// stream enters an error state (full disk, closed pipe) — a silent
// short write would otherwise only surface as a CRC mismatch at read
// time, far from the fault.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace ssma::wire {

inline void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
  SSMA_CHECK_MSG(os.good(),
                 "wire write failed — sink stream entered an error "
                 "state (full disk? closed socket?)");
}

inline void put_u32(std::ostream& os, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(os, (v >> (8 * i)) & 0xFF);
}

inline void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(os, (v >> (8 * i)) & 0xFF);
}

inline void put_f32(std::ostream& os, float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(os, bits);
}

inline void put_f64(std::ostream& os, double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(os, bits);
}

inline std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  SSMA_CHECK_MSG(c != EOF, "unexpected end of stream");
  return static_cast<std::uint8_t>(c);
}

inline std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(get_u8(is)) << (8 * i);
  return v;
}

inline std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(get_u8(is)) << (8 * i);
  return v;
}

inline float get_f32(std::istream& is) {
  const std::uint32_t bits = get_u32(is);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

inline double get_f64(std::istream& is) {
  const std::uint64_t bits = get_u64(is);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace ssma::wire
