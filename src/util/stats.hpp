// Streaming statistics accumulators and histograms used by the simulator
// (latency distributions, energy ledgers) and by the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace ssma {

/// Welford-style streaming accumulator: mean/variance/min/max in one pass.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps all samples; supports exact percentiles. Use for moderate sample
/// counts (latency distributions in benches/tests).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Exact percentile by nearest-rank (p in [0,100]).
  double percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Renders as an ASCII bar chart for bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& bins() const { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ssma
