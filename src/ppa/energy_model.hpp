// Per-event dynamic energies and the leakage-power model. The simulator's
// EnergyLedger charges these amounts as events execute; the analytic model
// integrates them in closed form.
//
// Dynamic energy scales as (V/Vref)^2 (CV^2 switching). Leakage power
// scales linearly with V (channel leakage at fixed Vth dominates) and is
// corner/temperature dependent — at 0.5 V the macro is slow enough that
// leakage contributes visibly, which is exactly why the paper's Fig. 6
// energy curve falls slower than V^2.
#pragma once

#include "ppa/operating_point.hpp"
#include "ppa/tech_constants.hpp"

namespace ssma::ppa {

class EnergyModel {
 public:
  explicit EnergyModel(const OperatingPoint& op);

  const OperatingPoint& op() const { return op_; }

  /// Dimensionless dynamic-energy multiplier vs the 0.5 V reference.
  double dyn_scale() const { return dyn_scale_; }

  // --- per-event dynamic energies [fJ] at this operating point ---
  double column_read_fj() const;
  /// 16-bit CSA; `toggled_bits` out of 32 output bits switched (S and C
  /// vectors). Calibrated so that random data averages kEnergyCsaFj.
  double csa_fj(int toggled_bits) const;
  double latch_fj() const;
  double rcd_lut_fj() const;
  double dlc_precharge_fj() const;
  double dlc_eval_fj(int depth) const;
  double input_buffer_fj() const;
  double ctrl_pass_fj(int ndec) const;
  double rca_fj() const;
  double out_reg_fj() const;
  double write_bit_fj() const;

  /// Aggregate dynamic energy of one encoder pass (all 15 DLCs precharged,
  /// 4 evaluated at the given depths, input buffer).
  double encoder_pass_fj(const int depths[kTreeLevels]) const;

  /// Average-data dynamic energy of one decoder lookup (8 column reads +
  /// CSA + latch + RCD). 90 fJ at the reference point.
  double decoder_lookup_avg_fj() const;

  // --- leakage ---
  /// Leakage power of one compute block [uW == fJ/ns].
  double block_leakage_uw(int ndec) const;
  /// Leakage power of the whole macro [uW].
  double macro_leakage_uw(int ndec, int ns) const;
  /// Fraction of leakage attributable to the decoders (SRAM arrays +
  /// CSAs dominate device count) — used for Fig. 7A-style attribution.
  double decoder_leak_fraction(int ndec) const;

 private:
  OperatingPoint op_;
  double dyn_scale_;
  double leak_mult_;
};

}  // namespace ssma::ppa
