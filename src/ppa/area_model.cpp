#include "ppa/area_model.hpp"

#include "ppa/tech_constants.hpp"
#include "util/check.hpp"

namespace ssma::ppa {

AreaBreakdown AreaModel::macro_area(int ndec, int ns) const {
  SSMA_CHECK(ndec >= 1 && ns >= 1);
  AreaBreakdown a;
  a.decoder_um2 = static_cast<double>(ns) * ndec * kAreaDecoderUm2;
  a.encoder_um2 = static_cast<double>(ns) * kAreaEncoderUm2;
  a.control_um2 = static_cast<double>(ns) * kAreaCtrlUm2;
  a.lane_um2 = static_cast<double>(ndec) * kAreaLaneUm2;
  a.global_um2 = kAreaGlobalUm2;
  return a;
}

double AreaModel::core_mm2(int ndec, int ns) const {
  return macro_area(ndec, ns).core_mm2();
}

double AreaModel::chip_mm2(int ndec, int ns) const {
  return core_mm2(ndec, ns) * kChipAreaOverheadFactor;
}

long long AreaModel::sram_bits(int ndec, int ns) const {
  SSMA_CHECK(ndec >= 1 && ns >= 1);
  return static_cast<long long>(ndec) * ns * kLutRows * kLutBits;
}

}  // namespace ssma::ppa
