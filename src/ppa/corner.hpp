// Process-corner parameterization: each corner maps to NMOS/PMOS threshold
// shifts and a leakage multiplier. Component classes weight the N/P shifts
// according to which device type dominates their critical path.
#pragma once

#include "ppa/operating_point.hpp"

namespace ssma::ppa {

struct CornerParams {
  double dvth_n = 0.0;  ///< NMOS threshold shift [V]; negative = faster
  double dvth_p = 0.0;  ///< PMOS threshold shift [V]
  double leak_mult = 1.0;
};

CornerParams corner_params(Corner c);

/// Effective threshold shift for a path with the given NMOS weight
/// (0 = all-PMOS path, 1 = all-NMOS path).
double effective_vth_shift(Corner c, double nmos_weight);

/// Leakage multiplier including temperature dependence (doubles every
/// kLeakTempDoublingK above 25 degC).
double leakage_multiplier(const OperatingPoint& op);

}  // namespace ssma::ppa
