// Closed-form performance/efficiency model of the proposed macro. It
// composes the same calibrated delay/energy/area primitives the
// event-driven simulator uses, so the two agree (cross-validated in
// tests). Benches use it for wide sweeps; the event simulator provides
// the ground truth on specific workloads.
//
// Conventions follow the paper:
//   * 1 lookup == 18 ops (9 MACs).
//   * frequency == 1 / pipeline-interval == 1 / block latency.
//   * "best"/"worst" refer to the data-dependent BDT encoder latency.
//   * Reported average efficiency = mean of best-case and worst-case
//     performance (the black dashed line of Fig. 6).
#pragma once

#include "ppa/area_model.hpp"
#include "ppa/delay_model.hpp"
#include "ppa/energy_model.hpp"
#include "ppa/operating_point.hpp"

namespace ssma::ppa {

struct MacroConfig {
  int ndec = 16;
  int ns = 32;
};

struct PerfPoint {
  double freq_mhz = 0.0;        ///< token rate
  double throughput_tops = 0.0;
  double tops_per_w = 0.0;
  double tops_per_mm2 = 0.0;
  double energy_per_op_fj = 0.0;
  double power_uw = 0.0;
};

struct PerfEnvelope {
  PerfPoint best;   ///< all encoder comparisons resolve at the MSB
  PerfPoint worst;  ///< all encoder comparisons ripple to full depth
  double avg_tops_per_w = 0.0;    ///< mean of best/worst efficiency
  double avg_tops_per_mm2 = 0.0;  ///< mean of best/worst performance / area
  double core_mm2 = 0.0;
};

struct EnergyBreakdownPerOp {
  double decoder_fj = 0.0;  ///< SRAM + CSA + latch + col RCD (+ leak share)
  double encoder_fj = 0.0;
  double other_fj = 0.0;    ///< control, handshake, RCA/out-reg, rest of leak
  double total_fj() const { return decoder_fj + encoder_fj + other_fj; }
  double decoder_share() const { return decoder_fj / total_fj(); }
  double encoder_share() const { return encoder_fj / total_fj(); }
};

class AnalyticPerf {
 public:
  AnalyticPerf(MacroConfig cfg, OperatingPoint op);

  const MacroConfig& cfg() const { return cfg_; }

  /// Ops produced per pipeline token (all NS blocks working concurrently).
  long long ops_per_token() const;

  /// Block latency for a uniform per-level DLC resolution depth.
  double block_latency_ns(int dlc_depth) const;

  /// Perf for a given steady-state pipeline interval [ns] (tokens spaced
  /// by the bottleneck block latency).
  PerfPoint perf_at_interval(double interval_ns) const;

  /// Best/worst envelope plus paper-style averages.
  PerfEnvelope envelope() const;

  /// Energy-per-op decomposition at the *average* interval, average data —
  /// the Fig. 7A view.
  EnergyBreakdownPerOp energy_breakdown() const;

  /// Total dynamic energy of one full pipeline token (all blocks), with
  /// average-data assumptions [fJ].
  double token_dynamic_fj() const;

 private:
  MacroConfig cfg_;
  OperatingPoint op_;
  DelayModel delay_;
  EnergyModel energy_;
  AreaModel area_;
};

}  // namespace ssma::ppa
