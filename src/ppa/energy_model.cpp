#include "ppa/energy_model.hpp"

#include "ppa/corner.hpp"
#include "util/check.hpp"

namespace ssma::ppa {

EnergyModel::EnergyModel(const OperatingPoint& op) : op_(op) {
  SSMA_CHECK(op.vdd > 0.0);
  dyn_scale_ = (op.vdd / kRefVdd) * (op.vdd / kRefVdd);
  leak_mult_ = leakage_multiplier(op);
}

double EnergyModel::column_read_fj() const {
  return kEnergyColumnReadFj * dyn_scale_;
}

double EnergyModel::csa_fj(int toggled_bits) const {
  SSMA_CHECK(toggled_bits >= 0 && toggled_bits <= 32);
  // Half the energy is clock/internal-node overhead, half scales with the
  // number of toggled output bits; random data toggles ~16 of 32 bits, so
  // the average lands on kEnergyCsaFj.
  const double data_frac = static_cast<double>(toggled_bits) / 16.0;
  return kEnergyCsaFj * (0.5 + 0.5 * data_frac) * dyn_scale_;
}

double EnergyModel::latch_fj() const { return kEnergyLatchFj * dyn_scale_; }

double EnergyModel::rcd_lut_fj() const {
  return kEnergyRcdLutFj * dyn_scale_;
}

double EnergyModel::dlc_precharge_fj() const {
  return kEnergyDlcPrechargeFj * dyn_scale_;
}

double EnergyModel::dlc_eval_fj(int depth) const {
  SSMA_CHECK(depth >= 1 && depth <= kDlcBits);
  return (kEnergyDlcEvalBaseFj + kEnergyDlcEvalPerBitFj * depth) * dyn_scale_;
}

double EnergyModel::input_buffer_fj() const {
  return kEnergyInputBufFj * dyn_scale_;
}

double EnergyModel::ctrl_pass_fj(int ndec) const {
  SSMA_CHECK(ndec >= 1);
  return (kCtrlBaseFj + kCtrlPerDecFj * ndec) * dyn_scale_;
}

double EnergyModel::rca_fj() const { return kEnergyRcaFj * dyn_scale_; }

double EnergyModel::out_reg_fj() const {
  return kEnergyOutRegFj * dyn_scale_;
}

double EnergyModel::write_bit_fj() const {
  return kEnergyWriteBitFj * dyn_scale_;
}

double EnergyModel::encoder_pass_fj(const int depths[kTreeLevels]) const {
  double e = 15.0 * dlc_precharge_fj() + input_buffer_fj();
  for (int l = 0; l < kTreeLevels; ++l) e += dlc_eval_fj(depths[l]);
  return e;
}

double EnergyModel::decoder_lookup_avg_fj() const {
  return 8.0 * column_read_fj() + csa_fj(16) + latch_fj() + rcd_lut_fj();
}

double EnergyModel::block_leakage_uw(int ndec) const {
  SSMA_CHECK(ndec >= 1);
  return (kLeakBlockBaseUwPerV + kLeakPerDecoderUwPerV * ndec) * op_.vdd *
         leak_mult_;
}

double EnergyModel::macro_leakage_uw(int ndec, int ns) const {
  SSMA_CHECK(ns >= 1);
  return block_leakage_uw(ndec) * ns;
}

double EnergyModel::decoder_leak_fraction(int ndec) const {
  SSMA_CHECK(ndec >= 1);
  return kLeakPerDecoderUwPerV * ndec /
         (kLeakBlockBaseUwPerV + kLeakPerDecoderUwPerV * ndec);
}

}  // namespace ssma::ppa
