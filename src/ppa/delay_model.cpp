#include "ppa/delay_model.hpp"

#include <cmath>

#include "ppa/corner.hpp"
#include "util/check.hpp"

namespace ssma::ppa {

namespace {

// NMOS weight of each class's critical path: the DLC evaluates through
// NMOS footer stacks; the decoder path mixes NMOS bitline discharge with
// static CMOS gates.
constexpr double kEncoderNmosWeight = 0.85;
constexpr double kDecoderNmosWeight = 0.60;

// Below this gate overdrive the device leaves the alpha-power regime; the
// model switches to an exponential subthreshold extension (continuous at
// the boundary) so that near/sub-threshold operation — reachable under
// local Vth variation at 0.5 V — yields very slow but finite delays, as
// the self-timed circuit does in silicon.
constexpr double kMinOverdriveV = 0.030;
constexpr double kSubthresholdSlopeV = 0.028;  // n*kT/q at room temperature

double alpha_power_scale(const AlphaPowerParams& law, const OperatingPoint& op,
                         double nmos_weight, double vth_offset_v) {
  SSMA_CHECK_MSG(op.vdd > 0.05, "VDD " << op.vdd << " V is not physical");
  const double vth =
      law.vth + effective_vth_shift(op.corner, nmos_weight) + vth_offset_v;
  auto delay = [&](double v) {
    const double overdrive = v - vth;
    if (overdrive >= kMinOverdriveV)
      return v / std::pow(overdrive, law.alpha);
    const double at_floor = v / std::pow(kMinOverdriveV, law.alpha);
    return at_floor *
           std::exp((kMinOverdriveV - overdrive) / kSubthresholdSlopeV);
  };
  // Reference uses the *nominal* law threshold (TTG, no offset) at 0.5 V.
  const double ref = kRefVdd / std::pow(kRefVdd - law.vth, law.alpha);
  const double temp = 1.0 + kDelayTempCoeffPerK * (op.temp_c - 25.0);
  return delay(op.vdd) / ref * temp;
}

}  // namespace

double delay_scale(DelayClass cls, const OperatingPoint& op) {
  switch (cls) {
    case DelayClass::kEncoder:
      return alpha_power_scale(kEncoderDelayLaw, op, kEncoderNmosWeight, 0.0);
    case DelayClass::kDecoder:
      return alpha_power_scale(kDecoderDelayLaw, op, kDecoderNmosWeight, 0.0);
  }
  return 1.0;
}

double DelayModel::enc_scale(double vth_offset_v) const {
  return alpha_power_scale(kEncoderDelayLaw, op_, kEncoderNmosWeight,
                           vth_offset_v);
}

double DelayModel::dec_scale(double vth_offset_v) const {
  return alpha_power_scale(kDecoderDelayLaw, op_, kDecoderNmosWeight,
                           vth_offset_v);
}

double DelayModel::dlc_eval_ns(int depth, double vth_offset_v) const {
  SSMA_CHECK(depth >= 1 && depth <= kDlcBits);
  return (kDlcBaseNs + kDlcPerBitNs * depth) * enc_scale(vth_offset_v);
}

double DelayModel::encoder_ns(const int depths[kTreeLevels]) const {
  double total = 0.0;
  for (int l = 0; l < kTreeLevels; ++l) total += dlc_eval_ns(depths[l]);
  return total;
}

double DelayModel::encoder_best_ns() const {
  const int depths[kTreeLevels] = {1, 1, 1, 1};
  return encoder_ns(depths);
}

double DelayModel::encoder_worst_ns() const {
  const int depths[kTreeLevels] = {kDlcBits, kDlcBits, kDlcBits, kDlcBits};
  return encoder_ns(depths);
}

double DelayModel::rwl_ns(int ndec, double vth_offset_v) const {
  SSMA_CHECK(ndec >= 1);
  return (kRwlDriverNs + kRwlWirePerDecNs * ndec) * dec_scale(vth_offset_v);
}

double DelayModel::rbl_discharge_ns(double vth_offset_v) const {
  return kRblDischargeNs * dec_scale(vth_offset_v);
}

double DelayModel::csa_ns(double vth_offset_v) const {
  return kCsaSettleNs * dec_scale(vth_offset_v);
}

double DelayModel::latch_ns() const { return kLatchPulseNs * dec_scale(); }

double DelayModel::rcd_col_ns() const { return kRcdColNs * dec_scale(); }

double DelayModel::rcd_lut_ns() const {
  return kRcdLutStageNs * kRcdLutStages * dec_scale();
}

double DelayModel::rcd_block_ns(int ndec) const {
  SSMA_CHECK(ndec >= 1);
  const double levels = ndec > 1 ? std::log2(static_cast<double>(ndec)) : 0.0;
  return kRcdBlockStageNs * levels * dec_scale();
}

double DelayModel::handshake_ns() const { return kHandshakeNs * dec_scale(); }

double DelayModel::precharge_ns() const { return kPrechargeNs * dec_scale(); }

double DelayModel::rca_ns(int carry_chain_bits) const {
  SSMA_CHECK(carry_chain_bits >= 0 && carry_chain_bits <= 16);
  return (kRcaBaseNs + kRcaPerBitNs * carry_chain_bits) * dec_scale();
}

double DelayModel::decoder_path_ns(int ndec) const {
  return rwl_ns(ndec) + rbl_discharge_ns() + csa_ns() + latch_ns() +
         rcd_col_ns() + rcd_lut_ns() + rcd_block_ns(ndec) + handshake_ns();
}

double DelayModel::block_latency_best_ns(int ndec) const {
  return encoder_best_ns() + decoder_path_ns(ndec);
}

double DelayModel::block_latency_worst_ns(int ndec) const {
  return encoder_worst_ns() + decoder_path_ns(ndec);
}

}  // namespace ssma::ppa
