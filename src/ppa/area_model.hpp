// Macro area model:
//   core(Ndec, NS) = NS*(A_enc + A_ctrl + Ndec*A_dec) + Ndec*A_lane + A_glob
// Reproduces the paper's 0.20 mm^2 core @ (Ndec=16, NS=32) and the Fig. 7C
// decoder-area shares (56.9% @Ndec=4, 82.9% @Ndec=16).
#pragma once

namespace ssma::ppa {

struct AreaBreakdown {
  double decoder_um2 = 0.0;   ///< all SRAM LUTs + CSAs + latches + col RCD
  double encoder_um2 = 0.0;   ///< all BDT encoders (DLC trees + buffers)
  double control_um2 = 0.0;   ///< handshake ctrl, drivers, block RCD trees
  double lane_um2 = 0.0;      ///< output RCAs + output registers
  double global_um2 = 0.0;    ///< global write driver

  double core_um2() const {
    return decoder_um2 + encoder_um2 + control_um2 + lane_um2 + global_um2;
  }
  double core_mm2() const { return core_um2() * 1e-6; }
  double decoder_share() const { return decoder_um2 / core_um2(); }
};

class AreaModel {
 public:
  AreaBreakdown macro_area(int ndec, int ns) const;
  double core_mm2(int ndec, int ns) const;
  /// Total chip area incl. pad ring / routing overhead.
  double chip_mm2(int ndec, int ns) const;
  /// SRAM capacity in bits.
  long long sram_bits(int ndec, int ns) const;
};

}  // namespace ssma::ppa
