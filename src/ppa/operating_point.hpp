// Operating conditions of the macro: supply voltage, process corner and
// temperature. All delay/energy queries are made against an
// OperatingPoint, mirroring how the paper sweeps Fig. 6.
#pragma once

#include <string>

namespace ssma::ppa {

/// Process corners evaluated in the paper (Fig. 6). First letter is the
/// NMOS corner, second the PMOS corner; G = "global" extraction.
enum class Corner { TTG, FFG, SSG, SFG, FSG };

const char* corner_name(Corner c);
Corner corner_from_name(const std::string& name);

struct OperatingPoint {
  double vdd = 0.5;            ///< supply voltage [V]
  Corner corner = Corner::TTG;
  double temp_c = 25.0;        ///< junction temperature [deg C]
};

inline OperatingPoint nominal_05v() { return {0.5, Corner::TTG, 25.0}; }
inline OperatingPoint nominal_08v() { return {0.8, Corner::TTG, 25.0}; }

}  // namespace ssma::ppa
