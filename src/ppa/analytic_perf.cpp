#include "ppa/analytic_perf.hpp"

#include "util/check.hpp"

namespace ssma::ppa {

AnalyticPerf::AnalyticPerf(MacroConfig cfg, OperatingPoint op)
    : cfg_(cfg), op_(op), delay_(op), energy_(op) {
  SSMA_CHECK(cfg.ndec >= 1 && cfg.ns >= 1);
}

long long AnalyticPerf::ops_per_token() const {
  return static_cast<long long>(cfg_.ns) * cfg_.ndec * kOpsPerLookup;
}

double AnalyticPerf::block_latency_ns(int dlc_depth) const {
  const int depths[kTreeLevels] = {dlc_depth, dlc_depth, dlc_depth,
                                   dlc_depth};
  return delay_.encoder_ns(depths) + delay_.decoder_path_ns(cfg_.ndec);
}

double AnalyticPerf::token_dynamic_fj() const {
  const int avg_depth = kDlcBits / 2;  // mid-range data assumption
  const int depths[kTreeLevels] = {avg_depth, avg_depth, avg_depth,
                                   avg_depth};
  const double per_block = energy_.encoder_pass_fj(depths) +
                           cfg_.ndec * energy_.decoder_lookup_avg_fj() +
                           energy_.ctrl_pass_fj(cfg_.ndec);
  const double output_stage =
      cfg_.ndec * (energy_.rca_fj() + energy_.out_reg_fj());
  return per_block * cfg_.ns + output_stage;
}

PerfPoint AnalyticPerf::perf_at_interval(double interval_ns) const {
  SSMA_CHECK(interval_ns > 0.0);
  PerfPoint p;
  p.freq_mhz = 1e3 / interval_ns;
  const double ops = static_cast<double>(ops_per_token());
  p.throughput_tops = ops / interval_ns * 1e-3;  // ops/ns -> TOPS
  const double dyn_fj = token_dynamic_fj();
  const double leak_fj =
      energy_.macro_leakage_uw(cfg_.ndec, cfg_.ns) * interval_ns;
  p.energy_per_op_fj = (dyn_fj + leak_fj) / ops;
  p.tops_per_w = 1e3 / p.energy_per_op_fj;  // 1/fJ -> TOPS/W
  p.power_uw = (dyn_fj + leak_fj) / interval_ns;
  p.tops_per_mm2 =
      p.throughput_tops / area_.core_mm2(cfg_.ndec, cfg_.ns);
  return p;
}

PerfEnvelope AnalyticPerf::envelope() const {
  PerfEnvelope e;
  e.best = perf_at_interval(block_latency_ns(1));
  e.worst = perf_at_interval(block_latency_ns(kDlcBits));
  e.avg_tops_per_w = 0.5 * (e.best.tops_per_w + e.worst.tops_per_w);
  e.avg_tops_per_mm2 = 0.5 * (e.best.tops_per_mm2 + e.worst.tops_per_mm2);
  e.core_mm2 = area_.core_mm2(cfg_.ndec, cfg_.ns);
  return e;
}

EnergyBreakdownPerOp AnalyticPerf::energy_breakdown() const {
  // Evaluate at the average of the best/worst intervals, average data.
  const double interval =
      0.5 * (block_latency_ns(1) + block_latency_ns(kDlcBits));
  const double ops = static_cast<double>(ops_per_token());

  const int avg_depth = kDlcBits / 2;
  const int depths[kTreeLevels] = {avg_depth, avg_depth, avg_depth,
                                   avg_depth};

  EnergyBreakdownPerOp b;
  const double dec_dyn =
      cfg_.ns * cfg_.ndec * energy_.decoder_lookup_avg_fj();
  const double enc_dyn = cfg_.ns * energy_.encoder_pass_fj(depths);
  const double other_dyn =
      cfg_.ns * energy_.ctrl_pass_fj(cfg_.ndec) +
      cfg_.ndec * (energy_.rca_fj() + energy_.out_reg_fj());

  // Leakage split mirrors the area split: decoders hold the lion's share
  // of devices; the encoder's dynamic-logic trees leak little.
  const double leak_total =
      energy_.macro_leakage_uw(cfg_.ndec, cfg_.ns) * interval;
  const double dec_leak_frac =
      kLeakPerDecoderUwPerV * cfg_.ndec /
      (kLeakBlockBaseUwPerV + kLeakPerDecoderUwPerV * cfg_.ndec);
  const double enc_leak_frac = 0.25 * (1.0 - dec_leak_frac);

  b.decoder_fj = (dec_dyn + leak_total * dec_leak_frac) / ops;
  b.encoder_fj = (enc_dyn + leak_total * enc_leak_frac) / ops;
  b.other_fj =
      (other_dyn + leak_total * (1.0 - dec_leak_frac - enc_leak_frac)) / ops;
  return b;
}

}  // namespace ssma::ppa
