// Calibrated 22nm technology constants for the proposed macro.
//
// Every number here is derived from the paper's published post-layout
// results (see DESIGN.md §5 for the full derivation). They play the role
// of the HSPICE-characterized standard-cell/SRAM models that the authors
// used; our event-driven simulator composes them at event granularity.
//
// Calibration anchors reproduced by these constants:
//   * Fig. 7B block latencies: 16.1/30.4 ns (Ndec=4), 17.8/32.1 ns (Ndec=16)
//   * Table II frequencies: 31.2-56.2 MHz @0.5V, 144-353 MHz @0.8V
//   * Table I energy efficiencies (8 values) to <= 0.3%
//   * Fig. 6 energy efficiencies (6 voltages) to <= 1.5%
//   * Core area 0.20 mm^2 @ (Ndec=16, NS=32); Fig. 7C area shares
#pragma once

namespace ssma::ppa {

// ---------------------------------------------------------------------------
// Reference point: all base delays/energies are characterized at
// VDD = 0.5 V, TTG corner, 25 degC.
// ---------------------------------------------------------------------------
inline constexpr double kRefVdd = 0.5;

// --- Delay classes (alpha-power-law voltage scaling) -----------------------
// d(V) = d_base * [V / (V - Vth)^alpha] / [Vref / (Vref - Vth)^alpha]
//
// The encoder (dual-rail dynamic logic, NMOS evaluation stacks) and the
// decoder/control path (SRAM bitline discharge, static CMOS adders, RCD
// gates) exhibit different voltage sensitivities in the paper's data:
// from 0.5 V to 0.8 V the encoder speeds up ~3.5x while the decoder path
// speeds up ~14.8x (near-threshold behaviour). Two (Vth, alpha) pairs fit
// both published frequency pairs.
struct AlphaPowerParams {
  double vth;    // effective threshold voltage [V]
  double alpha;  // velocity-saturation exponent
};

inline constexpr AlphaPowerParams kEncoderDelayLaw{0.37, 1.45};
inline constexpr AlphaPowerParams kDecoderDelayLaw{0.452, 1.60};

// Corner modelling: Vth shift per corner letter, applied with per-class
// NMOS/PMOS path weights. 30 mV global-corner shift is typical for a 22nm
// bulk process.
inline constexpr double kCornerVthShift = 0.030;  // [V]

// Temperature: mobility degradation ~0.15%/K around 25 degC (delay), and
// leakage doubling every ~20 K.
inline constexpr double kDelayTempCoeffPerK = 0.0015;
inline constexpr double kLeakTempDoublingK = 20.0;

// --- Encoder timing (at the 0.5 V reference) --------------------------------
// A 4-level BDT evaluation performs 4 sequential DLC evaluations. Each DLC
// resolves at a data-dependent depth in [1, 8]:
//   t_dlc(depth) = kDlcBaseNs + kDlcPerBitNs * depth
// Best case (all 4 levels resolve at depth 1):  4*(1.339+0.511)  = 7.4 ns
// Worst case (all 4 levels resolve at depth 8): 4*(1.339+4.088) = 21.7 ns
inline constexpr double kDlcBaseNs = 1.339;
inline constexpr double kDlcPerBitNs = 0.511;
inline constexpr int kDlcBits = 8;

// --- Decoder / control timing (at the 0.5 V reference) ----------------------
// B(Ndec) = fixed path + RWL wire RC (linear in Ndec) + block-RCD tree
// (log2(Ndec) NAND-NOR stages):
//   B(4) = 8.70 ns, B(16) = 10.40 ns  (fits Fig. 7B exactly)
inline constexpr double kRwlDriverNs = 0.50;    // RWL driver intrinsic
inline constexpr double kRwlWirePerDecNs = 0.04;  // RWL wire RC per decoder
inline constexpr double kRblDischargeNs = 2.50;   // 10T-SRAM read (RBL/RBLB)
inline constexpr double kCsaSettleNs = 1.50;      // 16-bit carry-save adder
inline constexpr double kLatchPulseNs = 0.80;     // pulse gen + D-latch
inline constexpr double kRcdColNs = 0.50;         // column 2NAND-1NOR detect
inline constexpr double kRcdLutStageNs = 0.30;    // per stage, 3 stages for 8 cols
inline constexpr int kRcdLutStages = 3;
inline constexpr double kRcdBlockStageNs = 0.61;  // per NAND-NOR tournament level
inline constexpr double kHandshakeNs = 0.62;      // four-phase ctrl overhead
inline constexpr double kPrechargeNs = 2.00;      // DLC + bitline precharge
inline constexpr double kRcaBaseNs = 0.60;        // RCA intrinsic
inline constexpr double kRcaPerBitNs = 0.18;      // per carry-chain bit

// --- Dynamic energy (at the 0.5 V reference, [fJ]) ---------------------------
// E(V) = E_base * (V / 0.5)^2.
//
// Decoder lookup = 90 fJ total: 8 column reads (precharge + full-swing
// RBL/RBLB discharge), CSA, latches, RCD gates.
inline constexpr double kEnergyColumnReadFj = 8.0;   // per SRAM column read
inline constexpr double kEnergyCsaFj = 16.0;         // 16-bit CSA (avg data)
inline constexpr double kEnergyLatchFj = 6.0;        // output latch bank
inline constexpr double kEnergyRcdLutFj = 4.0;       // column+LUT RCD gates
// Encoder pass = 11.5 fJ: all 15 DLCs precharge, 4 evaluate, input buffer.
inline constexpr double kEnergyDlcPrechargeFj = 0.40;  // per DLC per cycle
inline constexpr double kEnergyDlcEvalBaseFj = 0.60;   // per activated DLC
inline constexpr double kEnergyDlcEvalPerBitFj = 0.075;  // per discharge depth
inline constexpr double kEnergyInputBufFj = 0.70;      // per encoding
// Control: per block pass, kCtrlBaseFj + kCtrlPerDecFj * Ndec (handshake,
// RWL drivers, block RCD tree).
inline constexpr double kCtrlBaseFj = 1.04;
inline constexpr double kCtrlPerDecFj = 1.54;
// Output stage: Ndec 16-bit RCAs + output register, per token.
inline constexpr double kEnergyRcaFj = 9.0;   // per RCA resolve
inline constexpr double kEnergyOutRegFj = 3.0;  // per lane per token
// LUT/threshold programming (write path), per bit written.
inline constexpr double kEnergyWriteBitFj = 1.8;

// --- Leakage ----------------------------------------------------------------
// P_leak(block) = (kLeakBlockBaseUwPerV + kLeakPerDecoderUwPerV * Ndec) * V
// in microwatts (== fJ/ns). Fitted jointly with the dynamic split to
// Table I's 0.5 V / 0.8 V energy-efficiency rows.
inline constexpr double kLeakBlockBaseUwPerV = 1.08;
inline constexpr double kLeakPerDecoderUwPerV = 0.825;
// Corner leakage multipliers (typical bulk-22nm spread).
inline constexpr double kLeakMultFFG = 2.5;
inline constexpr double kLeakMultSSG = 0.45;
inline constexpr double kLeakMultSFG = 1.10;
inline constexpr double kLeakMultFSG = 1.10;

// --- Area [um^2] --------------------------------------------------------------
// A(Ndec, NS) = NS*(A_enc + A_ctrl + Ndec*A_dec) + Ndec*A_lane + A_global
// Decoder: 16x8 10T-SRAM (128 cells) + 16-bit CSA + latches + RCD.
inline constexpr double kAreaDecoderUm2 = 323.8;
inline constexpr double kAreaEncoderUm2 = 310.0;   // 15 DLCs + input buffer
inline constexpr double kAreaCtrlUm2 = 630.0;      // handshake, drivers, RCD
inline constexpr double kAreaLaneUm2 = 233.0;      // 16-bit RCA + out register
inline constexpr double kAreaGlobalUm2 = 300.0;    // global write driver
// Total chip area adds pad ring / routing overhead (paper: 0.66 mm^2 total
// vs 0.20 mm^2 core for the flagship macro).
inline constexpr double kChipAreaOverheadFactor = 3.3;

// --- Ops accounting -----------------------------------------------------------
// One LUT lookup replaces a 9-element dot product: 9 MACs = 18 ops (Fig. 3).
inline constexpr int kSubvectorDim = 9;
inline constexpr int kOpsPerLookup = 2 * kSubvectorDim;

// --- Architectural constants ---------------------------------------------------
inline constexpr int kNumPrototypes = 16;  // K = 2^4 leaves
inline constexpr int kTreeLevels = 4;
/// Prototypes per codebook (LUT rows per decoder SRAM): 2^kTreeLevels.
/// Software paths that model the fixed-function hardware (decoder arrays,
/// tile programming, the pshufb kernel lane width) are sized by this
/// constant; configurable-K paths must route through Config::nprototypes()
/// and check against it where they hand off to hardware-shaped code.
inline constexpr int kProtosPerCodebook = 1 << kTreeLevels;
inline constexpr int kLutRows = 16;
inline constexpr int kLutBits = 8;

// --- Local (within-die) variation ------------------------------------------------
// Sigma of per-instance Vth mismatch [V], used by Monte-Carlo runs; the
// paper cites vulnerability of large-Ndec configurations to local
// variation (Sec. IV). AVT/sqrt(WL)-style magnitude for near-minimum
// devices in 22nm bulk.
inline constexpr double kLocalVthSigma = 0.018;

}  // namespace ssma::ppa
