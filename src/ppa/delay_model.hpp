// Voltage/corner/temperature delay scaling and per-component delay
// queries. The event-driven simulator asks this model for the duration of
// every timing arc; the analytic performance model composes the same
// primitives in closed form, which is how the two stay consistent.
#pragma once

#include "ppa/operating_point.hpp"
#include "ppa/tech_constants.hpp"

namespace ssma::ppa {

/// Which calibrated delay law a timing arc follows.
enum class DelayClass {
  kEncoder,   ///< dual-rail dynamic logic (DLC evaluation), NMOS stacks
  kDecoder,   ///< SRAM read, CSA, latches, RCD, handshake — near-threshold law
};

/// Dimensionless delay multiplier vs the 0.5 V / TTG / 25 degC reference.
/// Throws if vdd is at or below the effective threshold voltage.
double delay_scale(DelayClass cls, const OperatingPoint& op);

/// Timing arcs of the proposed macro. All return nanoseconds at the given
/// operating point. `vth_offset_v` shifts the effective threshold of the
/// specific instance (Monte-Carlo local variation); 0 for nominal.
class DelayModel {
 public:
  explicit DelayModel(const OperatingPoint& op) : op_(op) {}

  const OperatingPoint& op() const { return op_; }

  /// One DLC evaluation that resolves at `depth` (1 = decided by the MSB
  /// cell alone, kDlcBits = full ripple / equality).
  double dlc_eval_ns(int depth, double vth_offset_v = 0.0) const;

  /// Full 4-level BDT encoding given the four per-level resolution depths.
  double encoder_ns(const int depths[kTreeLevels]) const;

  double encoder_best_ns() const;
  double encoder_worst_ns() const;

  double rwl_ns(int ndec, double vth_offset_v = 0.0) const;
  double rbl_discharge_ns(double vth_offset_v = 0.0) const;
  double csa_ns(double vth_offset_v = 0.0) const;
  double latch_ns() const;
  double rcd_col_ns() const;
  double rcd_lut_ns() const;
  double rcd_block_ns(int ndec) const;
  double handshake_ns() const;
  double precharge_ns() const;

  /// RCA resolve delay given the longest carry-propagate run (bits).
  double rca_ns(int carry_chain_bits) const;

  /// Fixed (non-encoder) portion of the block latency: RWL + RBL + CSA +
  /// latch + column/LUT/block RCD + handshake. Matches the calibrated
  /// B(Ndec) of DESIGN.md §5.
  double decoder_path_ns(int ndec) const;

  /// Full block latency bounds (encoder best/worst + decoder path).
  double block_latency_best_ns(int ndec) const;
  double block_latency_worst_ns(int ndec) const;

 private:
  double enc_scale(double vth_offset_v = 0.0) const;
  double dec_scale(double vth_offset_v = 0.0) const;

  OperatingPoint op_;
};

}  // namespace ssma::ppa
