#include "ppa/corner.hpp"

#include <cmath>

#include "ppa/tech_constants.hpp"
#include "util/check.hpp"

namespace ssma::ppa {

const char* corner_name(Corner c) {
  switch (c) {
    case Corner::TTG: return "TTG";
    case Corner::FFG: return "FFG";
    case Corner::SSG: return "SSG";
    case Corner::SFG: return "SFG";
    case Corner::FSG: return "FSG";
  }
  return "?";
}

Corner corner_from_name(const std::string& name) {
  if (name == "TTG") return Corner::TTG;
  if (name == "FFG") return Corner::FFG;
  if (name == "SSG") return Corner::SSG;
  if (name == "SFG") return Corner::SFG;
  if (name == "FSG") return Corner::FSG;
  SSMA_CHECK_MSG(false, "unknown corner name: " << name);
  return Corner::TTG;
}

CornerParams corner_params(Corner c) {
  // First letter = NMOS, second = PMOS. "Fast" = lower Vth.
  switch (c) {
    case Corner::TTG: return {0.0, 0.0, 1.0};
    case Corner::FFG: return {-kCornerVthShift, -kCornerVthShift, kLeakMultFFG};
    case Corner::SSG: return {+kCornerVthShift, +kCornerVthShift, kLeakMultSSG};
    case Corner::SFG: return {+kCornerVthShift, -kCornerVthShift, kLeakMultSFG};
    case Corner::FSG: return {-kCornerVthShift, +kCornerVthShift, kLeakMultFSG};
  }
  return {};
}

double effective_vth_shift(Corner c, double nmos_weight) {
  SSMA_CHECK(nmos_weight >= 0.0 && nmos_weight <= 1.0);
  const CornerParams p = corner_params(c);
  return nmos_weight * p.dvth_n + (1.0 - nmos_weight) * p.dvth_p;
}

double leakage_multiplier(const OperatingPoint& op) {
  const CornerParams p = corner_params(op.corner);
  const double temp_factor =
      std::pow(2.0, (op.temp_c - 25.0) / kLeakTempDoublingK);
  return p.leak_mult * temp_factor;
}

}  // namespace ssma::ppa
