#include "baselines/exact_mac_model.hpp"

#include "util/check.hpp"

namespace ssma::baselines {

double MacBaselineModel::node_scale(double node_nm, double vdd) const {
  SSMA_CHECK(node_nm > 0.0 && vdd > 0.0);
  const double cap = node_nm / 45.0;           // C ~ feature size
  const double v = (vdd / 0.9) * (vdd / 0.9);  // 0.9V nominal at 45nm
  return cap * v;
}

double MacBaselineModel::mac_energy_fj(double node_nm, double vdd) const {
  const double s = node_scale(node_nm, vdd);
  return (mult8_pj_45nm + add16_pj_45nm) * 1e3 * s;
}

double MacBaselineModel::energy_per_op_fj(double node_nm, double vdd,
                                          bool include_weight_fetch) const {
  const double s = node_scale(node_nm, vdd);
  double per_mac = mac_energy_fj(node_nm, vdd);
  if (include_weight_fetch)
    per_mac += sram64k_read8_pj_45nm * 1e3 * s;  // one weight byte per MAC
  return per_mac / 2.0;  // 1 MAC == 2 ops
}

double MacBaselineModel::tops_per_w(double node_nm, double vdd,
                                    bool include_weight_fetch) const {
  return 1e3 / energy_per_op_fj(node_nm, vdd, include_weight_fetch);
}

}  // namespace ssma::baselines
