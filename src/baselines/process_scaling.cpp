#include "baselines/process_scaling.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ssma::baselines {

double scale_area_mm2(double area_mm2, const ScalingSpec& spec) {
  SSMA_CHECK(area_mm2 > 0.0);
  SSMA_CHECK(spec.from_nm > 0.0 && spec.to_nm > 0.0);
  SSMA_CHECK(spec.unscaled_fraction >= 0.0 && spec.unscaled_fraction <= 1.0);
  const double shrink =
      std::pow(spec.to_nm / spec.from_nm, spec.density_exponent);
  const double unscaled = area_mm2 * spec.unscaled_fraction;
  const double scaled = area_mm2 * (1.0 - spec.unscaled_fraction) * shrink;
  return unscaled + scaled;
}

double scale_area_efficiency(double tops, double area_mm2,
                             const ScalingSpec& spec) {
  SSMA_CHECK(tops > 0.0);
  return tops / scale_area_mm2(area_mm2, spec);
}

}  // namespace ssma::baselines
