// Conventional digital MAC-array baseline: energy model built from
// Horowitz's ISSCC'14 arithmetic-energy survey (the paper's motivation:
// multipliers cost 6-31x the energy / 8-25x the area of adders), scaled
// to the 22nm comparison node. Provides the "what if we just multiplied"
// reference row for the comparison bench.
#pragma once

namespace ssma::baselines {

struct MacBaselineModel {
  // 45nm reference energies (Horowitz, ISSCC 2014).
  double mult8_pj_45nm = 0.2;
  double add8_pj_45nm = 0.03;
  double add16_pj_45nm = 0.05;
  double sram64k_read8_pj_45nm = 2.0;  // per 8-bit word from a 64kB array

  /// Dynamic energy scaling factor 45nm -> target node at VDD
  /// (capacitance ~ linear in node, energy ~ C * V^2 with 0.9V nominal
  /// at 45nm).
  double node_scale(double node_nm, double vdd) const;

  /// Energy of one 8-bit MAC (multiply + 16-bit accumulate) [fJ].
  double mac_energy_fj(double node_nm, double vdd) const;

  /// Energy per op (1 MAC = 2 ops) including a weight-fetch share [fJ].
  double energy_per_op_fj(double node_nm, double vdd,
                          bool include_weight_fetch = true) const;

  /// TOPS/W of the MAC-array baseline.
  double tops_per_w(double node_nm, double vdd,
                    bool include_weight_fetch = true) const;
};

}  // namespace ssma::baselines
