// Published datapoints of the prior accelerators compared in Table II:
//   [21] Fuketa, TCAS-I'23  — analog time-domain MADDNESS macro, 65nm
//   [22] Stella Nera        — synthesizable digital MADDNESS, 14nm
// plus the scaling specs that reproduce the paper's 22nm-normalized
// area-efficiency numbers (footnote 4).
#pragma once

#include <string>

#include "baselines/process_scaling.hpp"

namespace ssma::baselines {

struct PriorWorkDatapoint {
  std::string label;
  std::string mode;
  double process_nm = 0.0;
  double supply_v = 0.0;
  double area_mm2 = 0.0;
  double freq_mhz_lo = 0.0;
  double freq_mhz_hi = 0.0;
  double throughput_tops = 0.0;
  double tops_per_w = 0.0;
  double tops_per_mm2 = 0.0;          ///< at native node
  double tops_per_mm2_scaled22 = 0.0; ///< paper's normalized value
  double resnet9_cifar10_acc = 0.0;
  double encoder_fj_per_op = 0.0;
  double decoder_fj_per_op = 0.0;
  ScalingSpec scaling;
};

/// [21]: measured silicon, analog encoder (68% of area does not scale).
PriorWorkDatapoint fuketa_tcas23();

/// [22]: simulated, 14nm FinFET digital.
PriorWorkDatapoint stella_nera();

/// Re-derives the 22nm-normalized area efficiency from the native
/// datapoint and the scaling spec; tests assert it matches the paper's
/// parenthesized values (0.40 and 2.70).
double normalized_area_efficiency(const PriorWorkDatapoint& d);

}  // namespace ssma::baselines
