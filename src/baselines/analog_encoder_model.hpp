// Behavioural model of [21]'s analog time-domain encoder: inputs and
// prototypes expand to thermometer codes and race down per-prototype
// delay chains (a digital-to-time converter computes Manhattan distance
// as propagation delay; the fastest chain wins).
//
// The model exposes the mechanism the paper criticizes: per-cell delay
// mismatch (PVT variation) perturbs the race and flips argmin decisions,
// degrading encoding fidelity — unlike the proposed all-digital BDT whose
// decisions are discrete comparisons. The PVT-robustness experiment
// quantifies exactly this.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace ssma::baselines {

class AnalogTimeDomainEncoder {
 public:
  /// `prototypes`: K x D (values in [0, 63], 6-bit as in [21]).
  /// `cell_delay_sigma`: per-delay-cell mismatch (relative, e.g. 0.05 =
  /// 5% sigma); one mismatch map is drawn per instance (per die).
  AnalogTimeDomainEncoder(const Matrix& prototypes, double cell_delay_sigma,
                          Rng& rng);

  int k() const { return static_cast<int>(prototypes_.rows()); }
  int dims() const { return static_cast<int>(prototypes_.cols()); }

  /// Ideal (mismatch-free) encode: Manhattan-distance argmin.
  int encode_ideal(const std::vector<int>& x) const;

  /// Encode through the mismatched delay chains of this die.
  int encode(const std::vector<int>& x) const;

  /// Fraction of encodes that differ from ideal over random inputs.
  static double misclassification_rate(const Matrix& prototypes,
                                       double cell_delay_sigma, int trials,
                                       Rng& rng);

 private:
  double chain_delay(const std::vector<int>& x, int proto,
                     bool with_mismatch) const;

  Matrix prototypes_;
  /// Per (prototype, dim) relative delay error of the chain segment.
  std::vector<double> mismatch_;
};

}  // namespace ssma::baselines
