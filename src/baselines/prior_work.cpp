#include "baselines/prior_work.hpp"

namespace ssma::baselines {

PriorWorkDatapoint fuketa_tcas23() {
  PriorWorkDatapoint d;
  d.label = "TCAS-I'23 [21]";
  d.mode = "MADDNESS (Analog)";
  d.process_nm = 65.0;
  d.supply_v = 0.6;  // multiple-VDD structure: 0.35/0.6/1.0
  d.area_mm2 = 0.31;
  d.freq_mhz_lo = d.freq_mhz_hi = 77.0;
  d.throughput_tops = 0.089;
  d.tops_per_w = 69.0;
  d.tops_per_mm2 = 0.29;
  d.tops_per_mm2_scaled22 = 0.40;
  d.resnet9_cifar10_acc = 89.0;
  d.encoder_fj_per_op = 7.47;
  d.decoder_fj_per_op = 7.02;  // accumulator not included
  // Only the digital parts scale; the analog encoder (~68% of area) does
  // not — this fraction reproduces the paper's 0.40 TOPS/mm^2.
  d.scaling = ScalingSpec{65.0, 22.0, 2.0, 0.68};
  return d;
}

PriorWorkDatapoint stella_nera() {
  PriorWorkDatapoint d;
  d.label = "arXiv'23 [22]";
  d.mode = "MADDNESS (Digital)";
  d.process_nm = 14.0;
  d.supply_v = 0.55;
  d.area_mm2 = 0.57;
  d.freq_mhz_lo = d.freq_mhz_hi = 624.0;
  d.throughput_tops = 2.9;
  d.tops_per_w = 43.1;
  d.tops_per_mm2 = 5.1;
  d.tops_per_mm2_scaled22 = 2.70;
  d.resnet9_cifar10_acc = 92.6;
  d.encoder_fj_per_op = 1.27;
  d.decoder_fj_per_op = 16.47;
  // Effective density exponent 1.40 between 14nm FinFET and 22nm planar
  // reproduces the paper's 2.70 TOPS/mm^2 normalization.
  d.scaling = ScalingSpec{14.0, 22.0, 1.40, 0.0};
  return d;
}

double normalized_area_efficiency(const PriorWorkDatapoint& d) {
  return scale_area_efficiency(d.throughput_tops, d.area_mm2, d.scaling);
}

}  // namespace ssma::baselines
