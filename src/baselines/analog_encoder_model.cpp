#include "baselines/analog_encoder_model.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace ssma::baselines {

AnalogTimeDomainEncoder::AnalogTimeDomainEncoder(const Matrix& prototypes,
                                                 double cell_delay_sigma,
                                                 Rng& rng)
    : prototypes_(prototypes) {
  SSMA_CHECK(prototypes.rows() >= 1);
  SSMA_CHECK(cell_delay_sigma >= 0.0);
  mismatch_.resize(prototypes.rows() * prototypes.cols());
  for (auto& m : mismatch_)
    m = rng.next_gaussian(0.0, cell_delay_sigma);
}

double AnalogTimeDomainEncoder::chain_delay(const std::vector<int>& x,
                                            int proto,
                                            bool with_mismatch) const {
  SSMA_CHECK(x.size() == prototypes_.cols());
  // Each dimension contributes |x_d - c_d| unit delay cells (thermometer
  // difference); mismatch perturbs each segment multiplicatively.
  double total = 0.0;
  for (std::size_t d = 0; d < prototypes_.cols(); ++d) {
    SSMA_CHECK(x[d] >= 0 && x[d] <= 63);
    const double cells =
        std::abs(static_cast<double>(x[d]) - prototypes_(proto, d));
    const double m =
        with_mismatch
            ? 1.0 + mismatch_[static_cast<std::size_t>(proto) *
                                  prototypes_.cols() +
                              d]
            : 1.0;
    total += cells * std::max(m, 0.05);  // delays cannot go negative
  }
  return total;
}

int AnalogTimeDomainEncoder::encode_ideal(const std::vector<int>& x) const {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (int p = 0; p < k(); ++p) {
    const double d = chain_delay(x, p, /*with_mismatch=*/false);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

int AnalogTimeDomainEncoder::encode(const std::vector<int>& x) const {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (int p = 0; p < k(); ++p) {
    const double d = chain_delay(x, p, /*with_mismatch=*/true);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

double AnalogTimeDomainEncoder::misclassification_rate(
    const Matrix& prototypes, double cell_delay_sigma, int trials,
    Rng& rng) {
  SSMA_CHECK(trials >= 1);
  const AnalogTimeDomainEncoder enc(prototypes, cell_delay_sigma, rng);
  int flipped = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> x(prototypes.cols());
    for (auto& v : x) v = rng.next_int(0, 63);
    if (enc.encode(x) != enc.encode_ideal(x)) ++flipped;
  }
  return static_cast<double>(flipped) / trials;
}

}  // namespace ssma::baselines
