// Process-node scaling utilities used to normalize prior-work results to
// the 22nm comparison node (Table II, footnote 4). Classic area scaling
// goes with the square of the feature-size ratio; real designs deviate
// (FinFET density, SRAM vs logic mix, analog content), so scaling accepts
// a density exponent and an unscaled (analog) area fraction.
#pragma once

namespace ssma::baselines {

struct ScalingSpec {
  double from_nm = 65.0;
  double to_nm = 22.0;
  /// Area ~ (from/to)^-exponent per unit; 2.0 = ideal dimension scaling.
  double density_exponent = 2.0;
  /// Fraction of the design's area that does NOT scale (analog blocks,
  /// I/O): Table II scales "only the digital parts" of [21].
  double unscaled_fraction = 0.0;
};

/// Scaled area of a design occupying `area_mm2` at `spec.from_nm`.
double scale_area_mm2(double area_mm2, const ScalingSpec& spec);

/// Scaled area efficiency (throughput / scaled area).
double scale_area_efficiency(double tops, double area_mm2,
                             const ScalingSpec& spec);

}  // namespace ssma::baselines
