// Binary serialization of trained Amm operators. Explicit little-endian
// encoding of fixed-width fields makes the format portable across hosts.
#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "maddness/amm.hpp"
#include "util/check.hpp"

namespace ssma::maddness {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'M', 'A', 'A', 'M', 'M', '1'};

void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(os, (v >> (8 * i)) & 0xFF);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(os, (v >> (8 * i)) & 0xFF);
}

void put_f32(std::ostream& os, float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  __builtin_memcpy(&bits, &v, 4);
  put_u32(os, bits);
}

void put_f64(std::ostream& os, double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits;
  __builtin_memcpy(&bits, &v, 8);
  put_u64(os, bits);
}

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  SSMA_CHECK_MSG(c != EOF, "unexpected end of AMM stream");
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(get_u8(is)) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(get_u8(is)) << (8 * i);
  return v;
}

float get_f32(std::istream& is) {
  const std::uint32_t bits = get_u32(is);
  float v;
  __builtin_memcpy(&v, &bits, 4);
  return v;
}

double get_f64(std::istream& is) {
  const std::uint64_t bits = get_u64(is);
  double v;
  __builtin_memcpy(&v, &bits, 8);
  return v;
}

void put_matrix(std::ostream& os, const Matrix& m) {
  put_u64(os, m.rows());
  put_u64(os, m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) put_f32(os, m.data()[i]);
}

Matrix get_matrix(std::istream& is) {
  const auto rows = static_cast<std::size_t>(get_u64(is));
  const auto cols = static_cast<std::size_t>(get_u64(is));
  SSMA_CHECK_MSG(rows < (1u << 24) && cols < (1u << 24),
                 "implausible matrix dims in AMM stream");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = get_f32(is);
  return m;
}

}  // namespace

void Amm::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));

  // Config.
  put_u32(os, static_cast<std::uint32_t>(cfg_.ncodebooks));
  put_u32(os, static_cast<std::uint32_t>(cfg_.subvec_dim));
  put_u32(os, static_cast<std::uint32_t>(cfg_.nlevels));
  put_u8(os, cfg_.proto_opt == PrototypeOpt::kRidgeJoint ? 1 : 0);
  put_f64(os, cfg_.ridge_lambda);
  put_u8(os, cfg_.per_column_lut_scale ? 1 : 0);
  put_f64(os, cfg_.act_clip_percentile);
  put_u32(os, static_cast<std::uint32_t>(cfg_.lut_bits));

  put_f32(os, act_scale_);

  // Trees.
  for (const auto& tree : trees_) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      put_u32(os, static_cast<std::uint32_t>(tree.split_dim(l)));
    for (int n = 0; n < HashTree::kNodes; ++n)
      put_u8(os, tree.threshold_flat(n));
  }

  // Prototypes.
  put_matrix(os, protos_.p);

  // LUT bank.
  put_u32(os, static_cast<std::uint32_t>(lut_.nout));
  put_u64(os, lut_.scales.size());
  for (float s : lut_.scales) put_f32(os, s);
  put_u64(os, lut_.q.size());
  for (std::int8_t v : lut_.q) put_u8(os, static_cast<std::uint8_t>(v));
  put_u64(os, lut_.f.size());
  for (float v : lut_.f) put_f32(os, v);

  SSMA_CHECK_MSG(os.good(), "AMM serialization stream failure");
}

Amm Amm::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  SSMA_CHECK_MSG(is.good() && std::equal(magic, magic + 8, kMagic),
                 "not an SSMA AMM stream");

  Amm amm;
  amm.cfg_.ncodebooks = static_cast<int>(get_u32(is));
  amm.cfg_.subvec_dim = static_cast<int>(get_u32(is));
  amm.cfg_.nlevels = static_cast<int>(get_u32(is));
  amm.cfg_.proto_opt = get_u8(is) ? PrototypeOpt::kRidgeJoint
                                  : PrototypeOpt::kBucketMeans;
  amm.cfg_.ridge_lambda = get_f64(is);
  amm.cfg_.per_column_lut_scale = get_u8(is) != 0;
  amm.cfg_.act_clip_percentile = get_f64(is);
  amm.cfg_.lut_bits = static_cast<int>(get_u32(is));
  amm.cfg_.validate();

  amm.act_scale_ = get_f32(is);
  SSMA_CHECK(amm.act_scale_ > 0.0f);

  amm.trees_.resize(amm.cfg_.ncodebooks);
  for (auto& tree : amm.trees_) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      tree.set_split_dim(l, static_cast<int>(get_u32(is)));
    for (int l = 0; l < HashTree::kLevels; ++l)
      for (int n = 0; n < (1 << l); ++n)
        tree.set_threshold(l, n, 0);  // placeholder; set flat below
    // Flat threshold order matches save().
    for (int flat = 0; flat < HashTree::kNodes; ++flat) {
      const int level = flat < 1 ? 0 : (flat < 3 ? 1 : (flat < 7 ? 2 : 3));
      const int node = flat - ((1 << level) - 1);
      tree.set_threshold(level, node, get_u8(is));
    }
  }

  amm.protos_.p = get_matrix(is);
  amm.protos_.cfg = amm.cfg_;

  amm.lut_.cfg = amm.cfg_;
  amm.lut_.nout = static_cast<int>(get_u32(is));
  amm.lut_.scales.resize(get_u64(is));
  for (auto& s : amm.lut_.scales) s = get_f32(is);
  amm.lut_.q.resize(get_u64(is));
  for (auto& v : amm.lut_.q) v = static_cast<std::int8_t>(get_u8(is));
  amm.lut_.f.resize(get_u64(is));
  for (auto& v : amm.lut_.f) v = get_f32(is);

  SSMA_CHECK(amm.lut_.q.size() ==
             static_cast<std::size_t>(amm.cfg_.ncodebooks) * 16 *
                 amm.lut_.nout);
  return amm;
}

void Amm::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  SSMA_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save(os);
}

Amm Amm::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SSMA_CHECK_MSG(is.is_open(), "cannot open " << path);
  return load(is);
}

}  // namespace ssma::maddness
