// Binary serialization of trained Amm operators. Explicit little-endian
// encoding of fixed-width fields makes the format portable across hosts;
// the field payload travels inside a length+CRC frame (framing.hpp) so a
// torn or bit-rotted blob fails loudly at load time — a hard requirement
// for the serving runtime, whose crash recovery reprograms worker shards
// from persisted blobs.
#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "maddness/amm.hpp"
#include "maddness/framing.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::maddness {

namespace {

using wire::get_f32;
using wire::get_f64;
using wire::get_u32;
using wire::get_u64;
using wire::get_u8;
using wire::put_f32;
using wire::put_f64;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

constexpr char kMagic[8] = {'S', 'S', 'M', 'A', 'A', 'M', 'M', '2'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_matrix(std::ostream& os, const Matrix& m) {
  put_u64(os, m.rows());
  put_u64(os, m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) put_f32(os, m.data()[i]);
}

Matrix get_matrix(std::istream& is) {
  const auto rows = static_cast<std::size_t>(get_u64(is));
  const auto cols = static_cast<std::size_t>(get_u64(is));
  SSMA_CHECK_MSG(rows < (1u << 24) && cols < (1u << 24),
                 "implausible matrix dims in AMM stream");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = get_f32(is);
  return m;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

std::uint32_t crc32(const std::string& s) {
  return crc32(s.data(), s.size());
}

void write_framed_blob(std::ostream& os, const std::string& payload) {
  put_u64(os, payload.size());
  put_u32(os, crc32(payload));
  os.write(payload.data(),
           static_cast<std::streamsize>(payload.size()));
  SSMA_CHECK_MSG(os.good(), "framed blob write failure");
}

std::string read_framed_blob(std::istream& is) {
  std::string payload;
  SSMA_CHECK_MSG(try_read_framed_blob(is, &payload),
                 "truncated or CRC-corrupt framed blob");
  return payload;
}

bool try_read_framed_blob(std::istream& is, std::string* out) {
  // Peek-driven: a clean EOF before the first length byte is a normal
  // end of a record stream, anything shorter than a whole valid frame
  // is a torn tail.
  if (is.peek() == EOF) return false;
  std::uint64_t len = 0;
  std::uint32_t want_crc = 0;
  char hdr[12];
  is.read(hdr, sizeof(hdr));
  if (is.gcount() != static_cast<std::streamsize>(sizeof(hdr)))
    return false;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(hdr[i]))
           << (8 * i);
  for (int i = 0; i < 4; ++i)
    want_crc |=
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(hdr[8 + i]))
        << (8 * i);
  // Bound the length by the bytes actually left in the stream before
  // allocating: a corrupt header must fall through as torn, not OOM.
  const std::streampos body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::streampos stream_end = is.tellg();
  if (body_start < 0 || stream_end < 0) return false;
  is.seekg(body_start);
  if (len > static_cast<std::uint64_t>(stream_end - body_start))
    return false;
  std::string payload(static_cast<std::size_t>(len), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(len));
  if (is.gcount() != static_cast<std::streamsize>(len)) return false;
  if (crc32(payload) != want_crc) return false;
  *out = std::move(payload);
  return true;
}

void Amm::save(std::ostream& os) const {
  std::ostringstream body;

  // Config.
  put_u32(body, static_cast<std::uint32_t>(cfg_.ncodebooks));
  put_u32(body, static_cast<std::uint32_t>(cfg_.subvec_dim));
  put_u32(body, static_cast<std::uint32_t>(cfg_.nlevels));
  put_u8(body, cfg_.proto_opt == PrototypeOpt::kRidgeJoint ? 1 : 0);
  put_f64(body, cfg_.ridge_lambda);
  put_u8(body, cfg_.per_column_lut_scale ? 1 : 0);
  put_f64(body, cfg_.act_clip_percentile);
  put_u32(body, static_cast<std::uint32_t>(cfg_.lut_bits));

  put_f32(body, act_scale_);

  // Trees.
  for (const auto& tree : trees_) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      put_u32(body, static_cast<std::uint32_t>(tree.split_dim(l)));
    for (int n = 0; n < HashTree::kNodes; ++n)
      put_u8(body, tree.threshold_flat(n));
  }

  // Prototypes.
  put_matrix(body, protos_.p);

  // LUT bank.
  put_u32(body, static_cast<std::uint32_t>(lut_.nout));
  put_u64(body, lut_.scales.size());
  for (float s : lut_.scales) put_f32(body, s);
  put_u64(body, lut_.q.size());
  for (std::int8_t v : lut_.q) put_u8(body, static_cast<std::uint8_t>(v));
  put_u64(body, lut_.f.size());
  for (float v : lut_.f) put_f32(body, v);

  os.write(kMagic, sizeof(kMagic));
  write_framed_blob(os, body.str());
  SSMA_CHECK_MSG(os.good(), "AMM serialization stream failure");
}

Amm Amm::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  SSMA_CHECK_MSG(is.good() && std::equal(magic, magic + 8, kMagic),
                 "not an SSMA AMM stream");
  std::istringstream body(read_framed_blob(is));

  Amm amm;
  amm.cfg_.ncodebooks = static_cast<int>(get_u32(body));
  amm.cfg_.subvec_dim = static_cast<int>(get_u32(body));
  amm.cfg_.nlevels = static_cast<int>(get_u32(body));
  amm.cfg_.proto_opt = get_u8(body) ? PrototypeOpt::kRidgeJoint
                                    : PrototypeOpt::kBucketMeans;
  amm.cfg_.ridge_lambda = get_f64(body);
  amm.cfg_.per_column_lut_scale = get_u8(body) != 0;
  amm.cfg_.act_clip_percentile = get_f64(body);
  amm.cfg_.lut_bits = static_cast<int>(get_u32(body));
  amm.cfg_.validate();

  amm.act_scale_ = get_f32(body);
  SSMA_CHECK(amm.act_scale_ > 0.0f);

  amm.trees_.resize(amm.cfg_.ncodebooks);
  for (auto& tree : amm.trees_) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      tree.set_split_dim(l, static_cast<int>(get_u32(body)));
    for (int l = 0; l < HashTree::kLevels; ++l)
      for (int n = 0; n < (1 << l); ++n)
        tree.set_threshold(l, n, 0);  // placeholder; set flat below
    // Flat threshold order matches save().
    for (int flat = 0; flat < HashTree::kNodes; ++flat) {
      const int level = flat < 1 ? 0 : (flat < 3 ? 1 : (flat < 7 ? 2 : 3));
      const int node = flat - ((1 << level) - 1);
      tree.set_threshold(level, node, get_u8(body));
    }
  }

  amm.protos_.p = get_matrix(body);
  amm.protos_.cfg = amm.cfg_;

  amm.lut_.cfg = amm.cfg_;
  amm.lut_.nout = static_cast<int>(get_u32(body));
  amm.lut_.scales.resize(get_u64(body));
  for (auto& s : amm.lut_.scales) s = get_f32(body);
  amm.lut_.q.resize(get_u64(body));
  for (auto& v : amm.lut_.q) v = static_cast<std::int8_t>(get_u8(body));
  amm.lut_.f.resize(get_u64(body));
  for (auto& v : amm.lut_.f) v = get_f32(body);

  SSMA_CHECK(amm.lut_.q.size() ==
             static_cast<std::size_t>(amm.cfg_.ncodebooks) *
                 amm.cfg_.nprototypes() * amm.lut_.nout);
  // The wire format stays proto-major / per-tree (layout and SSMAAMM2
  // frame are unchanged by the packed kernels); the accumulation and
  // encoder layouts are derived here, after the CRC-validated payload
  // parsed.
  amm.rebuild_derived();
  return amm;
}

void Amm::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  SSMA_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save(os);
}

Amm Amm::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SSMA_CHECK_MSG(is.is_open(), "cannot open " << path);
  return load(is);
}

std::string Amm::save_string() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

Amm Amm::load_string(const std::string& blob) {
  std::istringstream is(blob);
  return load(is);
}

}  // namespace ssma::maddness
