// Training-time bucket bookkeeping for the MADDNESS hash-tree learner.
// A bucket is a set of training subvectors that share the same path prefix
// in the decision tree; splitting quality is measured by the total
// sum-of-squared-errors (SSE) to the bucket mean, over *all* dims of the
// subvector (Blalock & Guttag's objective).
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace ssma::maddness {

/// Indices into the training matrix plus cached first/second moments.
class Bucket {
 public:
  Bucket() = default;
  Bucket(const Matrix& x, std::vector<std::size_t> rows);

  std::size_t size() const { return rows_.size(); }
  const std::vector<std::size_t>& rows() const { return rows_; }

  /// SSE of the bucket around its own mean, summed over all dims.
  double sse(const Matrix& x) const;

  /// Mean vector of the bucket (zero vector if empty).
  std::vector<double> mean(const Matrix& x) const;

 private:
  std::vector<std::size_t> rows_;
};

struct SplitChoice {
  double threshold = 0.0;   ///< split value: right child iff x[dim] >= threshold
  double loss = 0.0;        ///< SSE(left) + SSE(right)
  std::size_t left_count = 0;
};

/// Finds the threshold on dimension `dim` minimizing the sum of child
/// SSEs (computed over all dims). O(N log N + N*D). A bucket with < 2
/// rows returns its own SSE as the loss with an arbitrary threshold.
SplitChoice best_split_on_dim(const Matrix& x, const Bucket& bucket, int dim);

/// Splits the bucket by (x[dim] >= threshold).
std::pair<Bucket, Bucket> split_bucket(const Matrix& x, const Bucket& bucket,
                                       int dim, double threshold);

}  // namespace ssma::maddness
