// LUT construction: the offline precomputation that replaces runtime
// multiplication. For each codebook c, prototype k and output column o:
//     lut_f[c][k][o] = dot(prototype_{c,k}, W[:, o])
// quantized to INT8 (the paper's LUT precision) with per-output-column
// scales. The hardware loads exactly these int8 words into its 16x8
// 10T-SRAM arrays.
//
// Two in-memory layouts coexist:
//   * LutBank — proto-major, index (c * K + k) * nout + o. This is the
//     construction/serialization layout (it matches the order build_lut
//     fills entries in and the on-disk SSMAAMM2 payload).
//   * LutBankPacked — output-major, codebook-tiled: the K entries of one
//     (codebook, output) table are contiguous, index (c * nout + o) * K + k.
//     This is the accumulation layout: the hot kernel walks output blocks
//     with each 16-entry table resident in one cache line (and, on x86,
//     in one pshufb register). See lut_kernel.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "maddness/config.hpp"
#include "maddness/prototypes.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

struct LutBank {
  Config cfg;
  int nout = 0;
  /// int8 entry for (codebook c, prototype k, output o):
  /// index = (c * cfg.nprototypes() + k) * nout + o.
  std::vector<std::int8_t> q;
  /// Dequantization scale per output column (or a single broadcast scale
  /// when cfg.per_column_lut_scale is false).
  std::vector<float> scales;
  /// Float (unquantized) reference entries, same layout — used to measure
  /// quantization error.
  std::vector<float> f;

  std::int8_t at(int codebook, int proto, int out) const {
    return q[(static_cast<std::size_t>(codebook) * cfg.nprototypes() +
              proto) *
                 nout +
             out];
  }
  float scale(int out) const {
    return scales[cfg.per_column_lut_scale ? out : 0];
  }
  /// The K int8 entries of one (codebook, output) LUT — the contents of
  /// one hardware SRAM array column group.
  std::vector<std::int8_t> table(int codebook, int out) const;
};

/// Output-major, codebook-tiled packing of a LutBank (see file comment).
/// Self-contained (no Config) so kernels and tests can drive it directly.
struct LutBankPacked {
  int ncodebooks = 0;
  int nprotos = 0;  ///< K; kProtosPerCodebook (16) for the hardware shape
  int nout = 0;
  bool per_column_scale = true;
  /// index = (c * nout + o) * nprotos + k.
  std::vector<std::int8_t> q;
  std::vector<float> scales;

  std::size_t table_index(int codebook, int out) const {
    return (static_cast<std::size_t>(codebook) * nout + out) *
           static_cast<std::size_t>(nprotos);
  }
  const std::int8_t* table_ptr(int codebook, int out) const {
    return q.data() + table_index(codebook, out);
  }
  std::int8_t at(int codebook, int proto, int out) const {
    return q[table_index(codebook, out) + static_cast<std::size_t>(proto)];
  }
};

/// Repacks proto-major -> output-major. O(entries), done once per trained
/// or deserialized operator.
LutBankPacked pack_lut(const LutBank& bank);

/// Inverse repack (used by round-trip tests and by tooling that wants the
/// serialization layout back from a packed bank). `cfg` supplies the
/// metadata a packed bank does not carry; its strides must match.
LutBank unpack_lut(const LutBankPacked& packed, const Config& cfg);

/// Builds the LUT bank from prototypes and a weight matrix W (D x nout).
LutBank build_lut(const Prototypes& protos, const Matrix& weights);

/// Max relative INT8 quantization error over all non-zero entries.
double lut_quantization_error(const LutBank& lut);

}  // namespace ssma::maddness
