// LUT construction: the offline precomputation that replaces runtime
// multiplication. For each codebook c, prototype k and output column o:
//     lut_f[c][k][o] = dot(prototype_{c,k}, W[:, o])
// quantized to INT8 (the paper's LUT precision) with per-output-column
// scales. The hardware loads exactly these int8 words into its 16x8
// 10T-SRAM arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "maddness/config.hpp"
#include "maddness/prototypes.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

struct LutBank {
  Config cfg;
  int nout = 0;
  /// int8 entry for (codebook c, prototype k, output o):
  /// index = (c * 16 + k) * nout + o.
  std::vector<std::int8_t> q;
  /// Dequantization scale per output column (or a single broadcast scale
  /// when cfg.per_column_lut_scale is false).
  std::vector<float> scales;
  /// Float (unquantized) reference entries, same layout — used to measure
  /// quantization error.
  std::vector<float> f;

  std::int8_t at(int codebook, int proto, int out) const {
    return q[(static_cast<std::size_t>(codebook) * 16 + proto) * nout + out];
  }
  float scale(int out) const {
    return scales[cfg.per_column_lut_scale ? out : 0];
  }
  /// The 16 int8 entries of one (codebook, output) LUT — the contents of
  /// one hardware SRAM array column group.
  std::vector<std::int8_t> table(int codebook, int out) const;
};

/// Builds the LUT bank from prototypes and a weight matrix W (D x nout).
LutBank build_lut(const Prototypes& protos, const Matrix& weights);

/// Max relative INT8 quantization error over all non-zero entries.
double lut_quantization_error(const LutBank& lut);

}  // namespace ssma::maddness
