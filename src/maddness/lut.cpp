#include "maddness/lut.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::maddness {

std::vector<std::int8_t> LutBank::table(int codebook, int out) const {
  SSMA_CHECK(codebook >= 0 && codebook < cfg.ncodebooks);
  SSMA_CHECK(out >= 0 && out < nout);
  const int nk = cfg.nprototypes();
  std::vector<std::int8_t> t(static_cast<std::size_t>(nk));
  for (int k = 0; k < nk; ++k) t[k] = at(codebook, k, out);
  return t;
}

LutBankPacked pack_lut(const LutBank& bank) {
  const int nk = bank.cfg.nprototypes();
  SSMA_CHECK_MSG(bank.q.size() == static_cast<std::size_t>(
                                      bank.cfg.ncodebooks) *
                                      nk * bank.nout,
                 "LutBank entry count inconsistent with its config");
  LutBankPacked p;
  p.ncodebooks = bank.cfg.ncodebooks;
  p.nprotos = nk;
  p.nout = bank.nout;
  p.per_column_scale = bank.cfg.per_column_lut_scale;
  p.scales = bank.scales;
  p.q.resize(bank.q.size());
  for (int c = 0; c < p.ncodebooks; ++c)
    for (int k = 0; k < nk; ++k) {
      const std::int8_t* src =
          bank.q.data() +
          (static_cast<std::size_t>(c) * nk + k) * bank.nout;
      for (int o = 0; o < p.nout; ++o)
        p.q[p.table_index(c, o) + static_cast<std::size_t>(k)] = src[o];
    }
  return p;
}

LutBank unpack_lut(const LutBankPacked& packed, const Config& cfg) {
  SSMA_CHECK_MSG(cfg.ncodebooks == packed.ncodebooks &&
                     cfg.nprototypes() == packed.nprotos &&
                     cfg.per_column_lut_scale == packed.per_column_scale,
                 "config does not describe this packed bank");
  LutBank bank;
  bank.cfg = cfg;
  bank.nout = packed.nout;
  bank.scales = packed.scales;
  bank.q.resize(packed.q.size());
  // The float reference entries are not carried by the packed form; an
  // unpacked round trip reconstructs the integer operator only.
  bank.f.clear();
  const int nk = packed.nprotos;
  for (int c = 0; c < packed.ncodebooks; ++c)
    for (int k = 0; k < nk; ++k) {
      std::int8_t* dst =
          bank.q.data() +
          (static_cast<std::size_t>(c) * nk + k) * bank.nout;
      for (int o = 0; o < packed.nout; ++o)
        dst[o] = packed.q[packed.table_index(c, o) +
                          static_cast<std::size_t>(k)];
    }
  return bank;
}

LutBank build_lut(const Prototypes& protos, const Matrix& weights) {
  const Config& cfg = protos.cfg;
  cfg.validate();
  SSMA_CHECK_MSG(weights.rows() == static_cast<std::size_t>(cfg.total_dims()),
                 "weight rows " << weights.rows() << " != total dims "
                                << cfg.total_dims());
  const int k = cfg.nprototypes();
  LutBank lut;
  lut.cfg = cfg;
  lut.nout = static_cast<int>(weights.cols());
  const std::size_t entries =
      static_cast<std::size_t>(cfg.ncodebooks) * k * lut.nout;
  lut.f.resize(entries, 0.0f);
  lut.q.resize(entries, 0);

  // Float LUT: dot(prototype, weight column). Prototypes may have support
  // over the full D (ridge mode); dot over all dims handles both modes.
  for (int c = 0; c < cfg.ncodebooks; ++c)
    for (int p = 0; p < k; ++p) {
      const float* proto = protos.p.row(static_cast<std::size_t>(c) * k + p);
      for (int o = 0; o < lut.nout; ++o) {
        double acc = 0.0;
        for (std::size_t d = 0; d < weights.rows(); ++d)
          acc += static_cast<double>(proto[d]) * weights(d, o);
        lut.f[(static_cast<std::size_t>(c) * k + p) * lut.nout + o] =
            static_cast<float>(acc);
      }
    }

  // INT quantization at the configured precision (paper: INT8). The
  // 16-bit accumulator sums M entries per output, so the scale is shared
  // across codebooks for a given output column.
  const long long qmax = (1LL << (cfg.lut_bits - 1)) - 1;
  const int nscales = cfg.per_column_lut_scale ? lut.nout : 1;
  lut.scales.assign(nscales, 1.0f);
  for (int s = 0; s < nscales; ++s) {
    float maxabs = 0.0f;
    for (int c = 0; c < cfg.ncodebooks; ++c)
      for (int p = 0; p < k; ++p) {
        const int o_lo = cfg.per_column_lut_scale ? s : 0;
        const int o_hi = cfg.per_column_lut_scale ? s + 1 : lut.nout;
        for (int o = o_lo; o < o_hi; ++o)
          maxabs = std::max(
              maxabs,
              std::abs(lut.f[(static_cast<std::size_t>(c) * k + p) * lut.nout +
                             o]));
      }
    lut.scales[s] =
        maxabs > 0.0f ? maxabs / static_cast<float>(qmax) : 1.0f;
  }

  for (int c = 0; c < cfg.ncodebooks; ++c)
    for (int p = 0; p < k; ++p)
      for (int o = 0; o < lut.nout; ++o) {
        const std::size_t i =
            (static_cast<std::size_t>(c) * k + p) * lut.nout + o;
        const float s = lut.scale(o);
        const long long v = std::clamp<long long>(
            round_half_away(static_cast<double>(lut.f[i]) / s), -qmax, qmax);
        lut.q[i] = static_cast<std::int8_t>(v);
      }
  return lut;
}

double lut_quantization_error(const LutBank& lut) {
  double worst = 0.0;
  for (std::size_t i = 0; i < lut.q.size(); ++i) {
    const int o = static_cast<int>(i % static_cast<std::size_t>(lut.nout));
    const double recon = static_cast<double>(lut.q[i]) * lut.scale(o);
    const double ref = lut.f[i];
    if (std::abs(ref) < 1e-9) continue;
    worst = std::max(worst, std::abs(recon - ref) / std::abs(ref));
  }
  return worst;
}

}  // namespace ssma::maddness
