#include "maddness/lut_kernel.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(SSMA_TRACE_ENABLED)
#include <chrono>

#include "telemetry/kernel_profile.hpp"
#endif

#include "ppa/tech_constants.hpp"
#include "util/check.hpp"

namespace ssma::maddness {

namespace {

KernelTier parse_tier_env(const char* s, KernelTier fallback) {
  if (!s) return fallback;
  if (std::strcmp(s, "scalar") == 0) return KernelTier::kScalar;
  if (std::strcmp(s, "ssse3") == 0) return KernelTier::kSsse3;
  if (std::strcmp(s, "avx2") == 0) return KernelTier::kAvx2;
  return fallback;
}

inline std::int16_t saturate16(std::int32_t v) {
  return static_cast<std::int16_t>(std::clamp<std::int32_t>(v, -32768, 32767));
}

}  // namespace

namespace detail {

bool cpu_supports_tier(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kSsse3:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case KernelTier::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

KernelTier clamp_tier_by_env(KernelTier best) {
  const KernelTier want = parse_tier_env(std::getenv("SSMA_KERNEL"), best);
  return static_cast<int>(want) < static_cast<int>(best) ? want : best;
}

}  // namespace detail

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSsse3:
      return "ssse3";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool kernel_tier_available(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kSsse3:
      return detail::ssse3_compiled_in() && detail::cpu_supports_tier(tier);
    case KernelTier::kAvx2:
      return detail::avx2_compiled_in() && detail::cpu_supports_tier(tier);
  }
  return false;
}

KernelTier best_kernel_tier() {
  if (kernel_tier_available(KernelTier::kAvx2)) return KernelTier::kAvx2;
  if (kernel_tier_available(KernelTier::kSsse3)) return KernelTier::kSsse3;
  return KernelTier::kScalar;
}

KernelTier select_kernel_tier() {
  static const KernelTier tier = detail::clamp_tier_by_env(best_kernel_tier());
  return tier;
}

EncodedBatch make_encoded_batch(const std::vector<std::uint8_t>& row_major,
                                std::size_t rows, int ncodebooks) {
  SSMA_CHECK(row_major.size() ==
             rows * static_cast<std::size_t>(ncodebooks));
  EncodedBatch enc;
  enc.rows = rows;
  enc.ncodebooks = ncodebooks;
  enc.codes.resize(row_major.size());
  for (std::size_t n = 0; n < rows; ++n)
    for (int c = 0; c < ncodebooks; ++c)
      enc.codes[static_cast<std::size_t>(c) * rows + n] =
          row_major[n * static_cast<std::size_t>(ncodebooks) + c];
  return enc;
}

std::vector<std::int16_t> apply_lut_reference(
    const LutBank& lut, const std::vector<std::uint8_t>& row_major_codes,
    std::size_t rows) {
  const int nout = lut.nout;
  const int nk = lut.cfg.nprototypes();
  const int ncb = lut.cfg.ncodebooks;
  SSMA_CHECK(row_major_codes.size() ==
             rows * static_cast<std::size_t>(ncb));
  std::vector<std::int16_t> out(rows * static_cast<std::size_t>(nout), 0);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(nout));
  for (std::size_t n = 0; n < rows; ++n) {
    std::fill(acc.begin(), acc.end(), 0);
    for (int c = 0; c < ncb; ++c) {
      const int leaf = row_major_codes[n * static_cast<std::size_t>(ncb) + c];
      SSMA_CHECK_MSG(leaf < nk, "leaf code out of prototype range");
      const std::int8_t* lrow =
          lut.q.data() + (static_cast<std::size_t>(c) * nk + leaf) *
                             static_cast<std::size_t>(nout);
      for (int o = 0; o < nout; ++o) acc[o] += lrow[o];
    }
    std::int16_t* orow = out.data() + n * static_cast<std::size_t>(nout);
    for (int o = 0; o < nout; ++o) orow[o] = saturate16(acc[o]);
  }
  return out;
}

namespace detail {

namespace {

// Blocked scalar kernel. Tile shape: kRowBlock rows x kOutBlock outputs.
// Within a tile the working set is tiny — kRowBlock codes per codebook,
// kOutBlock contiguous 16-byte tables, and a kRowBlock x kOutBlock int32
// accumulator patch — so every LUT byte is read from L1. The sink decides
// what a finished accumulator row becomes: an int16 store (classic
// accumulate) or the fused dequantize -> ReLU -> requantize handoff to
// the next stage's uint8 activations — either way straight from the
// L1-hot tile.
template <class Sink>
void scalar_rows_impl(const LutBankPacked& lut, const EncodedBatch& enc,
                      std::size_t row_lo, Sink sink) {
  constexpr std::size_t kRowBlock = 32;
  constexpr int kOutBlock = 16;
  const int nout = lut.nout;
  const int nk = lut.nprotos;
  const std::size_t rows = enc.rows;
  std::int32_t acc[kRowBlock * kOutBlock];
  for (std::size_t n0 = row_lo; n0 < rows; n0 += kRowBlock) {
    const std::size_t nb = std::min(kRowBlock, rows - n0);
    for (int o0 = 0; o0 < nout; o0 += kOutBlock) {
      const int ob = std::min(kOutBlock, nout - o0);
      std::fill(acc, acc + nb * static_cast<std::size_t>(ob), 0);
      for (int c = 0; c < lut.ncodebooks; ++c) {
        const std::uint8_t* codes = enc.codebook(c) + n0;
        const std::int8_t* tables = lut.table_ptr(c, o0);
        for (std::size_t i = 0; i < nb; ++i) {
          const std::int8_t* entry = tables + codes[i];
          std::int32_t* arow = acc + i * static_cast<std::size_t>(ob);
          for (int j = 0; j < ob; ++j)
            arow[j] += entry[static_cast<std::size_t>(j) * nk];
        }
      }
      for (std::size_t i = 0; i < nb; ++i)
        sink.row32(n0 + i, o0, ob,
                   acc + i * static_cast<std::size_t>(ob));
    }
  }
}

struct StoreRowSink {
  std::int16_t* out;
  std::size_t nout;
  void row32(std::size_t r, int o0, int ob, const std::int32_t* a) const {
    std::int16_t* orow = out + r * nout + static_cast<std::size_t>(o0);
    for (int j = 0; j < ob; ++j) orow[j] = saturate_acc16(a[j]);
  }
};

struct FusedRowSink {
  const LutBankPacked* lut;
  std::uint8_t* dst;
  float next_scale;
  std::size_t nout;
  void row32(std::size_t r, int o0, int ob, const std::int32_t* a) const {
    std::uint8_t* drow = dst + r * nout + static_cast<std::size_t>(o0);
    for (int j = 0; j < ob; ++j)
      drow[j] = fused_requantize(saturate_acc16(a[j]),
                                 packed_scale(*lut, o0 + j), next_scale);
  }
};

}  // namespace

void apply_packed_scalar_rows(const LutBankPacked& lut,
                              const EncodedBatch& enc, std::size_t row_lo,
                              std::int16_t* out) {
  scalar_rows_impl(lut, enc, row_lo,
                   StoreRowSink{out, static_cast<std::size_t>(lut.nout)});
}

void apply_packed_scalar(const LutBankPacked& lut, const EncodedBatch& enc,
                         std::int16_t* out) {
  apply_packed_scalar_rows(lut, enc, 0, out);
}

void apply_fused_scalar_rows(const LutBankPacked& lut,
                             const EncodedBatch& enc,
                             const FusedEpilogue& ep, std::size_t row_lo,
                             std::uint8_t* dst) {
  scalar_rows_impl(lut, enc, row_lo,
                   FusedRowSink{&lut, dst, ep.next_scale,
                                static_cast<std::size_t>(lut.nout)});
}

void apply_fused_scalar(const LutBankPacked& lut, const EncodedBatch& enc,
                        const FusedEpilogue& ep, std::uint8_t* dst) {
  apply_fused_scalar_rows(lut, enc, ep, 0, dst);
}

}  // namespace detail

void apply_lut_packed(const LutBankPacked& lut, const EncodedBatch& enc,
                      KernelTier tier, std::vector<std::int16_t>& out) {
  SSMA_CHECK(enc.ncodebooks == lut.ncodebooks);
  SSMA_CHECK(enc.codes.size() ==
             enc.rows * static_cast<std::size_t>(enc.ncodebooks));
  SSMA_CHECK(lut.q.size() == static_cast<std::size_t>(lut.ncodebooks) *
                                 lut.nout * lut.nprotos);
  out.assign(enc.rows * static_cast<std::size_t>(lut.nout), 0);
  if (enc.rows == 0 || lut.nout == 0) return;
  while (!kernel_tier_available(tier))
    tier = static_cast<KernelTier>(static_cast<int>(tier) - 1);
  // pshufb indexes a 16-byte register: banks with a non-hardware K take
  // the scalar path (which handles any K, with codes range-checked by the
  // encoder that produced them).
  if (lut.nprotos != ppa::kProtosPerCodebook) tier = KernelTier::kScalar;
#if defined(SSMA_TRACE_ENABLED)
  const auto t0 = std::chrono::steady_clock::now();
#endif
  switch (tier) {
    case KernelTier::kAvx2:
      detail::apply_packed_avx2(lut, enc, out.data());
      break;
    case KernelTier::kSsse3:
      detail::apply_packed_ssse3(lut, enc, out.data());
      break;
    case KernelTier::kScalar:
      detail::apply_packed_scalar(lut, enc, out.data());
      break;
  }
#if defined(SSMA_TRACE_ENABLED)
  // One gathered table byte per row x codebook x output column,
  // attributed to the tier that actually ran (post clamp/fallback).
  telemetry::record_lut_dispatch(
      static_cast<int>(tier), enc.rows,
      static_cast<std::uint64_t>(enc.rows) *
          static_cast<std::uint64_t>(enc.ncodebooks) *
          static_cast<std::uint64_t>(lut.nout),
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
#endif
}

void apply_lut_fused(const LutBankPacked& lut, const EncodedBatch& enc,
                     const FusedEpilogue& ep, KernelTier tier,
                     std::uint8_t* dst) {
  SSMA_CHECK(enc.ncodebooks == lut.ncodebooks);
  SSMA_CHECK(enc.codes.size() ==
             enc.rows * static_cast<std::size_t>(enc.ncodebooks));
  SSMA_CHECK(lut.q.size() == static_cast<std::size_t>(lut.ncodebooks) *
                                 lut.nout * lut.nprotos);
  SSMA_CHECK(lut.scales.size() >=
             static_cast<std::size_t>(lut.per_column_scale ? lut.nout : 1));
  SSMA_CHECK_MSG(ep.next_scale > 0.0f,
                 "fused epilogue needs a positive activation scale");
  if (enc.rows == 0 || lut.nout == 0) return;
  while (!kernel_tier_available(tier))
    tier = static_cast<KernelTier>(static_cast<int>(tier) - 1);
  if (lut.nprotos != ppa::kProtosPerCodebook) tier = KernelTier::kScalar;
  // The SIMD fused sinks bound their reciprocal-candidate error by one
  // requantization step only when fl(1/next_scale) carries full float
  // precision, i.e. next_scale is normal. Denormal scales (never produced
  // by training on real data) take the divide-based reference path.
  if (ep.next_scale < std::numeric_limits<float>::min())
    tier = KernelTier::kScalar;
#if defined(SSMA_TRACE_ENABLED)
  const auto t0 = std::chrono::steady_clock::now();
#endif
  switch (tier) {
    case KernelTier::kAvx2:
      detail::apply_fused_avx2(lut, enc, ep, dst);
      break;
    case KernelTier::kSsse3:
      detail::apply_fused_ssse3(lut, enc, ep, dst);
      break;
    case KernelTier::kScalar:
      detail::apply_fused_scalar(lut, enc, ep, dst);
      break;
  }
#if defined(SSMA_TRACE_ENABLED)
  telemetry::record_lut_dispatch(
      static_cast<int>(tier), enc.rows,
      static_cast<std::uint64_t>(enc.rows) *
          static_cast<std::uint64_t>(enc.ncodebooks) *
          static_cast<std::uint64_t>(lut.nout),
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
#endif
}

std::vector<std::int16_t> apply_lut_packed(const LutBankPacked& lut,
                                           const EncodedBatch& enc,
                                           KernelTier tier) {
  std::vector<std::int16_t> out;
  apply_lut_packed(lut, enc, tier, out);
  return out;
}

std::vector<std::int16_t> apply_lut_packed(const LutBankPacked& lut,
                                           const EncodedBatch& enc) {
  return apply_lut_packed(lut, enc, select_kernel_tier());
}

}  // namespace ssma::maddness
