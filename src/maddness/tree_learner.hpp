// MADDNESS hash-tree training (Blalock & Guttag Alg. 1/2 adapted to the
// uint8 activation domain of the accelerator):
//   * one split dimension per tree level, shared by all nodes of the level
//     (chosen greedily to minimize the total post-split SSE);
//   * per-node thresholds chosen optimally by a sorted sweep;
//   * thresholds quantized to uint8 so the learned tree is exactly
//     representable by the hardware's threshold flops.
#pragma once

#include "maddness/bucket.hpp"
#include "maddness/hash_tree.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

struct TreeLearnStats {
  double initial_sse = 0.0;
  double final_sse = 0.0;
  std::array<int, HashTree::kLevels> chosen_dims{};
};

/// Learns the tree for one codebook from training subvectors
/// (rows of `x`, values expected in the quantized [0, 255] domain).
HashTree learn_hash_tree(const Matrix& x, TreeLearnStats* stats = nullptr);

}  // namespace ssma::maddness
