// Checksummed framing for on-disk blobs. A frame is
//
//   [u64 payload length][u32 CRC-32 of payload][payload bytes]
//
// written little-endian. Readers validate the CRC before handing the
// payload back, so torn writes and bit rot surface as a CheckError at
// load time instead of silently corrupt operator state. The AMM
// operator stream, the serving checkpoints, and the request journal all
// persist through this frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ssma::maddness {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). `crc` chains
/// incremental updates; pass 0 to start a fresh checksum.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);
std::uint32_t crc32(const std::string& s);

/// Writes one length+CRC frame around `payload`.
void write_framed_blob(std::ostream& os, const std::string& payload);

/// Reads one frame; throws CheckError on truncation or CRC mismatch.
std::string read_framed_blob(std::istream& is);

/// Torn-tolerant variant: returns false (leaving *out untouched) on a
/// clean EOF at the frame boundary, on a truncated frame, or on a CRC
/// mismatch — the reader treats everything from the first bad frame on
/// as a torn tail. Never throws on corrupt input.
bool try_read_framed_blob(std::istream& is, std::string* out);

}  // namespace ssma::maddness
