// The vectorized batch encoder: the software mirror of the paper's
// parallel DLC tournament (Fig. 4A), built to close the encode/kernel gap
// the packed LUT kernel opened up. Instead of a branchy per-row
// HashTree::encode walk, a batch is encoded in two passes:
//
//   1. gather — one sweep over the activation matrix copies, for every
//      codebook, the 4 split columns the tree compares into a
//      column-major staging tile (optionally fusing the uint8
//      quantization of QuantizedActivations so float inputs make one
//      pass total instead of quantize-then-encode);
//   2. traverse — a branchless tournament per codebook over the tile:
//      idx = 2*idx + (x >= t[idx]) per level, with all 15 node
//      thresholds of a codebook packed into one 16-byte pshufb operand
//      so the SIMD tiers resolve a whole level for 16 (SSSE3) or 32
//      (AVX2) rows in three instructions (threshold gather, unsigned
//      compare via max_epu8+cmpeq, index update).
//
// The flattened SoA EncoderBank (per-level absolute split dims and
// per-codebook padded threshold blocks, each contiguous across
// codebooks) is derived once per trained/loaded operator, like the
// packed LUT bank. HashTree::encode / encode_depths remain the bit-exact
// scalar reference — the circuit simulator's DLC latency model keeps
// using them — and every tier here is tested bit-identical to them.
//
// Dispatch rides the same machinery as the LUT kernel: runtime CPUID
// probing with per-TU -m compilation, clamped by the SSMA_KERNEL
// environment override (scalar | ssse3 | avx2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "maddness/config.hpp"
#include "maddness/hash_tree.hpp"
#include "maddness/lut_kernel.hpp"
#include "maddness/quantize.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

/// Flattened SoA packing of all codebooks' hash trees (see file comment).
struct EncoderBank {
  static constexpr int kLevels = HashTree::kLevels;  // 4
  /// Threshold block stride per codebook: 15 flat nodes + 1 zero pad
  /// byte, so each codebook's block is exactly one pshufb operand.
  static constexpr int kThrStride = 16;

  int ncodebooks = 0;
  int total_dims = 0;  ///< activation row width the dims index into

  /// Absolute split dimension for (level l, codebook c) at
  /// [l * ncodebooks + c]: the tree's per-subspace dim plus the
  /// codebook's column offset, so gather indexes the full row directly.
  std::vector<std::int32_t> split_dims;
  /// Per-codebook thresholds in hardware flat-node order at
  /// [c * kThrStride + flat_node]; byte 15 of each block is zero pad.
  std::vector<std::uint8_t> thresholds;

  /// Windowed-gather metadata: when every codebook's 4 split dims fit
  /// inside one 16-byte window of the activation row (always true for
  /// the hardware's 9-dim subvectors once total_dims >= 16), the SIMD
  /// tiers skip the staging tile entirely — one 16-byte load at
  /// window_off[c] plus one pshufb against pick_masks picks the split
  /// bytes straight out of the row.
  bool windowed = false;
  std::vector<std::int32_t> window_off;  ///< per codebook, into the row
  /// 16 bytes per codebook: bytes 0..3 are the window-relative split
  /// offsets (level order), bytes 4..15 are 0x80 (pshufb zeroing pad).
  std::vector<std::uint8_t> pick_masks;

  int split_dim(int level, int codebook) const {
    return split_dims[static_cast<std::size_t>(level) * ncodebooks +
                      codebook];
  }
  const std::uint8_t* codebook_thresholds(int codebook) const {
    return thresholds.data() +
           static_cast<std::size_t>(codebook) * kThrStride;
  }
  const std::uint8_t* pick_mask(int codebook) const {
    return pick_masks.data() +
           static_cast<std::size_t>(codebook) * kThrStride;
  }
};

/// Flattens trained trees into the packed SoA bank. O(ncodebooks), done
/// once per trained or deserialized operator.
EncoderBank build_encoder_bank(const Config& cfg,
                               const std::vector<HashTree>& trees);

/// Reusable per-caller encode scratch: the column-major staging tile the
/// gather pass fills (kLevels * ncodebooks columns of `rows` bytes).
/// Steady-state encoding of same-shaped batches performs zero
/// allocations once the capacity has been established — serve worker
/// shards own one of these across their whole lifetime.
struct EncodeScratch {
  std::vector<std::uint8_t> stage;
};

/// True when `tier`'s encoder TU is compiled in and the CPU supports it.
bool encoder_tier_available(KernelTier tier);
/// Highest available encoder tier on this build + CPU.
KernelTier best_encoder_tier();
/// best_encoder_tier() clamped down by SSMA_KERNEL when set (same
/// override the LUT kernel honors). Read once and cached.
KernelTier select_encoder_tier();

/// Encodes a quantized batch codebook-major into `out` (resized,
/// capacity-reusing) at `tier` (clamped to what is available). Bit-exact
/// vs HashTree::encode on every tier.
void encode_batch_packed(const EncoderBank& bank,
                         const QuantizedActivations& q, KernelTier tier,
                         EncodeScratch& scratch, EncodedBatch& out);

/// Fused quantize + encode: gathers straight from the float matrix,
/// quantizing only the gathered split columns with exactly the
/// round-half-away / saturate semantics of quantize_activations — one
/// pass over the input instead of quantize-then-encode, bit-identical
/// codes.
void encode_batch_packed(const EncoderBank& bank, const Matrix& x,
                         float scale, KernelTier tier,
                         EncodeScratch& scratch, EncodedBatch& out);

/// Convenience allocating form at the runtime-selected tier.
EncodedBatch encode_batch_packed(const EncoderBank& bank,
                                 const QuantizedActivations& q);

namespace detail {

// Per-tier traversal entry points over one codebook's staging columns
// (kLevels columns of `rows` bytes at `stride` apart, starting at
// `stage`). `thr` is the codebook's padded 16-byte threshold block;
// codes[0, rows) receive the leaf indices. The SIMD TUs compile with
// their -m flags when available; otherwise the *_compiled_in() probes
// return false and the dispatcher never calls them.
void encode_codebook_scalar(const std::uint8_t* stage, std::size_t stride,
                            std::size_t row_lo, std::size_t rows,
                            const std::uint8_t* thr, std::uint8_t* codes);
bool encoder_ssse3_compiled_in();
void encode_codebook_ssse3(const std::uint8_t* stage, std::size_t stride,
                           std::size_t rows, const std::uint8_t* thr,
                           std::uint8_t* codes);
bool encoder_avx2_compiled_in();
void encode_codebook_avx2(const std::uint8_t* stage, std::size_t stride,
                          std::size_t rows, const std::uint8_t* thr,
                          std::uint8_t* codes);

// Windowed-gather entry points (SIMD tiers only; see EncoderBank): read
// 16-byte windows straight from the activation rows — `src` is the row
// base already offset by the codebook's window_off, `row_stride` the
// activation row width, `pick` the codebook's 16-byte pick mask — and
// run the same branchless tournament with an in-register transpose, no
// staging tile. Bit-identical to the staged path.
void encode_codebook_windowed_scalar(const std::uint8_t* src,
                                     std::size_t row_stride,
                                     std::size_t row_lo, std::size_t rows,
                                     const std::uint8_t* pick,
                                     const std::uint8_t* thr,
                                     std::uint8_t* codes);
void encode_codebook_windowed_ssse3(const std::uint8_t* src,
                                    std::size_t row_stride,
                                    std::size_t rows,
                                    const std::uint8_t* pick,
                                    const std::uint8_t* thr,
                                    std::uint8_t* codes);
void encode_codebook_windowed_avx2(const std::uint8_t* src,
                                   std::size_t row_stride,
                                   std::size_t rows,
                                   const std::uint8_t* pick,
                                   const std::uint8_t* thr,
                                   std::uint8_t* codes);

}  // namespace detail

}  // namespace ssma::maddness
