#include "maddness/prototypes.hpp"

#include "maddness/encoder_kernel.hpp"
#include "util/check.hpp"
#include "util/linalg.hpp"

namespace ssma::maddness {

std::vector<std::uint8_t> encode_all(const Config& cfg,
                                     const std::vector<HashTree>& trees,
                                     const QuantizedActivations& q) {
  cfg.validate();
  SSMA_CHECK(static_cast<int>(trees.size()) == cfg.ncodebooks);
  SSMA_CHECK(q.cols == static_cast<std::size_t>(cfg.total_dims()));
  std::vector<std::uint8_t> codes(q.rows * cfg.ncodebooks);
  for (std::size_t n = 0; n < q.rows; ++n) {
    const std::uint8_t* row = q.row(n);
    for (int c = 0; c < cfg.ncodebooks; ++c) {
      codes[n * cfg.ncodebooks + c] = static_cast<std::uint8_t>(
          trees[c].encode(row + static_cast<std::size_t>(c) * cfg.subvec_dim));
    }
  }
  return codes;
}

std::vector<std::uint8_t> encode_all_codebook_major(
    const Config& cfg, const std::vector<HashTree>& trees,
    const QuantizedActivations& q) {
  cfg.validate();
  SSMA_CHECK(static_cast<int>(trees.size()) == cfg.ncodebooks);
  SSMA_CHECK(q.cols == static_cast<std::size_t>(cfg.total_dims()));
  SSMA_CHECK_MSG(cfg.nprototypes() == HashTree::kLeaves,
                 "tree-based encoding produces " << HashTree::kLeaves
                                                 << " leaves; config wants "
                                                 << cfg.nprototypes());
  const int ncb = cfg.ncodebooks;
  const std::size_t rows = q.rows;
  // Flatten each tree's walk: absolute split dims (so the inner loop
  // indexes the full activation row directly) plus its threshold array.
  struct Walk {
    int dim[HashTree::kLevels];
    const std::uint8_t* thr;
  };
  std::vector<Walk> walks(static_cast<std::size_t>(ncb));
  for (int c = 0; c < ncb; ++c) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      walks[c].dim[l] = c * cfg.subvec_dim + trees[c].split_dims()[l];
    walks[c].thr = trees[c].thresholds_flat().data();
  }
  std::vector<std::uint8_t> codes(rows * static_cast<std::size_t>(ncb));
  // Row-outer order streams the activation matrix once; the M output
  // cache lines being appended to stay resident across rows.
  for (std::size_t n = 0; n < rows; ++n) {
    const std::uint8_t* row = q.row(n);
    for (int c = 0; c < ncb; ++c) {
      const Walk& w = walks[c];
      int node = 0;
      for (int l = 0; l < HashTree::kLevels; ++l) {
        const std::uint8_t x = row[w.dim[l]];
        const std::uint8_t t = w.thr[(1 << l) - 1 + node];
        node = 2 * node + (x >= t ? 1 : 0);
      }
      codes[static_cast<std::size_t>(c) * rows + n] =
          static_cast<std::uint8_t>(node);
    }
  }
  return codes;
}

Prototypes learn_prototypes(const Config& cfg,
                            const std::vector<HashTree>& trees,
                            const QuantizedActivations& train) {
  cfg.validate();
  const int k = cfg.nprototypes();
  // Training encodes through the same vectorized batch encoder the hot
  // path runs (bit-exact vs the per-row tree walk), codebook-major.
  const EncodedBatch enc =
      encode_batch_packed(build_encoder_bank(cfg, trees), train);
  const auto leaf_of = [&](std::size_t i, int c) {
    return static_cast<int>(enc.codebook(c)[i]);
  };
  const std::size_t n = train.rows;
  const std::size_t d = train.cols;

  Prototypes protos;
  protos.cfg = cfg;
  protos.p = Matrix(static_cast<std::size_t>(cfg.ncodebooks) * k, d);

  if (cfg.proto_opt == PrototypeOpt::kBucketMeans) {
    for (int c = 0; c < cfg.ncodebooks; ++c) {
      std::vector<double> sums(static_cast<std::size_t>(k) * cfg.subvec_dim,
                               0.0);
      std::vector<std::size_t> counts(k, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const int leaf = leaf_of(i, c);
        ++counts[leaf];
        const std::uint8_t* sub =
            train.row(i) + static_cast<std::size_t>(c) * cfg.subvec_dim;
        for (int j = 0; j < cfg.subvec_dim; ++j)
          sums[static_cast<std::size_t>(leaf) * cfg.subvec_dim + j] +=
              static_cast<double>(sub[j]) * train.scale;
      }
      for (int leaf = 0; leaf < k; ++leaf) {
        if (counts[leaf] == 0) continue;  // empty leaf -> zero prototype
        for (int j = 0; j < cfg.subvec_dim; ++j) {
          protos.p(static_cast<std::size_t>(c) * k + leaf,
                   static_cast<std::size_t>(c) * cfg.subvec_dim + j) =
              static_cast<float>(
                  sums[static_cast<std::size_t>(leaf) * cfg.subvec_dim + j] /
                  static_cast<double>(counts[leaf]));
        }
      }
    }
    return protos;
  }

  // Joint ridge refit: G (n x M*16) one-hot; targets are the dequantized
  // activations.
  Matrix g(n, static_cast<std::size_t>(cfg.ncodebooks) * k);
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < cfg.ncodebooks; ++c)
      g(i, static_cast<std::size_t>(c) * k + leaf_of(i, c)) = 1.0f;
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      x(i, j) = static_cast<float>(train.at(i, j)) * train.scale;
  protos.p = ridge_regression(g, x, cfg.ridge_lambda);
  return protos;
}

}  // namespace ssma::maddness
