// AVX2 tier of the packed LUT kernel. Compiled with -mavx2 when the
// toolchain supports it (CMake probes the flag); the __AVX2__ guard keeps
// this TU a stub otherwise, and the runtime dispatcher additionally
// checks CPUID before calling in — so a binary built here still runs on
// machines without AVX2.
//
// Shape: one (codebook, output) table is 16 int8 entries — exactly one
// 128-bit pshufb operand. Broadcasting it to both lanes of a YMM register
// turns 32 rows of leaf codes into 32 gathered entries per shuffle. The
// entries sign-extend via unpack + arithmetic shift and accumulate in
// int16, which is wrap-free within a <=256-codebook chunk
// (256 * 127 < 2^15). Banks with <= 256 codebooks therefore store their
// int16 partials directly (the int32 total provably fits int16, so the
// final clamp is the identity); larger banks widen each chunk into int32
// and saturate exactly once at the end — either way bit-identical to the
// reference int32 accumulation.
//
// unpack interleaves within each 128-bit lane, so accumulator lanes hold
// rows permuted as {0..7,16..23} / {8..15,24..31}; the permutation is
// undone for free inside the (already scalar) store loops.
#include <algorithm>

#include "maddness/lut_kernel.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__AVX2__)

namespace {

constexpr std::size_t kRowBlock = 32;
constexpr int kOutBlock = 4;
constexpr int kChunk = 256;

/// Row index held by lane i of accumulator half h (see file comment).
inline int lane_row(int h, int i) {
  return (i & 7) + 8 * (2 * (i >> 3) + h);
}

/// Accumulates codebooks [c0, c_end) of one (32-row, ob-output) tile
/// into int16 accumulators. Codebooks are processed in pairs: the two
/// gathered byte vectors interleave (unpack) and one pmaddubsw against
/// an all-ones unsigned operand sums each (A_i, B_i) byte pair straight
/// into the int16 lanes — two codebooks per sign-extension, vs the
/// two-unpack + two-shift chain a lone codebook needs. The pairwise
/// int16 product sum is at most |A| + |B| <= 256, so pmaddubsw's
/// saturation can never engage and the result is exact.
inline void accumulate_chunk(const LutBankPacked& lut,
                             const EncodedBatch& enc, std::size_t n0,
                             int o0, int ob, int c0, int c_end,
                             __m256i acc16[][2]) {
  const __m256i ones = _mm256_set1_epi8(1);
  int c = c0;
  for (; c + 1 < c_end; c += 2) {
    const __m256i codes_a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c) + n0));
    const __m256i codes_b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c + 1) + n0));
    for (int j = 0; j < ob; ++j) {
      const __m256i table_a = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j))));
      const __m256i table_b = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c + 1, o0 + j))));
      const __m256i va = _mm256_shuffle_epi8(table_a, codes_a);
      const __m256i vb = _mm256_shuffle_epi8(table_b, codes_b);
      acc16[j][0] = _mm256_add_epi16(
          acc16[j][0],
          _mm256_maddubs_epi16(ones, _mm256_unpacklo_epi8(va, vb)));
      acc16[j][1] = _mm256_add_epi16(
          acc16[j][1],
          _mm256_maddubs_epi16(ones, _mm256_unpackhi_epi8(va, vb)));
    }
  }
  if (c < c_end) {
    // Trailing unpaired codebook: classic unpack + arithmetic-shift
    // sign extension.
    const __m256i zero = _mm256_setzero_si256();
    const __m256i codes = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c) + n0));
    for (int j = 0; j < ob; ++j) {
      const __m256i table = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j))));
      const __m256i v8 = _mm256_shuffle_epi8(table, codes);
      acc16[j][0] = _mm256_add_epi16(
          acc16[j][0],
          _mm256_srai_epi16(_mm256_unpacklo_epi8(zero, v8), 8));
      acc16[j][1] = _mm256_add_epi16(
          acc16[j][1],
          _mm256_srai_epi16(_mm256_unpackhi_epi8(zero, v8), 8));
    }
  }
}

}  // namespace

bool avx2_compiled_in() { return true; }

void apply_packed_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                       std::int16_t* out) {
  const int nout = lut.nout;
  const int ncb = lut.ncodebooks;
  const std::size_t rows = enc.rows;
  const std::size_t full = rows - rows % kRowBlock;
  alignas(32) std::int16_t lanes[kRowBlock];
  for (std::size_t n0 = 0; n0 < full; n0 += kRowBlock) {
    for (int o0 = 0; o0 < nout; o0 += kOutBlock) {
      const int ob = std::min(kOutBlock, nout - o0);
      if (ncb <= kChunk) {
        // Single chunk: int16 partials are the exact int32 totals.
        __m256i acc16[kOutBlock][2];
        for (int j = 0; j < ob; ++j)
          acc16[j][0] = acc16[j][1] = _mm256_setzero_si256();
        accumulate_chunk(lut, enc, n0, o0, ob, 0, ncb, acc16);
        if (ob == kOutBlock) {
          // Full 4-output block: transpose the accumulators in-register
          // to per-row (o0..o0+3) quads and store each as one 8-byte
          // write — the scalar de-permute loop this replaces was a
          // material fraction of the kernel at large nout.
          for (int h = 0; h < 2; ++h) {
            // acc16[j][h] int16 lanes hold rows 8h..8h+7 (lane 0) and
            // 8h+16..8h+23 (lane 1); two unpack stages give, per
            // register, two consecutive rows' output quads per lane.
            const std::size_t base = n0 + 8 * static_cast<std::size_t>(h);
            const __m256i t01l =
                _mm256_unpacklo_epi16(acc16[0][h], acc16[1][h]);
            const __m256i t01h =
                _mm256_unpackhi_epi16(acc16[0][h], acc16[1][h]);
            const __m256i t23l =
                _mm256_unpacklo_epi16(acc16[2][h], acc16[3][h]);
            const __m256i t23h =
                _mm256_unpackhi_epi16(acc16[2][h], acc16[3][h]);
            const __m256i quads[4] = {_mm256_unpacklo_epi32(t01l, t23l),
                                      _mm256_unpackhi_epi32(t01l, t23l),
                                      _mm256_unpacklo_epi32(t01h, t23h),
                                      _mm256_unpackhi_epi32(t01h, t23h)};
            for (int g = 0; g < 4; ++g) {
              const std::size_t r = base + 2 * static_cast<std::size_t>(g);
              const __m128i lo = _mm256_castsi256_si128(quads[g]);
              const __m128i hi = _mm256_extracti128_si256(quads[g], 1);
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + r * static_cast<std::size_t>(nout) + o0),
                  lo);
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + (r + 1) * static_cast<std::size_t>(nout) + o0),
                  _mm_unpackhi_epi64(lo, lo));
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + (r + 16) * static_cast<std::size_t>(nout) + o0),
                  hi);
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + (r + 17) * static_cast<std::size_t>(nout) + o0),
                  _mm_unpackhi_epi64(hi, hi));
            }
          }
        } else {
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                                 acc16[j][h]);
              for (int i = 0; i < 16; ++i)
                out[(n0 + lane_row(h, i)) * static_cast<std::size_t>(nout) +
                    o0 + j] = lanes[i];
            }
        }
      } else {
        std::int32_t acc32[kOutBlock][kRowBlock] = {};
        for (int c0 = 0; c0 < ncb; c0 += kChunk) {
          __m256i acc16[kOutBlock][2];
          for (int j = 0; j < ob; ++j)
            acc16[j][0] = acc16[j][1] = _mm256_setzero_si256();
          accumulate_chunk(lut, enc, n0, o0, ob, c0,
                           std::min(ncb, c0 + kChunk), acc16);
          // Widen lane-for-lane (vectorizable); the row permutation is
          // resolved by the final store below.
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                                 acc16[j][h]);
              std::int32_t* dst = acc32[j] + h * 16;
              for (int i = 0; i < 16; ++i) dst[i] += lanes[i];
            }
        }
        for (int j = 0; j < ob; ++j)
          for (int h = 0; h < 2; ++h)
            for (int i = 0; i < 16; ++i)
              out[(n0 + lane_row(h, i)) * static_cast<std::size_t>(nout) +
                  o0 + j] =
                  static_cast<std::int16_t>(std::clamp<std::int32_t>(
                      acc32[j][h * 16 + i], -32768, 32767));
      }
    }
  }
  apply_packed_scalar_rows(lut, enc, full, out);
}

#else  // !defined(__AVX2__)

bool avx2_compiled_in() { return false; }

void apply_packed_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                       std::int16_t* out) {
  // Unreachable: the dispatcher never selects a tier whose
  // *_compiled_in() probe is false. Fall back defensively anyway.
  apply_packed_scalar(lut, enc, out);
}

#endif

}  // namespace ssma::maddness::detail
