// AVX2 tier of the packed LUT kernel. Compiled with -mavx2 when the
// toolchain supports it (CMake probes the flag); the __AVX2__ guard keeps
// this TU a stub otherwise, and the runtime dispatcher additionally
// checks CPUID before calling in — so a binary built here still runs on
// machines without AVX2.
//
// Shape: one (codebook, output) table is 16 int8 entries — exactly one
// 128-bit pshufb operand. Broadcasting it to both lanes of a YMM register
// turns 32 rows of leaf codes into 32 gathered entries per shuffle. The
// entries sign-extend via unpack + arithmetic shift and accumulate in
// int16, which is wrap-free within a <=256-codebook chunk
// (256 * 127 < 2^15). Banks with <= 256 codebooks therefore store their
// int16 partials directly (the int32 total provably fits int16, so the
// final clamp is the identity); larger banks widen each chunk into int32
// and saturate exactly once at the end — either way bit-identical to the
// reference int32 accumulation.
//
// unpack interleaves within each 128-bit lane, so accumulator lanes hold
// rows permuted as {0..7,16..23} / {8..15,24..31}; the permutation is
// undone for free inside the (already scalar) sink dispatch.
//
// The tile walk is templated over a sink: the store sink writes int16
// accumulators (classic accumulate), the fused sink runs the stage
// handoff (dequantize -> ReLU -> requantize) on each finished tile and
// writes the next stage's uint8 activations — the accumulators never
// reach memory.
#include <algorithm>
#include <cstring>

#include "maddness/lut_kernel.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__AVX2__)

namespace {

constexpr std::size_t kRowBlock = 32;
constexpr int kOutBlock = 4;
constexpr int kChunk = 256;

/// Row index held by lane i of accumulator half h (see file comment).
inline int lane_row(int h, int i) {
  return (i & 7) + 8 * (2 * (i >> 3) + h);
}

/// Classic accumulate: int16 quads / elements land in the int16 output.
struct StoreSink {
  std::int16_t* out;
  std::size_t nout;
  /// `q` holds outputs o0..o0+3 of row `r` in its low 64 bits and of
  /// row `r+1` in its high 64 bits.
  void quad2(std::size_t r, int o0, __m128i q) const {
    std::int16_t* d = out + r * nout + static_cast<std::size_t>(o0);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(d), q);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(d + nout),
                     _mm_unpackhi_epi64(q, q));
  }
  void one16(std::size_t r, int o, std::int16_t v) const {
    out[r * nout + static_cast<std::size_t>(o)] = v;
  }
  void one32(std::size_t r, int o, std::int32_t v) const {
    one16(r, o, saturate_acc16(v));
  }
};

/// Fused stage handoff: each finished int16 quad dequantizes, rectifies
/// and requantizes in-register into the next stage's uint8 activation
/// row — bit-identical to fused_requantize, without its double divide.
///
/// The reference computes r = clamp(round_half_away(fl64(y / s)), 0, 255)
/// with y = float(acc) * col_scale (float) and s = next_scale (float).
/// A gap lemma makes the divide avoidable: fl64(y/s) equals a half-
/// integer m/2 (|m| <= 513, the only rounding boundaries the clamp can
/// see) iff y/s equals it EXACTLY. Writing y = a*2^alpha, s = b*2^beta
/// (a, b 24-bit significands), y/s - m/2 has a common denominator
/// 2*b*2^beta and an integer numerator on the 2^min(alpha+1,beta) grid,
/// so when nonzero |y/s - m/2| >= (m/2)*2^-49 — three orders beyond
/// double's half-ulp (m/2)*2^-53. Hence rounding fl64(y/s) half-away
/// is decided by EXACT real comparisons: r = k iff (k-0.5)*s <= y <
/// (k+0.5)*s (for y >= 0; y < 0 clamps to 0 either way). Both bounds
/// are exact doubles — (2k+-1)/2 needs 10 significand bits, s needs 24,
/// their product 34 < 53.
///
/// So: one reciprocal multiply gives a candidate k within +-1 of the
/// answer (|y*fl(1/s) - y/s| <= |y/s| * 2^-23 * 1.01 << 0.5 when 1/s is
/// a normal float — the dispatcher downgrades denormal scales to the
/// scalar tier), and one exact-boundary correction step lands it.
struct FusedSink {
  const LutBankPacked* lut;
  std::uint8_t* dst;
  float next_scale;
  float inv_next;  ///< fl(1/next_scale); next_scale is a normal float
  std::size_t nout;

  /// Exact-boundary correction: c holds integral candidates in
  /// [0, 255], y the dequantized values, sd double(next_scale). Moves
  /// each candidate to the true rounding k (one step suffices), giving
  /// values in [-1, 256] — integral, so cvttpd is exact.
  static __m128i fixup(__m256d c, __m256d y, __m256d sd) {
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d hi = _mm256_mul_pd(_mm256_add_pd(c, half), sd);
    const __m256d lo = _mm256_mul_pd(_mm256_sub_pd(c, half), sd);
    c = _mm256_add_pd(
        c, _mm256_and_pd(_mm256_cmp_pd(y, hi, _CMP_GE_OQ), one));
    c = _mm256_sub_pd(
        c, _mm256_and_pd(_mm256_cmp_pd(y, lo, _CMP_LT_OQ), one));
    return _mm256_cvttpd_epi32(c);
  }

  /// Requantizes rows r and r+1 (outputs o0..o0+3 each, packed in q's
  /// two 64-bit halves) in one shot: the column scales, sign extension
  /// and pack chain are shared across the row pair.
  void quad2(std::size_t r, int o0, __m128i q) const {
    const __m128 scales =
        lut->per_column_scale
            ? _mm_loadu_ps(lut->scales.data() + o0)
            : _mm_set1_ps(lut->scales[0]);
    const __m256 y = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(q)),
        _mm256_set_m128(scales, scales));
    // Candidate quotients, clamped into [0, 255]. The clamp absorbs
    // negatives and +-inf overflows (y finite, inv_next finite => no
    // NaN); max-then-min also normalizes -0.0 to +0.0.
    const __m256 qf = _mm256_min_ps(
        _mm256_max_ps(_mm256_mul_ps(y, _mm256_set1_ps(inv_next)),
                      _mm256_setzero_ps()),
        _mm256_set1_ps(255.0f));
    const __m256i c = _mm256_cvtps_epi32(qf);
    const __m256d sd = _mm256_set1_pd(static_cast<double>(next_scale));
    const __m128i r0 =
        fixup(_mm256_cvtepi32_pd(_mm256_castsi256_si128(c)),
              _mm256_cvtps_pd(_mm256_castps256_ps128(y)), sd);
    const __m128i r1 =
        fixup(_mm256_cvtepi32_pd(_mm256_extracti128_si256(c, 1)),
              _mm256_cvtps_pd(_mm256_extractf128_ps(y, 1)), sd);
    const __m128i p16 = _mm_packs_epi32(r0, r1);    // in [-1, 256]: exact
    const __m128i p8 = _mm_packus_epi16(p16, p16);  // the [0, 255] clamp
    std::uint8_t* d = dst + r * nout + static_cast<std::size_t>(o0);
    const int b0 = _mm_cvtsi128_si32(p8);
    const int b1 = _mm_extract_epi32(p8, 1);
    std::memcpy(d, &b0, 4);
    std::memcpy(d + nout, &b1, 4);
  }
  void one16(std::size_t r, int o, std::int16_t v) const {
    dst[r * nout + static_cast<std::size_t>(o)] =
        fused_requantize(v, packed_scale(*lut, o), next_scale);
  }
  void one32(std::size_t r, int o, std::int32_t v) const {
    one16(r, o, saturate_acc16(v));
  }
};

/// Accumulates codebooks [c0, c_end) of one (32-row, ob-output) tile
/// into int16 accumulators. Codebooks are processed in pairs: the two
/// gathered byte vectors interleave (unpack) and one pmaddubsw against
/// an all-ones unsigned operand sums each (A_i, B_i) byte pair straight
/// into the int16 lanes — two codebooks per sign-extension, vs the
/// two-unpack + two-shift chain a lone codebook needs. The pairwise
/// int16 product sum is at most |A| + |B| <= 256, so pmaddubsw's
/// saturation can never engage and the result is exact.
inline void accumulate_chunk(const LutBankPacked& lut,
                             const EncodedBatch& enc, std::size_t n0,
                             int o0, int ob, int c0, int c_end,
                             __m256i acc16[][2]) {
  const __m256i ones = _mm256_set1_epi8(1);
  int c = c0;
  for (; c + 1 < c_end; c += 2) {
    const __m256i codes_a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c) + n0));
    const __m256i codes_b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c + 1) + n0));
    for (int j = 0; j < ob; ++j) {
      const __m256i table_a = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j))));
      const __m256i table_b = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c + 1, o0 + j))));
      const __m256i va = _mm256_shuffle_epi8(table_a, codes_a);
      const __m256i vb = _mm256_shuffle_epi8(table_b, codes_b);
      acc16[j][0] = _mm256_add_epi16(
          acc16[j][0],
          _mm256_maddubs_epi16(ones, _mm256_unpacklo_epi8(va, vb)));
      acc16[j][1] = _mm256_add_epi16(
          acc16[j][1],
          _mm256_maddubs_epi16(ones, _mm256_unpackhi_epi8(va, vb)));
    }
  }
  if (c < c_end) {
    // Trailing unpaired codebook: classic unpack + arithmetic-shift
    // sign extension.
    const __m256i zero = _mm256_setzero_si256();
    const __m256i codes = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(enc.codebook(c) + n0));
    for (int j = 0; j < ob; ++j) {
      const __m256i table = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j))));
      const __m256i v8 = _mm256_shuffle_epi8(table, codes);
      acc16[j][0] = _mm256_add_epi16(
          acc16[j][0],
          _mm256_srai_epi16(_mm256_unpacklo_epi8(zero, v8), 8));
      acc16[j][1] = _mm256_add_epi16(
          acc16[j][1],
          _mm256_srai_epi16(_mm256_unpackhi_epi8(zero, v8), 8));
    }
  }
}

template <class Sink>
void avx2_impl(const LutBankPacked& lut, const EncodedBatch& enc,
               std::size_t full, Sink sink) {
  const int nout = lut.nout;
  const int ncb = lut.ncodebooks;
  alignas(32) std::int16_t lanes[kRowBlock];
  for (std::size_t n0 = 0; n0 < full; n0 += kRowBlock) {
    for (int o0 = 0; o0 < nout; o0 += kOutBlock) {
      const int ob = std::min(kOutBlock, nout - o0);
      if (ncb <= kChunk) {
        // Single chunk: int16 partials are the exact int32 totals.
        __m256i acc16[kOutBlock][2];
        for (int j = 0; j < ob; ++j)
          acc16[j][0] = acc16[j][1] = _mm256_setzero_si256();
        accumulate_chunk(lut, enc, n0, o0, ob, 0, ncb, acc16);
        if (ob == kOutBlock) {
          // Full 4-output block: transpose the accumulators in-register
          // to per-row (o0..o0+3) quads and hand each to the sink as one
          // 64-bit lane — the scalar de-permute loop this replaces was a
          // material fraction of the kernel at large nout.
          for (int h = 0; h < 2; ++h) {
            // acc16[j][h] int16 lanes hold rows 8h..8h+7 (lane 0) and
            // 8h+16..8h+23 (lane 1); two unpack stages give, per
            // register, two consecutive rows' output quads per lane.
            const std::size_t base = n0 + 8 * static_cast<std::size_t>(h);
            const __m256i t01l =
                _mm256_unpacklo_epi16(acc16[0][h], acc16[1][h]);
            const __m256i t01h =
                _mm256_unpackhi_epi16(acc16[0][h], acc16[1][h]);
            const __m256i t23l =
                _mm256_unpacklo_epi16(acc16[2][h], acc16[3][h]);
            const __m256i t23h =
                _mm256_unpackhi_epi16(acc16[2][h], acc16[3][h]);
            const __m256i quads[4] = {_mm256_unpacklo_epi32(t01l, t23l),
                                      _mm256_unpackhi_epi32(t01l, t23l),
                                      _mm256_unpacklo_epi32(t01h, t23h),
                                      _mm256_unpackhi_epi32(t01h, t23h)};
            for (int g = 0; g < 4; ++g) {
              const std::size_t r = base + 2 * static_cast<std::size_t>(g);
              sink.quad2(r, o0, _mm256_castsi256_si128(quads[g]));
              sink.quad2(r + 16, o0,
                         _mm256_extracti128_si256(quads[g], 1));
            }
          }
        } else {
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                                 acc16[j][h]);
              for (int i = 0; i < 16; ++i)
                sink.one16(n0 + static_cast<std::size_t>(lane_row(h, i)),
                           o0 + j, lanes[i]);
            }
        }
      } else {
        std::int32_t acc32[kOutBlock][kRowBlock] = {};
        for (int c0 = 0; c0 < ncb; c0 += kChunk) {
          __m256i acc16[kOutBlock][2];
          for (int j = 0; j < ob; ++j)
            acc16[j][0] = acc16[j][1] = _mm256_setzero_si256();
          accumulate_chunk(lut, enc, n0, o0, ob, c0,
                           std::min(ncb, c0 + kChunk), acc16);
          // Widen lane-for-lane (vectorizable); the row permutation is
          // resolved by the final sink dispatch below.
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                                 acc16[j][h]);
              std::int32_t* dst32 = acc32[j] + h * 16;
              for (int i = 0; i < 16; ++i) dst32[i] += lanes[i];
            }
        }
        for (int j = 0; j < ob; ++j)
          for (int h = 0; h < 2; ++h)
            for (int i = 0; i < 16; ++i)
              sink.one32(n0 + static_cast<std::size_t>(lane_row(h, i)),
                         o0 + j, acc32[j][h * 16 + i]);
      }
    }
  }
}

}  // namespace

bool avx2_compiled_in() { return true; }

void apply_packed_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                       std::int16_t* out) {
  const std::size_t full = enc.rows - enc.rows % kRowBlock;
  avx2_impl(lut, enc, full,
            StoreSink{out, static_cast<std::size_t>(lut.nout)});
  apply_packed_scalar_rows(lut, enc, full, out);
}

void apply_fused_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                      const FusedEpilogue& ep, std::uint8_t* dst) {
  const std::size_t full = enc.rows - enc.rows % kRowBlock;
  avx2_impl(lut, enc, full,
            FusedSink{&lut, dst, ep.next_scale, 1.0f / ep.next_scale,
                      static_cast<std::size_t>(lut.nout)});
  apply_fused_scalar_rows(lut, enc, ep, full, dst);
}

#else  // !defined(__AVX2__)

bool avx2_compiled_in() { return false; }

void apply_packed_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                       std::int16_t* out) {
  // Unreachable: the dispatcher never selects a tier whose
  // *_compiled_in() probe is false. Fall back defensively anyway.
  apply_packed_scalar(lut, enc, out);
}

void apply_fused_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                      const FusedEpilogue& ep, std::uint8_t* dst) {
  apply_fused_scalar(lut, enc, ep, dst);
}

#endif

}  // namespace ssma::maddness::detail
