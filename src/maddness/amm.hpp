// Approximate matrix multiplication, end to end:
//   train:  activations -> hash trees + prototypes + INT8 LUT bank
//   apply:  encode (BDT) -> LUT lookup -> 16-bit accumulate -> dequantize
//
// The int16 accumulation path (`apply_int16`) reproduces the hardware's
// CSA/RCA arithmetic bit-for-bit; the simulator tests assert exact
// equality against it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "maddness/config.hpp"
#include "maddness/encoder_kernel.hpp"
#include "maddness/hash_tree.hpp"
#include "maddness/lut.hpp"
#include "maddness/lut_kernel.hpp"
#include "maddness/prototypes.hpp"
#include "maddness/quantize.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

/// A trained AMM operator for a fixed weight matrix.
class Amm {
 public:
  /// Trains trees + prototypes on `train_activations` (N x D, >= 0) and
  /// builds the LUT bank for `weights` (D x nout).
  static Amm train(const Config& cfg, const Matrix& train_activations,
                   const Matrix& weights);

  const Config& cfg() const { return cfg_; }
  const std::vector<HashTree>& trees() const { return trees_; }
  const LutBank& lut() const { return lut_; }
  /// Output-major repack of lut(), built once at train/load time — the
  /// layout the accumulation kernels run on.
  const LutBankPacked& packed_lut() const { return packed_; }
  /// SoA flattening of trees(), built once at train/load time — the
  /// layout the vectorized batch encoder runs on.
  const EncoderBank& encoder_bank() const { return bank_; }
  const Prototypes& prototypes() const { return protos_; }
  float activation_scale() const { return act_scale_; }

  /// Encodes a (pre-quantized) activation matrix: N x M leaf codes,
  /// row-major. Runs the vectorized encoder and transposes — bit-exact
  /// vs the per-row HashTree::encode reference walk.
  std::vector<std::uint8_t> encode(const QuantizedActivations& q) const;

  /// Encode cache: encodes the batch once into the codebook-major layout
  /// the accumulation kernel consumes. Callers that apply the same batch
  /// more than once (replay, sweeps) reuse it to skip re-encoding.
  EncodedBatch encode_batch(const QuantizedActivations& q) const;
  /// Scratch-reusing form for steady-state callers (serve worker
  /// shards): same codes, zero allocations once `scratch` and `out`
  /// capacities are established.
  void encode_batch(const QuantizedActivations& q, EncodeScratch& scratch,
                    EncodedBatch& out) const;
  /// Fused quantize + encode from float activations: one pass over the
  /// input, bit-identical to quantize_activations + encode_batch.
  void encode_batch(const Matrix& x, EncodeScratch& scratch,
                    EncodedBatch& out) const;

  /// Hardware-exact decode: accumulates the int8 LUT entries selected by
  /// the codes in int32 and saturates once to int16 at the end (the
  /// paper's pipeline-accumulate-then-clamp). Output is N x nout int16
  /// (row-major). Runs the packed, tier-dispatched kernel.
  std::vector<std::int16_t> apply_int16(const QuantizedActivations& q) const;
  std::vector<std::int16_t> apply_int16(const EncodedBatch& enc) const;
  /// Non-allocating form: `out` is resized capacity-reusing, so a
  /// caller that keeps it alive pays zero steady-state allocations.
  void apply_int16(const EncodedBatch& enc,
                   std::vector<std::int16_t>& out) const;

  /// Reference decode: naive triple loop over the proto-major layout,
  /// same accumulate-then-clamp semantics. The packed kernels are tested
  /// bit-exact against this.
  std::vector<std::int16_t> apply_int16_reference(
      const QuantizedActivations& q) const;

  /// Full approximate product in float: quantize -> encode -> decode ->
  /// dequantize. Shapes: x is N x D, result N x nout.
  Matrix apply(const Matrix& x) const;

  /// Dequantizes an int16 accumulator matrix produced by apply_int16 (or
  /// by the circuit simulator).
  Matrix dequantize_result(const std::vector<std::int16_t>& acc,
                           std::size_t rows) const;

  /// Serialization: a trained operator (trees, prototypes, LUTs, scales)
  /// round-trips through a portable little-endian binary stream — what a
  /// deployment flow ships to the accelerator's write driver.
  void save(std::ostream& os) const;
  static Amm load(std::istream& is);
  void save_file(const std::string& path) const;
  static Amm load_file(const std::string& path);
  /// In-memory blob forms of save/load — what the model registry,
  /// checkpoints and worker shards pass around.
  std::string save_string() const;
  static Amm load_string(const std::string& blob);

 private:
  /// Rebuilds the derived hot-path state (packed LUT bank + flattened
  /// encoder bank) from lut_/trees_ after training or load.
  void rebuild_derived() {
    packed_ = pack_lut(lut_);
    bank_ = build_encoder_bank(cfg_, trees_);
  }

  Config cfg_;
  std::vector<HashTree> trees_;
  Prototypes protos_;
  LutBank lut_;
  LutBankPacked packed_;
  EncoderBank bank_;
  float act_scale_ = 1.0f;
};

/// Relative Frobenius error ||approx - exact|| / ||exact||.
double relative_error(const Matrix& approx, const Matrix& exact);

}  // namespace ssma::maddness
