// SSSE3 tier of the batch encoder: 16 rows per iteration. All 15 node
// thresholds of a codebook live in one XMM register; each level is
// resolved with three instructions per 16 rows:
//   * pshufb gathers every row's node threshold (flat index =
//     (1<<l)-1 + node, always < 15 so the shuffle high bit is clear);
//   * the unsigned compare x >= t has no epu8 primitive, so it is
//     max_epu8(x, t) == x (equality included — the hardware's >= rail);
//   * the 0xFF/0x00 mask folds into the index with
//     idx = (idx + idx) - mask, i.e. idx = 2*idx + (x >= t).
// The ragged tail below one 16-row block falls through to the branchless
// scalar tournament, which is bit-identical by construction.
#include "maddness/encoder_kernel.hpp"

#if defined(__SSSE3__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__SSSE3__)

bool encoder_ssse3_compiled_in() { return true; }

void encode_codebook_ssse3(const std::uint8_t* stage, std::size_t stride,
                           std::size_t rows, const std::uint8_t* thr,
                           std::uint8_t* codes) {
  constexpr std::size_t kRowBlock = 16;
  const std::size_t full = rows - rows % kRowBlock;
  const __m128i T =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(thr));
  const __m128i t0 = _mm_set1_epi8(static_cast<char>(thr[0]));
  const __m128i off1 = _mm_set1_epi8(1);
  const __m128i off3 = _mm_set1_epi8(3);
  const __m128i off7 = _mm_set1_epi8(7);
  for (std::size_t n = 0; n < full; n += kRowBlock) {
    const __m128i x0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(stage + n));
    const __m128i x1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(stage + stride + n));
    const __m128i x2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(stage + 2 * stride + n));
    const __m128i x3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(stage + 3 * stride + n));

    // Level 0: one shared threshold, broadcast.
    __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(x0, t0), x0);
    __m128i idx = _mm_sub_epi8(_mm_setzero_si128(), ge);
    // Levels 1-3: per-row threshold gather from the packed block.
    __m128i t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off1));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x1, t), x1);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);
    t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off3));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x2, t), x2);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);
    t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off7));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x3, t), x3);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);

    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + n), idx);
  }
  encode_codebook_scalar(stage, stride, full, rows, thr, codes);
}

void encode_codebook_windowed_ssse3(const std::uint8_t* src,
                                    std::size_t row_stride,
                                    std::size_t rows,
                                    const std::uint8_t* pick,
                                    const std::uint8_t* thr,
                                    std::uint8_t* codes) {
  constexpr std::size_t kRowBlock = 16;
  const std::size_t full = rows - rows % kRowBlock;
  const __m128i pickv =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(pick));
  // After the per-row pick, a 4-row group register holds
  // [r0: d0..d3 | r1 | r2 | r3]; this shuffle regroups it level-major:
  // [d0: r0..r3 | d1 | d2 | d3].
  const __m128i relay = _mm_set_epi8(15, 11, 7, 3, 14, 10, 6, 2, 13, 9, 5,
                                     1, 12, 8, 4, 0);
  const __m128i T =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(thr));
  const __m128i t0 = _mm_set1_epi8(static_cast<char>(thr[0]));
  const __m128i off1 = _mm_set1_epi8(1);
  const __m128i off3 = _mm_set1_epi8(3);
  const __m128i off7 = _mm_set1_epi8(7);
  for (std::size_t n = 0; n < full; n += kRowBlock) {
    // Gather: one 16-byte window load + one pshufb per row picks the 4
    // split bytes; three unpacks pack 4 rows into one register.
    __m128i g[4];
    for (int b = 0; b < 4; ++b) {
      const std::uint8_t* p =
          src + (n + 4 * static_cast<std::size_t>(b)) * row_stride;
      const __m128i r0 = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), pickv);
      const __m128i r1 = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + row_stride)),
          pickv);
      const __m128i r2 = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + 2 * row_stride)),
          pickv);
      const __m128i r3 = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + 3 * row_stride)),
          pickv);
      g[b] = _mm_shuffle_epi8(
          _mm_unpacklo_epi64(_mm_unpacklo_epi32(r0, r1),
                             _mm_unpacklo_epi32(r2, r3)),
          relay);
    }
    // 4x4 dword transpose across the groups -> per-level row vectors.
    const __m128i a0 = _mm_unpacklo_epi32(g[0], g[1]);
    const __m128i a1 = _mm_unpackhi_epi32(g[0], g[1]);
    const __m128i a2 = _mm_unpacklo_epi32(g[2], g[3]);
    const __m128i a3 = _mm_unpackhi_epi32(g[2], g[3]);
    const __m128i x0 = _mm_unpacklo_epi64(a0, a2);
    const __m128i x1 = _mm_unpackhi_epi64(a0, a2);
    const __m128i x2 = _mm_unpacklo_epi64(a1, a3);
    const __m128i x3 = _mm_unpackhi_epi64(a1, a3);

    // Identical tournament to the staged path.
    __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(x0, t0), x0);
    __m128i idx = _mm_sub_epi8(_mm_setzero_si128(), ge);
    __m128i t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off1));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x1, t), x1);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);
    t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off3));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x2, t), x2);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);
    t = _mm_shuffle_epi8(T, _mm_add_epi8(idx, off7));
    ge = _mm_cmpeq_epi8(_mm_max_epu8(x3, t), x3);
    idx = _mm_sub_epi8(_mm_add_epi8(idx, idx), ge);

    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + n), idx);
  }
  encode_codebook_windowed_scalar(src, row_stride, full, rows, pick, thr,
                                  codes);
}

#else  // !defined(__SSSE3__)

bool encoder_ssse3_compiled_in() { return false; }

void encode_codebook_ssse3(const std::uint8_t* stage, std::size_t stride,
                           std::size_t rows, const std::uint8_t* thr,
                           std::uint8_t* codes) {
  // Unreachable: the dispatcher never selects a tier whose
  // *_compiled_in() probe is false. Fall back defensively anyway.
  encode_codebook_scalar(stage, stride, 0, rows, thr, codes);
}

void encode_codebook_windowed_ssse3(const std::uint8_t* src,
                                    std::size_t row_stride,
                                    std::size_t rows,
                                    const std::uint8_t* pick,
                                    const std::uint8_t* thr,
                                    std::uint8_t* codes) {
  encode_codebook_windowed_scalar(src, row_stride, 0, rows, pick, thr,
                                  codes);
}

#endif

}  // namespace ssma::maddness::detail
