// AVX2 tier of the batch encoder: the YMM-width sibling of the SSSE3
// tier (see encoder_kernel_ssse3.cpp for the per-level scheme). The
// codebook's 16-byte threshold block is broadcast to both 128-bit lanes,
// so one vpshufb gathers 32 rows' node thresholds per level — vpshufb
// shuffles within each lane, which is exactly right with the operand
// duplicated. 32 rows resolve all four levels in ~12 vector ops; the
// ragged tail falls through to the branchless scalar tournament.
#include "maddness/encoder_kernel.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__AVX2__)

bool encoder_avx2_compiled_in() { return true; }

void encode_codebook_avx2(const std::uint8_t* stage, std::size_t stride,
                          std::size_t rows, const std::uint8_t* thr,
                          std::uint8_t* codes) {
  constexpr std::size_t kRowBlock = 32;
  const std::size_t full = rows - rows % kRowBlock;
  const __m256i T = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(thr)));
  const __m256i t0 = _mm256_set1_epi8(static_cast<char>(thr[0]));
  const __m256i off1 = _mm256_set1_epi8(1);
  const __m256i off3 = _mm256_set1_epi8(3);
  const __m256i off7 = _mm256_set1_epi8(7);
  for (std::size_t n = 0; n < full; n += kRowBlock) {
    const __m256i x0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(stage + n));
    const __m256i x1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(stage + stride + n));
    const __m256i x2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(stage + 2 * stride + n));
    const __m256i x3 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(stage + 3 * stride + n));

    __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x0, t0), x0);
    __m256i idx = _mm256_sub_epi8(_mm256_setzero_si256(), ge);
    __m256i t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off1));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x1, t), x1);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);
    t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off3));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x2, t), x2);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);
    t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off7));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x3, t), x3);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);

    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + n), idx);
  }
  encode_codebook_scalar(stage, stride, full, rows, thr, codes);
}

namespace {

/// Gathers and transposes one 16-row group: 16-byte window load + pick
/// shuffle per row, packed 4 rows at a time, then a 4x4 dword transpose
/// (see encoder_kernel_ssse3.cpp for the layout walkthrough). Returns
/// the four level vectors for rows [n, n+16).
inline void gather_window_16(const std::uint8_t* src,
                             std::size_t row_stride, std::size_t n,
                             __m128i pickv, __m128i relay, __m128i x[4]) {
  __m128i g[4];
  for (int b = 0; b < 4; ++b) {
    const std::uint8_t* p =
        src + (n + 4 * static_cast<std::size_t>(b)) * row_stride;
    const __m128i r0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), pickv);
    const __m128i r1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + row_stride)),
        pickv);
    const __m128i r2 = _mm_shuffle_epi8(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(p + 2 * row_stride)),
        pickv);
    const __m128i r3 = _mm_shuffle_epi8(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(p + 3 * row_stride)),
        pickv);
    g[b] = _mm_shuffle_epi8(
        _mm_unpacklo_epi64(_mm_unpacklo_epi32(r0, r1),
                           _mm_unpacklo_epi32(r2, r3)),
        relay);
  }
  const __m128i a0 = _mm_unpacklo_epi32(g[0], g[1]);
  const __m128i a1 = _mm_unpackhi_epi32(g[0], g[1]);
  const __m128i a2 = _mm_unpacklo_epi32(g[2], g[3]);
  const __m128i a3 = _mm_unpackhi_epi32(g[2], g[3]);
  x[0] = _mm_unpacklo_epi64(a0, a2);
  x[1] = _mm_unpackhi_epi64(a0, a2);
  x[2] = _mm_unpacklo_epi64(a1, a3);
  x[3] = _mm_unpackhi_epi64(a1, a3);
}

}  // namespace

void encode_codebook_windowed_avx2(const std::uint8_t* src,
                                   std::size_t row_stride,
                                   std::size_t rows,
                                   const std::uint8_t* pick,
                                   const std::uint8_t* thr,
                                   std::uint8_t* codes) {
  constexpr std::size_t kRowBlock = 32;  // two 16-row gather groups
  const std::size_t full = rows - rows % kRowBlock;
  const __m128i pickv =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(pick));
  const __m128i relay = _mm_set_epi8(15, 11, 7, 3, 14, 10, 6, 2, 13, 9, 5,
                                     1, 12, 8, 4, 0);
  const __m256i T = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(thr)));
  const __m256i t0 = _mm256_set1_epi8(static_cast<char>(thr[0]));
  const __m256i off1 = _mm256_set1_epi8(1);
  const __m256i off3 = _mm256_set1_epi8(3);
  const __m256i off7 = _mm256_set1_epi8(7);
  for (std::size_t n = 0; n < full; n += kRowBlock) {
    __m128i xl[4], xh[4];
    gather_window_16(src, row_stride, n, pickv, relay, xl);
    gather_window_16(src, row_stride, n + 16, pickv, relay, xh);
    const __m256i x0 = _mm256_set_m128i(xh[0], xl[0]);
    const __m256i x1 = _mm256_set_m128i(xh[1], xl[1]);
    const __m256i x2 = _mm256_set_m128i(xh[2], xl[2]);
    const __m256i x3 = _mm256_set_m128i(xh[3], xl[3]);

    __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x0, t0), x0);
    __m256i idx = _mm256_sub_epi8(_mm256_setzero_si256(), ge);
    __m256i t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off1));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x1, t), x1);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);
    t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off3));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x2, t), x2);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);
    t = _mm256_shuffle_epi8(T, _mm256_add_epi8(idx, off7));
    ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x3, t), x3);
    idx = _mm256_sub_epi8(_mm256_add_epi8(idx, idx), ge);

    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + n), idx);
  }
  encode_codebook_windowed_scalar(src, row_stride, full, rows, pick, thr,
                                  codes);
}

#else  // !defined(__AVX2__)

bool encoder_avx2_compiled_in() { return false; }

void encode_codebook_avx2(const std::uint8_t* stage, std::size_t stride,
                          std::size_t rows, const std::uint8_t* thr,
                          std::uint8_t* codes) {
  encode_codebook_scalar(stage, stride, 0, rows, thr, codes);
}

void encode_codebook_windowed_avx2(const std::uint8_t* src,
                                   std::size_t row_stride,
                                   std::size_t rows,
                                   const std::uint8_t* pick,
                                   const std::uint8_t* thr,
                                   std::uint8_t* codes) {
  encode_codebook_windowed_scalar(src, row_stride, 0, rows, pick, thr,
                                  codes);
}

#endif

}  // namespace ssma::maddness::detail
