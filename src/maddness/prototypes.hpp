// Prototype learning: given trained hash trees and the training
// activations, derive the K=16 prototype vectors per codebook. Two modes:
//   * bucket means — each prototype is the mean of its leaf's vectors,
//     support restricted to the codebook's own subspace;
//   * joint ridge refit — MADDNESS §4.2: solve
//       argmin_P ||X - G P||_F^2 + lambda ||P||_F^2
//     where G is the N x (M*16) one-hot encoding matrix. Prototypes gain
//     support over the full input dimension, which the LUT precomputation
//     absorbs for free.
#pragma once

#include <vector>

#include "maddness/config.hpp"
#include "maddness/hash_tree.hpp"
#include "maddness/quantize.hpp"
#include "util/matrix.hpp"

namespace ssma::maddness {

/// Prototypes for all codebooks: (M * 16) x total_dims. Row (c*16 + k) is
/// prototype k of codebook c. Under kBucketMeans, entries outside
/// codebook c's dim range [c*subvec_dim, (c+1)*subvec_dim) are zero.
struct Prototypes {
  Matrix p;          ///< (M*K) x D, in the *dequantized float* domain
  Config cfg;

  const float* row(int codebook, int proto) const {
    return p.row(static_cast<std::size_t>(codebook) * cfg.nprototypes() +
                 proto);
  }
};

/// Encodes every row of `q` with the per-codebook trees, row-at-a-time
/// through HashTree::encode. Returns N x M codes (leaf index per
/// codebook). This is the scalar reference path the vectorized batch
/// encoder (encoder_kernel.hpp) is tested bit-exact against; hot-path
/// callers go through Amm::encode_batch instead.
std::vector<std::uint8_t> encode_all(const Config& cfg,
                                     const std::vector<HashTree>& trees,
                                     const QuantizedActivations& q);

/// Same codes, written codebook-major (codes[c * N + n]) with the tree
/// walk inlined over precomputed absolute split dims — the pre-SIMD
/// scalar encode the kernel sweep benchmarks against as the "old"
/// end-to-end path. Kept as a second independent reference; production
/// encoding runs encode_batch_packed.
std::vector<std::uint8_t> encode_all_codebook_major(
    const Config& cfg, const std::vector<HashTree>& trees,
    const QuantizedActivations& q);

/// Learns prototypes from training data and its codes.
Prototypes learn_prototypes(const Config& cfg,
                            const std::vector<HashTree>& trees,
                            const QuantizedActivations& train);

}  // namespace ssma::maddness
