#include "maddness/quantize.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::maddness {

QuantizedActivations quantize_activations(const Matrix& x) {
  float maxv = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    SSMA_CHECK_MSG(x.data()[i] >= -1e-5f,
                   "activation quantization expects non-negative inputs");
    maxv = std::max(maxv, x.data()[i]);
  }
  const float scale = maxv > 0.0f ? maxv / 255.0f : 1.0f;
  return quantize_activations(x, scale);
}

QuantizedActivations quantize_activations(const Matrix& x, float scale) {
  SSMA_CHECK(scale > 0.0f);
  QuantizedActivations q;
  q.rows = x.rows();
  q.cols = x.cols();
  q.scale = scale;
  q.codes.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = static_cast<double>(x.data()[i]) / scale;
    q.codes[i] = saturate_uint8(round_half_away(v));
  }
  return q;
}

Matrix dequantize(const QuantizedActivations& q) {
  Matrix x(q.rows, q.cols);
  for (std::size_t i = 0; i < q.codes.size(); ++i)
    x.data()[i] = static_cast<float>(q.codes[i]) * q.scale;
  return x;
}

}  // namespace ssma::maddness
