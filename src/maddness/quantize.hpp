// Activation quantization to uint8. The accelerator's DLC comparators and
// the PQ thresholds operate on unsigned 8-bit activations (post-ReLU
// activations are non-negative), so the software AMM path quantizes
// through exactly this representation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace ssma::maddness {

/// A quantized activation matrix: row-major uint8 with a single linear
/// scale (value = code * scale).
struct QuantizedActivations {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> codes;
  float scale = 1.0f;

  std::uint8_t at(std::size_t r, std::size_t c) const {
    return codes[r * cols + c];
  }
  const std::uint8_t* row(std::size_t r) const {
    return codes.data() + r * cols;
  }
};

/// Chooses scale = max/255 over the matrix (activations must be >= 0)
/// and quantizes with round-to-nearest.
QuantizedActivations quantize_activations(const Matrix& x);

/// Quantizes with a caller-provided scale (e.g. a calibration scale that
/// must be shared between training and inference data).
QuantizedActivations quantize_activations(const Matrix& x, float scale);

/// Dequantizes back to float (for testing round trips).
Matrix dequantize(const QuantizedActivations& q);

}  // namespace ssma::maddness
