// The LUT accumulation hot path: given per-row leaf codes and a packed
// (output-major) LUT bank, accumulate ncodebooks int8 table entries per
// output in int32 and saturate once to int16 at the end — the software
// mirror of the paper's pipeline-accumulate-then-clamp datapath.
//
// Three implementation tiers share one contract (bit-exact results):
//   * kScalar — portable blocked kernel: 32-row x 16-output tiles keep
//     the codes, the 16-byte tables and the int32 accumulators L1-hot.
//   * kSsse3  — pshufb gather: one 16-entry table lives in an XMM
//     register; 16 rows of codes index it in a single shuffle.
//   * kAvx2   — the same with the table broadcast to both 128-bit lanes,
//     32 rows per shuffle.
// The SIMD tiers require the hardware table shape (K == 16, codes < 16);
// other K values dispatch to the scalar kernel. Tier selection happens at
// runtime from CPUID (overridable via the SSMA_KERNEL environment
// variable: scalar | ssse3 | avx2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "maddness/lut.hpp"
#include "util/fixed_point.hpp"

namespace ssma::maddness {

enum class KernelTier { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

const char* kernel_tier_name(KernelTier tier);

/// Highest tier both compiled in and supported by this CPU.
KernelTier best_kernel_tier();

/// best_kernel_tier(), downgraded by SSMA_KERNEL=scalar|ssse3|avx2 when
/// set (an override above what the CPU supports is clamped down). Read
/// once and cached.
KernelTier select_kernel_tier();

/// True when `tier` can run on this build + CPU.
bool kernel_tier_available(KernelTier tier);

/// Encode cache: one batch's leaf codes, stored codebook-major
/// (codes[c * rows + n]) so the accumulation kernel streams one codebook's
/// codes contiguously. Built once per batch; every output block reuses it
/// instead of re-walking the row-major encode output.
struct EncodedBatch {
  std::size_t rows = 0;
  int ncodebooks = 0;
  std::vector<std::uint8_t> codes;

  const std::uint8_t* codebook(int c) const {
    return codes.data() + static_cast<std::size_t>(c) * rows;
  }
};

/// Transposes row-major codes (codes[n * ncodebooks + c], the encode_all
/// layout) into an EncodedBatch.
EncodedBatch make_encoded_batch(const std::vector<std::uint8_t>& row_major,
                                std::size_t rows, int ncodebooks);

/// Reference kernel: naive row -> codebook -> output triple loop over the
/// proto-major LutBank. int32 accumulation, one saturation at the end.
/// This is the semantic definition the packed kernels are tested against.
std::vector<std::int16_t> apply_lut_reference(
    const LutBank& lut, const std::vector<std::uint8_t>& row_major_codes,
    std::size_t rows);

/// Packed kernel, dispatched to `tier` (clamped to what is available and
/// to kScalar when the bank is not pshufb-shaped). Returns rows x nout
/// int16, row-major — bit-exact vs apply_lut_reference.
std::vector<std::int16_t> apply_lut_packed(const LutBankPacked& lut,
                                           const EncodedBatch& enc,
                                           KernelTier tier);
std::vector<std::int16_t> apply_lut_packed(const LutBankPacked& lut,
                                           const EncodedBatch& enc);

/// Non-allocating form: `out` is resized (capacity-reusing) to
/// rows x nout. Steady-state callers that keep `out` alive across
/// batches pay zero allocations once its capacity is established.
void apply_lut_packed(const LutBankPacked& lut, const EncodedBatch& enc,
                      KernelTier tier, std::vector<std::int16_t>& out);

/// Constants of the fused stage handoff: the saturated int16 accumulator
/// dequantizes with the producing stage's LUT scales (carried by the
/// packed bank itself), and requantizes with the consuming stage's
/// calibrated activation scale. The [0, 255] saturation of the uint8
/// requantization is the inter-layer ReLU + clip.
struct FusedEpilogue {
  float next_scale = 1.0f;
};

/// Fused kernel: identical int32-accumulate-then-saturate datapath, but
/// instead of storing int16 accumulators each finished tile runs the
/// stage handoff in-register — dequantize (this bank's scales), clamp at
/// 0, requantize with `ep.next_scale` — and stores the next stage's
/// uint8 activation rows to `dst` (rows x nout, row-major). Bit-exact vs
/// apply_lut_packed + engine::stage_handoff: the per-element float math
/// is the scalar reference sequence, applied while the tile is still hot
/// (the int16 accumulators and the dequantized floats never touch
/// memory).
void apply_lut_fused(const LutBankPacked& lut, const EncodedBatch& enc,
                     const FusedEpilogue& ep, KernelTier tier,
                     std::uint8_t* dst);

namespace detail {

/// CPUID probe for `tier`, shared by the LUT and encoder dispatchers.
bool cpu_supports_tier(KernelTier tier);
/// Applies the SSMA_KERNEL env override to `best`: a requested tier
/// below `best` wins, one above it is clamped down to `best`.
KernelTier clamp_tier_by_env(KernelTier best);

// Per-tier entry points. Each accumulates into `out` (rows x nout,
// pre-sized) with identical int32-then-saturate semantics. The SIMD TUs
// are compiled with the matching -m flags when the toolchain supports
// them; otherwise their *_compiled_in() probe returns false and the
// dispatcher never calls them.
void apply_packed_scalar(const LutBankPacked& lut, const EncodedBatch& enc,
                         std::int16_t* out);
bool ssse3_compiled_in();
void apply_packed_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                        std::int16_t* out);
bool avx2_compiled_in();
void apply_packed_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                       std::int16_t* out);

/// Scalar tail helper shared by the SIMD tiers: rows [row_lo, rows).
void apply_packed_scalar_rows(const LutBankPacked& lut,
                              const EncodedBatch& enc, std::size_t row_lo,
                              std::int16_t* out);

/// The single saturation of the accumulate contract (int32 total ->
/// int16), shared by every tier's store and fused paths.
inline std::int16_t saturate_acc16(std::int32_t v) {
  return static_cast<std::int16_t>(
      v < -32768 ? -32768 : (v > 32767 ? 32767 : v));
}

/// Per-output dequantization scale of a packed bank (mirrors
/// LutBank::scale for the accumulation layout).
inline float packed_scale(const LutBankPacked& lut, int out) {
  return lut.scales[lut.per_column_scale ? out : 0];
}

/// One element of the fused epilogue — EXACTLY the reference handoff:
/// Amm::dequantize_result's float multiply, then quantize_activations'
/// double divide + round-half-away + uint8 saturation. The math stays
/// scalar on purpose: SIMD float rounding (round-to-even cvtps) would
/// break the bit-exactness contract, and the fusion win is the removed
/// memory traffic, not vectorized float arithmetic.
inline std::uint8_t fused_requantize(std::int16_t acc, float lut_scale,
                                     float next_scale) {
  const float y = static_cast<float>(acc) * lut_scale;
  const double v = static_cast<double>(y) / next_scale;
  return saturate_uint8(round_half_away(v));
}

// Per-tier fused entry points, mirroring the packed ones: same tile
// walk, the epilogue applied to each finished tile.
void apply_fused_scalar(const LutBankPacked& lut, const EncodedBatch& enc,
                        const FusedEpilogue& ep, std::uint8_t* dst);
void apply_fused_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                       const FusedEpilogue& ep, std::uint8_t* dst);
void apply_fused_avx2(const LutBankPacked& lut, const EncodedBatch& enc,
                      const FusedEpilogue& ep, std::uint8_t* dst);

/// Scalar fused tail shared by the SIMD tiers: rows [row_lo, rows).
void apply_fused_scalar_rows(const LutBankPacked& lut,
                             const EncodedBatch& enc,
                             const FusedEpilogue& ep, std::size_t row_lo,
                             std::uint8_t* dst);

}  // namespace detail

}  // namespace ssma::maddness
