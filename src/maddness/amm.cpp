#include "maddness/amm.hpp"

#include <algorithm>

#include "maddness/tree_learner.hpp"
#include "util/check.hpp"

namespace ssma::maddness {

namespace {

/// Percentile-clipped activation scale: values above the clip saturate
/// at 255 instead of compressing the whole distribution.
float calibrate_scale(const Matrix& x, double percentile) {
  std::vector<float> vals(x.data(), x.data() + x.size());
  if (vals.empty()) return 1.0f;
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(vals.size()) - 1,
                       percentile / 100.0 * static_cast<double>(vals.size())));
  std::nth_element(vals.begin(), vals.begin() + rank, vals.end());
  const float clip = std::max(vals[rank], 1e-6f);
  return clip / 255.0f;
}

}  // namespace

Amm Amm::train(const Config& cfg, const Matrix& train_activations,
               const Matrix& weights) {
  cfg.validate();
  SSMA_CHECK(train_activations.cols() ==
             static_cast<std::size_t>(cfg.total_dims()));
  Amm amm;
  amm.cfg_ = cfg;

  const float scale =
      calibrate_scale(train_activations, cfg.act_clip_percentile);
  const QuantizedActivations q =
      quantize_activations(train_activations, scale);
  amm.act_scale_ = q.scale;

  // Per-codebook tree training on the quantized (uint8-as-float) domain so
  // learned thresholds are exactly representable in hardware.
  amm.trees_.reserve(cfg.ncodebooks);
  for (int c = 0; c < cfg.ncodebooks; ++c) {
    Matrix sub(q.rows, cfg.subvec_dim);
    for (std::size_t n = 0; n < q.rows; ++n)
      for (int j = 0; j < cfg.subvec_dim; ++j)
        sub(n, j) = static_cast<float>(
            q.at(n, static_cast<std::size_t>(c) * cfg.subvec_dim + j));
    amm.trees_.push_back(learn_hash_tree(sub));
  }

  amm.protos_ = learn_prototypes(cfg, amm.trees_, q);
  amm.lut_ = build_lut(amm.protos_, weights);
  amm.rebuild_derived();
  return amm;
}

std::vector<std::uint8_t> Amm::encode(const QuantizedActivations& q) const {
  const EncodedBatch enc = encode_batch(q);
  std::vector<std::uint8_t> row_major(enc.codes.size());
  const auto ncb = static_cast<std::size_t>(enc.ncodebooks);
  for (std::size_t c = 0; c < ncb; ++c)
    for (std::size_t n = 0; n < enc.rows; ++n)
      row_major[n * ncb + c] = enc.codes[c * enc.rows + n];
  return row_major;
}

EncodedBatch Amm::encode_batch(const QuantizedActivations& q) const {
  EncodeScratch scratch;
  EncodedBatch enc;
  encode_batch(q, scratch, enc);
  return enc;
}

void Amm::encode_batch(const QuantizedActivations& q,
                       EncodeScratch& scratch, EncodedBatch& out) const {
  encode_batch_packed(bank_, q, select_encoder_tier(), scratch, out);
}

void Amm::encode_batch(const Matrix& x, EncodeScratch& scratch,
                       EncodedBatch& out) const {
  encode_batch_packed(bank_, x, act_scale_, select_encoder_tier(), scratch,
                      out);
}

std::vector<std::int16_t> Amm::apply_int16(
    const QuantizedActivations& q) const {
  return apply_int16(encode_batch(q));
}

std::vector<std::int16_t> Amm::apply_int16(const EncodedBatch& enc) const {
  return apply_lut_packed(packed_, enc);
}

void Amm::apply_int16(const EncodedBatch& enc,
                      std::vector<std::int16_t>& out) const {
  apply_lut_packed(packed_, enc, select_kernel_tier(), out);
}

std::vector<std::int16_t> Amm::apply_int16_reference(
    const QuantizedActivations& q) const {
  SSMA_CHECK(q.cols == static_cast<std::size_t>(cfg_.total_dims()));
  // The reference path stays fully independent of the vectorized
  // encoder: per-row HashTree::encode walk + naive accumulation.
  return apply_lut_reference(lut_, encode_all(cfg_, trees_, q), q.rows);
}

Matrix Amm::apply(const Matrix& x) const {
  // Fused quantize + encode: one pass over the float input instead of
  // quantize-then-encode; codes (and therefore outputs) are
  // bit-identical to the two-pass path.
  EncodeScratch scratch;
  EncodedBatch enc;
  encode_batch(x, scratch, enc);
  const auto acc = apply_int16(enc);
  return dequantize_result(acc, x.rows());
}

Matrix Amm::dequantize_result(const std::vector<std::int16_t>& acc,
                              std::size_t rows) const {
  const int nout = lut_.nout;
  SSMA_CHECK(acc.size() == rows * static_cast<std::size_t>(nout));
  Matrix y(rows, static_cast<std::size_t>(nout));
  for (std::size_t n = 0; n < rows; ++n)
    for (int o = 0; o < nout; ++o)
      y(n, o) = static_cast<float>(acc[n * nout + o]) * lut_.scale(o);
  return y;
}

double relative_error(const Matrix& approx, const Matrix& exact) {
  const double denom = frobenius(exact);
  if (denom == 0.0) return frobenius(approx) == 0.0 ? 0.0 : 1.0;
  return frobenius_diff(approx, exact) / denom;
}

}  // namespace ssma::maddness
