// The learned MADDNESS hash function for one codebook: a balanced binary
// decision tree with one split dimension per level and per-node uint8
// thresholds — exactly the structure the hardware encoder implements with
// its 15-DLC tournament (Fig. 4A).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ppa/tech_constants.hpp"

namespace ssma::maddness {

class HashTree {
 public:
  static constexpr int kLevels = ppa::kTreeLevels;   // 4
  static constexpr int kLeaves = 1 << kLevels;       // 16
  static constexpr int kNodes = kLeaves - 1;         // 15

  HashTree();

  /// Split dimension used at `level` (shared by all nodes of the level).
  int split_dim(int level) const;
  void set_split_dim(int level, int dim);

  /// Threshold of node `node` (0-based within `level`, i.e. [0, 2^level)).
  std::uint8_t threshold(int level, int node) const;
  void set_threshold(int level, int node, std::uint8_t t);

  /// Flat node numbering used by the hardware: node id = (1<<level)-1+node.
  std::uint8_t threshold_flat(int flat_node) const {
    return thresholds_[flat_node];
  }
  const std::array<std::uint8_t, kNodes>& thresholds_flat() const {
    return thresholds_;
  }
  const std::array<int, kLevels>& split_dims() const { return split_dims_; }

  /// Classifies a subvector (uint8, at least max(split_dims)+1 elements):
  /// at each level the selected element is compared against the node
  /// threshold; >= goes right. Returns the leaf index in [0, 16).
  int encode(const std::uint8_t* subvec) const;

  /// Per-level resolution depths of the four comparisons for this input —
  /// the quantity that determines the hardware encoder's latency.
  /// depth = 1 + length of the MSB-side run of equal bits (equality = 8).
  std::array<int, kLevels> encode_depths(const std::uint8_t* subvec) const;

  /// Resolution depth of a single 8-bit compare (exposed for tests and for
  /// the DLC model, which must agree with it).
  static int compare_depth(std::uint8_t x, std::uint8_t t);

 private:
  std::array<int, kLevels> split_dims_;
  std::array<std::uint8_t, kNodes> thresholds_;
};

}  // namespace ssma::maddness
