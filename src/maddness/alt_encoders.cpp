#include "maddness/alt_encoders.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace ssma::maddness {

namespace {

double distance(const float* a, const float* b, std::size_t d,
                DistanceKind kind) {
  double acc = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    acc += kind == DistanceKind::kManhattan ? std::abs(diff) : diff * diff;
  }
  return acc;
}

}  // namespace

int full_search_encode(const Matrix& prototypes, const float* subvec,
                       DistanceKind kind) {
  SSMA_CHECK(prototypes.rows() >= 1);
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < prototypes.rows(); ++k) {
    const double d =
        distance(prototypes.row(k), subvec, prototypes.cols(), kind);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(k);
    }
  }
  return best;
}

std::vector<std::uint8_t> full_search_encode_all(const Matrix& prototypes,
                                                 const Matrix& x,
                                                 DistanceKind kind) {
  SSMA_CHECK(prototypes.cols() == x.cols());
  std::vector<std::uint8_t> codes(x.rows());
  for (std::size_t n = 0; n < x.rows(); ++n)
    codes[n] =
        static_cast<std::uint8_t>(full_search_encode(prototypes, x.row(n), kind));
  return codes;
}

Matrix kmeans(const Matrix& x, int k, int iters, Rng& rng) {
  SSMA_CHECK(k >= 1);
  SSMA_CHECK(x.rows() >= static_cast<std::size_t>(k));
  const std::size_t n = x.rows(), d = x.cols();

  // k-means++ seeding.
  Matrix centroids(static_cast<std::size_t>(k), d);
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t c = 0; c < d; ++c) centroids(0, c) = x(first, c);
  for (int ki = 1; ki < k; ++ki) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dd = distance(x.row(i), centroids.row(ki - 1), d,
                                 DistanceKind::kEuclidean);
      dist2[i] = std::min(dist2[i], dd);
      total += dist2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(rng.next_below(n));
    }
    for (std::size_t c = 0; c < d; ++c) centroids(ki, c) = x(chosen, c);
  }

  // Lloyd iterations.
  std::vector<int> assign(n, 0);
  for (int it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < n; ++i)
      assign[i] =
          full_search_encode(centroids, x.row(i), DistanceKind::kEuclidean);
    Matrix sums(static_cast<std::size_t>(k), d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[assign[i]];
      for (std::size_t c = 0; c < d; ++c) sums(assign[i], c) += x(i, c);
    }
    for (int ki = 0; ki < k; ++ki) {
      if (counts[ki] == 0) {
        // Re-seed empty cluster to the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dd = distance(x.row(i), centroids.row(assign[i]), d,
                                     DistanceKind::kEuclidean);
          if (dd > far_d) {
            far_d = dd;
            far = i;
          }
        }
        for (std::size_t c = 0; c < d; ++c) centroids(ki, c) = x(far, c);
        continue;
      }
      for (std::size_t c = 0; c < d; ++c)
        centroids(ki, c) = sums(ki, c) / static_cast<float>(counts[ki]);
    }
  }
  return centroids;
}

double assignment_sse(const Matrix& prototypes, const Matrix& x,
                      const std::vector<std::uint8_t>& codes) {
  SSMA_CHECK(codes.size() == x.rows());
  double total = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i)
    total += distance(x.row(i), prototypes.row(codes[i]), x.cols(),
                      DistanceKind::kEuclidean);
  return x.rows() ? total / static_cast<double>(x.rows()) : 0.0;
}

}  // namespace ssma::maddness
