#include "maddness/bucket.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ssma::maddness {

Bucket::Bucket(const Matrix& x, std::vector<std::size_t> rows)
    : rows_(std::move(rows)) {
  for (auto r : rows_) SSMA_CHECK(r < x.rows());
}

double Bucket::sse(const Matrix& x) const {
  if (rows_.size() < 2) return 0.0;
  const std::size_t d = x.cols();
  std::vector<double> sum(d, 0.0), sumsq(d, 0.0);
  for (auto r : rows_)
    for (std::size_t c = 0; c < d; ++c) {
      const double v = x(r, c);
      sum[c] += v;
      sumsq[c] += v * v;
    }
  const double n = static_cast<double>(rows_.size());
  double sse = 0.0;
  for (std::size_t c = 0; c < d; ++c) sse += sumsq[c] - sum[c] * sum[c] / n;
  return std::max(sse, 0.0);
}

std::vector<double> Bucket::mean(const Matrix& x) const {
  std::vector<double> m(x.cols(), 0.0);
  if (rows_.empty()) return m;
  for (auto r : rows_)
    for (std::size_t c = 0; c < x.cols(); ++c) m[c] += x(r, c);
  for (auto& v : m) v /= static_cast<double>(rows_.size());
  return m;
}

SplitChoice best_split_on_dim(const Matrix& x, const Bucket& bucket,
                              int dim) {
  SSMA_CHECK(dim >= 0 && static_cast<std::size_t>(dim) < x.cols());
  SplitChoice choice;
  if (bucket.size() < 2) {
    choice.loss = bucket.sse(x);
    return choice;
  }

  const std::size_t d = x.cols();
  std::vector<std::size_t> order = bucket.rows();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return x(a, dim) < x(b, dim);
  });
  const std::size_t n = order.size();

  // Prefix sums of x and x^2 per dim under this ordering; SSE of any
  // head/tail segment is then O(D).
  std::vector<double> psum((n + 1) * d, 0.0), psq((n + 1) * d, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < d; ++c) {
      const double v = x(order[i], c);
      psum[(i + 1) * d + c] = psum[i * d + c] + v;
      psq[(i + 1) * d + c] = psq[i * d + c] + v * v;
    }
  auto segment_sse = [&](std::size_t lo, std::size_t hi) {  // rows [lo, hi)
    if (hi - lo < 2) return 0.0;
    const double cnt = static_cast<double>(hi - lo);
    double sse = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double s = psum[hi * d + c] - psum[lo * d + c];
      const double sq = psq[hi * d + c] - psq[lo * d + c];
      sse += sq - s * s / cnt;
    }
    return std::max(sse, 0.0);
  };

  double best_loss = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 1; k < n; ++k) {
    // Candidate split between sorted position k-1 and k; skip ties (the
    // predicate x[dim] >= t cannot separate equal values).
    if (x(order[k - 1], dim) == x(order[k], dim)) continue;
    const double loss = segment_sse(0, k) + segment_sse(k, n);
    if (loss < best_loss) {
      best_loss = loss;
      best_k = k;
    }
  }

  if (best_k == 0) {
    // All values equal on this dim: no split possible.
    choice.loss = bucket.sse(x);
    choice.threshold = x(order[0], dim) + 1.0;  // everything goes left
    choice.left_count = n;
    return choice;
  }

  choice.loss = best_loss;
  choice.threshold =
      0.5 * (x(order[best_k - 1], dim) + x(order[best_k], dim));
  choice.left_count = best_k;
  return choice;
}

std::pair<Bucket, Bucket> split_bucket(const Matrix& x, const Bucket& bucket,
                                       int dim, double threshold) {
  std::vector<std::size_t> left, right;
  for (auto r : bucket.rows()) {
    if (static_cast<double>(x(r, dim)) >= threshold)
      right.push_back(r);
    else
      left.push_back(r);
  }
  return {Bucket(x, std::move(left)), Bucket(x, std::move(right))};
}

}  // namespace ssma::maddness
