#include "maddness/encoder_kernel.hpp"

#include <algorithm>

#if defined(SSMA_TRACE_ENABLED)
#include <chrono>

#include "telemetry/kernel_profile.hpp"
#endif

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::maddness {

static_assert(EncoderBank::kLevels == 4,
              "the unrolled tournament below assumes the hardware's "
              "4-level / 15-node tree shape");
static_assert(EncoderBank::kThrStride == 16,
              "threshold blocks must be one pshufb operand wide");

EncoderBank build_encoder_bank(const Config& cfg,
                               const std::vector<HashTree>& trees) {
  cfg.validate();
  SSMA_CHECK(static_cast<int>(trees.size()) == cfg.ncodebooks);
  SSMA_CHECK_MSG(cfg.nprototypes() == HashTree::kLeaves,
                 "tree-based encoding produces " << HashTree::kLeaves
                                                 << " leaves; config wants "
                                                 << cfg.nprototypes());
  EncoderBank bank;
  bank.ncodebooks = cfg.ncodebooks;
  bank.total_dims = cfg.total_dims();
  bank.split_dims.resize(static_cast<std::size_t>(EncoderBank::kLevels) *
                         cfg.ncodebooks);
  bank.thresholds.assign(static_cast<std::size_t>(cfg.ncodebooks) *
                             EncoderBank::kThrStride,
                         0);
  bank.window_off.assign(static_cast<std::size_t>(cfg.ncodebooks), 0);
  bank.pick_masks.assign(static_cast<std::size_t>(cfg.ncodebooks) *
                             EncoderBank::kThrStride,
                         0x80);
  bank.windowed = bank.total_dims >= EncoderBank::kThrStride;
  for (int c = 0; c < cfg.ncodebooks; ++c) {
    int min_dim = bank.total_dims, max_dim = 0;
    for (int l = 0; l < EncoderBank::kLevels; ++l) {
      const int dim = trees[c].split_dims()[l];
      SSMA_CHECK_MSG(dim >= 0 && dim < cfg.subvec_dim,
                     "tree split dim outside its codebook subspace");
      const int abs_dim = c * cfg.subvec_dim + dim;
      bank.split_dims[static_cast<std::size_t>(l) * cfg.ncodebooks + c] =
          abs_dim;
      min_dim = std::min(min_dim, abs_dim);
      max_dim = std::max(max_dim, abs_dim);
    }
    std::uint8_t* thr =
        bank.thresholds.data() +
        static_cast<std::size_t>(c) * EncoderBank::kThrStride;
    for (int node = 0; node < HashTree::kNodes; ++node)
      thr[node] = trees[c].threshold_flat(node);
    // thr[15] stays zero: never indexed (flat nodes are 0..14), and a
    // deterministic pad keeps the pshufb operand fully initialized.

    // Windowed gather: anchor the 16-byte window at the lowest split
    // dim, pulled back so it never reads past the row's end. All-or-
    // nothing across codebooks — one codebook with spread-out dims
    // (possible only for subvec_dim > 16) drops the whole bank to the
    // staging-tile path.
    const int off = std::min(
        min_dim,
        std::max(0, bank.total_dims - EncoderBank::kThrStride));
    bank.window_off[c] = off;
    if (max_dim - off >= EncoderBank::kThrStride) bank.windowed = false;
    std::uint8_t* pick =
        bank.pick_masks.data() +
        static_cast<std::size_t>(c) * EncoderBank::kThrStride;
    for (int l = 0; l < EncoderBank::kLevels; ++l)
      pick[l] = static_cast<std::uint8_t>(
          bank.split_dims[static_cast<std::size_t>(l) * cfg.ncodebooks +
                          c] -
          off);
  }
  return bank;
}

bool encoder_tier_available(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kSsse3:
      return detail::encoder_ssse3_compiled_in() &&
             detail::cpu_supports_tier(tier);
    case KernelTier::kAvx2:
      return detail::encoder_avx2_compiled_in() &&
             detail::cpu_supports_tier(tier);
  }
  return false;
}

KernelTier best_encoder_tier() {
  if (encoder_tier_available(KernelTier::kAvx2)) return KernelTier::kAvx2;
  if (encoder_tier_available(KernelTier::kSsse3)) return KernelTier::kSsse3;
  return KernelTier::kScalar;
}

KernelTier select_encoder_tier() {
  static const KernelTier tier =
      detail::clamp_tier_by_env(best_encoder_tier());
  return tier;
}

namespace detail {

// Branchless scalar tournament (the portable tier and the SIMD tiers'
// tail handler): each level's compare result feeds straight into the
// next level's threshold index, no branches for the compiler to guess.
void encode_codebook_scalar(const std::uint8_t* stage, std::size_t stride,
                            std::size_t row_lo, std::size_t rows,
                            const std::uint8_t* thr, std::uint8_t* codes) {
  const std::uint8_t* s0 = stage;
  const std::uint8_t* s1 = stage + stride;
  const std::uint8_t* s2 = stage + 2 * stride;
  const std::uint8_t* s3 = stage + 3 * stride;
  for (std::size_t n = row_lo; n < rows; ++n) {
    unsigned idx = static_cast<unsigned>(s0[n] >= thr[0]);
    idx = 2 * idx + static_cast<unsigned>(s1[n] >= thr[1 + idx]);
    idx = 2 * idx + static_cast<unsigned>(s2[n] >= thr[3 + idx]);
    idx = 2 * idx + static_cast<unsigned>(s3[n] >= thr[7 + idx]);
    codes[n] = static_cast<std::uint8_t>(idx);
  }
}

// Branchless scalar walk over raw activation rows (the windowed path's
// tail handler): pick[0..3] are the window-relative split offsets.
void encode_codebook_windowed_scalar(const std::uint8_t* src,
                                     std::size_t row_stride,
                                     std::size_t row_lo, std::size_t rows,
                                     const std::uint8_t* pick,
                                     const std::uint8_t* thr,
                                     std::uint8_t* codes) {
  for (std::size_t n = row_lo; n < rows; ++n) {
    const std::uint8_t* row = src + n * row_stride;
    unsigned idx = static_cast<unsigned>(row[pick[0]] >= thr[0]);
    idx = 2 * idx + static_cast<unsigned>(row[pick[1]] >= thr[1 + idx]);
    idx = 2 * idx + static_cast<unsigned>(row[pick[2]] >= thr[3 + idx]);
    idx = 2 * idx + static_cast<unsigned>(row[pick[3]] >= thr[7 + idx]);
    codes[n] = static_cast<std::uint8_t>(idx);
  }
}

}  // namespace detail

namespace {

/// Dispatches one codebook's traversal over [0, rows) at `tier`
/// (already clamped to an available tier by the caller).
inline void traverse_codebook(KernelTier tier, const std::uint8_t* stage,
                              std::size_t stride, std::size_t rows,
                              const std::uint8_t* thr,
                              std::uint8_t* codes) {
  switch (tier) {
    case KernelTier::kAvx2:
      detail::encode_codebook_avx2(stage, stride, rows, thr, codes);
      break;
    case KernelTier::kSsse3:
      detail::encode_codebook_ssse3(stage, stride, rows, thr, codes);
      break;
    case KernelTier::kScalar:
      detail::encode_codebook_scalar(stage, stride, 0, rows, thr, codes);
      break;
  }
}

/// Falls back to the next lower tier until one is available (scalar
/// always is).
inline KernelTier clamp_available(KernelTier tier) {
  while (!encoder_tier_available(tier))
    tier = static_cast<KernelTier>(static_cast<int>(tier) - 1);
  return tier;
}

/// Sizes `out` for a batch (capacity-reusing).
inline void size_output(const EncoderBank& bank, std::size_t rows,
                        EncodedBatch& out) {
  out.rows = rows;
  out.ncodebooks = bank.ncodebooks;
  out.codes.resize(rows * static_cast<std::size_t>(bank.ncodebooks));
}

/// Staging-column stride for a batch of `rows`: whole cache lines, and
/// an odd number of them. The gather scatters one byte into every
/// staged column per input row; with a power-of-2 stride (e.g. 1024
/// rows) all columns alias onto a handful of L1 sets and the sweep
/// thrashes — an odd line count walks every set instead.
inline std::size_t stage_stride(std::size_t rows) {
  std::size_t stride = (rows + 63) & ~static_cast<std::size_t>(63);
  if ((stride / 64) % 2 == 0) stride += 64;
  return stride;
}

/// Shared shell of the two encode_batch_packed fronts: sizes the output
/// and staging tile (capacity-reusing), runs the caller's gather sweep,
/// then the per-codebook traversal. `tier` must already be clamped to
/// an available tier. The staging tile holds kLevels columns per
/// codebook: column (c * kLevels + l) at
/// stage[(c * kLevels + l) * stride + n].
template <class GatherRow>
void encode_batch_shell(const EncoderBank& bank, std::size_t rows,
                        KernelTier tier, EncodeScratch& scratch,
                        EncodedBatch& out, GatherRow&& gather_row) {
  const int ncb = bank.ncodebooks;
  size_output(bank, rows, out);
  if (rows == 0 || ncb == 0) return;

  const std::size_t cols_per_cb =
      static_cast<std::size_t>(EncoderBank::kLevels);
  const std::size_t stride = stage_stride(rows);
  scratch.stage.resize(stride * cols_per_cb *
                       static_cast<std::size_t>(ncb));
  std::uint8_t* stage = scratch.stage.data();

  // Gather: one sweep over the input rows fills every codebook's split
  // columns (4 bytes per codebook per row) — the only pass that touches
  // the activation matrix.
  for (std::size_t n = 0; n < rows; ++n) gather_row(n, stage, stride);

  // Traverse: per codebook, a branchless tournament over its 4 staged
  // columns, 16/32 rows per iteration in the SIMD tiers.
  for (int c = 0; c < ncb; ++c)
    traverse_codebook(
        tier, stage + static_cast<std::size_t>(c) * cols_per_cb * stride,
        stride, rows, bank.codebook_thresholds(c),
        out.codes.data() + static_cast<std::size_t>(c) * rows);
}

#if defined(SSMA_TRACE_ENABLED)
/// Records one encoder dispatch at scope exit — covers both the
/// windowed early return and the staged-shell path. Bytes counted are
/// the threshold-compare bytes the tree walk touches: kLevels per
/// row x codebook.
struct EncodeProfileScope {
  int tier;
  std::uint64_t rows;
  std::uint64_t bytes;
  std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();

  ~EncodeProfileScope() {
    telemetry::record_encode_dispatch(
        tier, rows, bytes,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
  }
};
#endif

}  // namespace

void encode_batch_packed(const EncoderBank& bank,
                         const QuantizedActivations& q, KernelTier tier,
                         EncodeScratch& scratch, EncodedBatch& out) {
  SSMA_CHECK(q.cols == static_cast<std::size_t>(bank.total_dims));
  const int ncb = bank.ncodebooks;
  const std::int32_t* dims = bank.split_dims.data();
  const std::uint8_t* src = q.codes.data();
  const std::size_t cols = q.cols;
  tier = clamp_available(tier);
#if defined(SSMA_TRACE_ENABLED)
  const EncodeProfileScope prof{
      static_cast<int>(tier), q.rows,
      static_cast<std::uint64_t>(q.rows) *
          static_cast<std::uint64_t>(ncb) * EncoderBank::kLevels};
#endif
  if (bank.windowed && tier != KernelTier::kScalar && q.rows > 0) {
    // SIMD tiers with an eligible bank skip the staging tile entirely:
    // per codebook, 16-byte window loads + pshufb pick the split bytes
    // straight out of the rows (see EncoderBank::windowed).
    size_output(bank, q.rows, out);
    for (int c = 0; c < ncb; ++c) {
      const std::uint8_t* win =
          src + static_cast<std::size_t>(bank.window_off[c]);
      std::uint8_t* codes =
          out.codes.data() + static_cast<std::size_t>(c) * q.rows;
      if (tier == KernelTier::kAvx2)
        detail::encode_codebook_windowed_avx2(win, cols, q.rows,
                                              bank.pick_mask(c),
                                              bank.codebook_thresholds(c),
                                              codes);
      else
        detail::encode_codebook_windowed_ssse3(
            win, cols, q.rows, bank.pick_mask(c),
            bank.codebook_thresholds(c), codes);
    }
    return;
  }
  encode_batch_shell(
      bank, q.rows, tier, scratch, out,
      [&](std::size_t n, std::uint8_t* stage, std::size_t stride) {
        const std::uint8_t* row = src + n * cols;
        for (int c = 0; c < ncb; ++c) {
          std::uint8_t* col =
              stage + (static_cast<std::size_t>(c) * EncoderBank::kLevels) *
                          stride +
              n;
          for (int l = 0; l < EncoderBank::kLevels; ++l)
            col[static_cast<std::size_t>(l) * stride] =
                row[dims[static_cast<std::size_t>(l) * ncb + c]];
        }
      });
}

void encode_batch_packed(const EncoderBank& bank, const Matrix& x,
                         float scale, KernelTier tier,
                         EncodeScratch& scratch, EncodedBatch& out) {
  SSMA_CHECK(x.cols() == static_cast<std::size_t>(bank.total_dims));
  SSMA_CHECK(scale > 0.0f);
  const int ncb = bank.ncodebooks;
  const std::int32_t* dims = bank.split_dims.data();
  const float* src = x.data();
  const std::size_t cols = x.cols();
  tier = clamp_available(tier);
#if defined(SSMA_TRACE_ENABLED)
  const EncodeProfileScope prof{
      static_cast<int>(tier), x.rows(),
      static_cast<std::uint64_t>(x.rows()) *
          static_cast<std::uint64_t>(ncb) * EncoderBank::kLevels};
#endif
  encode_batch_shell(
      bank, x.rows(), tier, scratch, out,
      [&](std::size_t n, std::uint8_t* stage, std::size_t stride) {
        const float* row = src + n * cols;
        for (int c = 0; c < ncb; ++c) {
          std::uint8_t* col =
              stage + (static_cast<std::size_t>(c) * EncoderBank::kLevels) *
                          stride +
              n;
          for (int l = 0; l < EncoderBank::kLevels; ++l) {
            // Exactly quantize_activations' arithmetic, applied only to
            // the gathered element — fused paths must produce
            // bit-identical codes.
            const double v = static_cast<double>(
                                 row[dims[static_cast<std::size_t>(l) * ncb +
                                          c]]) /
                             scale;
            col[static_cast<std::size_t>(l) * stride] =
                saturate_uint8(round_half_away(v));
          }
        }
      });
}

EncodedBatch encode_batch_packed(const EncoderBank& bank,
                                 const QuantizedActivations& q) {
  EncodeScratch scratch;
  EncodedBatch out;
  encode_batch_packed(bank, q, select_encoder_tier(), scratch, out);
  return out;
}

}  // namespace ssma::maddness
