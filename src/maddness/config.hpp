// Configuration for MADDNESS approximate matrix multiplication as mapped
// onto the proposed accelerator (Fig. 3): each codebook handles one input
// channel's 3x3 patch (9 dims) and corresponds to one compute block.
#pragma once

#include "ppa/tech_constants.hpp"
#include "util/check.hpp"

namespace ssma::maddness {

/// How prototypes are derived after the hash tree is learned.
enum class PrototypeOpt {
  kBucketMeans,  ///< per-leaf mean of assigned training vectors
  kRidgeJoint,   ///< global ridge-regression refit (MADDNESS §4.2 style):
                 ///< prototypes gain support over the full input dimension
};

struct Config {
  int ncodebooks = 1;                      ///< M subspaces == NS blocks
  int subvec_dim = ppa::kSubvectorDim;     ///< dims per subspace (9)
  int nlevels = ppa::kTreeLevels;          ///< 4 -> K = 16 prototypes
  PrototypeOpt proto_opt = PrototypeOpt::kBucketMeans;
  double ridge_lambda = 1.0;
  bool per_column_lut_scale = true;  ///< per-output-column INT8 scales
  /// Activation-scale calibration: clip at this percentile of the
  /// training activations (100 = plain max). Clipping spends the uint8
  /// range on the bulk of the distribution instead of outliers.
  double act_clip_percentile = 99.7;
  /// LUT entry precision in bits (paper evaluates INT8; [21] adjusts
  /// between INT4 and INT32 — Table II note 3). Values below 8 use the
  /// same 8-bit SRAM columns with the upper bits as sign extension.
  int lut_bits = 8;

  int nprototypes() const { return 1 << nlevels; }
  int total_dims() const { return ncodebooks * subvec_dim; }

  void validate() const {
    SSMA_CHECK(ncodebooks >= 1);
    SSMA_CHECK(subvec_dim >= 1);
    SSMA_CHECK(nlevels >= 1 && nlevels <= 8);
    SSMA_CHECK(ridge_lambda >= 0.0);
    SSMA_CHECK(act_clip_percentile > 0.0 && act_clip_percentile <= 100.0);
    SSMA_CHECK_MSG(lut_bits >= 2 && lut_bits <= 8,
                   "hardware LUT words are at most 8 bits");
    // The software decode accumulates in int32 and saturates once to the
    // 16-bit output rail (pipeline-accumulate-then-clamp), so large
    // codebook counts clamp instead of wrapping. Beyond 258 codebooks a
    // worst-case (all +/-127) sum exceeds int16 and the clamp can
    // engage; the event-driven hardware model keeps the paper's 16-bit
    // wraparound rail and is only bit-exact below that threshold. Cap at
    // a sanity bound rather than the old hard 16-bit limit.
    SSMA_CHECK_MSG(ncodebooks <= 4096,
                   "implausible codebook count (tiling/accumulator sanity "
                   "bound)");
  }
};

}  // namespace ssma::maddness
