// SSSE3 tier of the packed LUT kernel: the XMM-width sibling of the AVX2
// tier (see lut_kernel_avx2.cpp for the scheme). One pshufb gathers 16
// rows; sign extension uses the SSE2 unpack+arithmetic-shift idiom since
// pmovsxbw is SSE4.1. Same chunked int16 -> int32 -> saturate-once
// contract, bit-identical to the reference kernel.
#include <algorithm>

#include "maddness/lut_kernel.hpp"

#if defined(__SSSE3__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__SSSE3__)

bool ssse3_compiled_in() { return true; }

void apply_packed_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                        std::int16_t* out) {
  constexpr std::size_t kRowBlock = 16;
  constexpr int kOutBlock = 4;
  constexpr int kChunk = 256;
  const int nout = lut.nout;
  const int ncb = lut.ncodebooks;
  const std::size_t rows = enc.rows;
  const std::size_t full = rows - rows % kRowBlock;
  alignas(16) std::int16_t lanes[kRowBlock];
  const __m128i zero = _mm_setzero_si128();
  for (std::size_t n0 = 0; n0 < full; n0 += kRowBlock) {
    for (int o0 = 0; o0 < nout; o0 += kOutBlock) {
      const int ob = std::min(kOutBlock, nout - o0);
      const auto accumulate_chunk = [&](int c0, int c_end,
                                        __m128i acc16[][2]) {
        // Codebook pairs: interleave the two gathered vectors and let
        // pmaddubsw against all-ones sum each (A_i, B_i) byte pair into
        // int16 — exact, since |A| + |B| <= 256 never saturates (see
        // the AVX2 tier for the full argument).
        const __m128i ones = _mm_set1_epi8(1);
        int c = c0;
        for (; c + 1 < c_end; c += 2) {
          const __m128i codes_a = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c) + n0));
          const __m128i codes_b = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c + 1) + n0));
          for (int j = 0; j < ob; ++j) {
            const __m128i table_a = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j)));
            const __m128i table_b = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(
                    lut.table_ptr(c + 1, o0 + j)));
            const __m128i va = _mm_shuffle_epi8(table_a, codes_a);
            const __m128i vb = _mm_shuffle_epi8(table_b, codes_b);
            acc16[j][0] = _mm_add_epi16(
                acc16[j][0],
                _mm_maddubs_epi16(ones, _mm_unpacklo_epi8(va, vb)));
            acc16[j][1] = _mm_add_epi16(
                acc16[j][1],
                _mm_maddubs_epi16(ones, _mm_unpackhi_epi8(va, vb)));
          }
        }
        if (c < c_end) {
          const __m128i codes = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c) + n0));
          for (int j = 0; j < ob; ++j) {
            const __m128i table = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j)));
            const __m128i v8 = _mm_shuffle_epi8(table, codes);
            // unpack(zero, v) places v's bytes in each word's high half;
            // >>a 8 sign-extends, keeping lane order 0..7 / 8..15.
            acc16[j][0] = _mm_add_epi16(
                acc16[j][0],
                _mm_srai_epi16(_mm_unpacklo_epi8(zero, v8), 8));
            acc16[j][1] = _mm_add_epi16(
                acc16[j][1],
                _mm_srai_epi16(_mm_unpackhi_epi8(zero, v8), 8));
          }
        }
      };
      if (ncb <= kChunk) {
        // One chunk cannot wrap int16: the accumulators already hold the
        // exact int32 totals, clamped-by-construction.
        __m128i acc16[kOutBlock][2];
        for (int j = 0; j < ob; ++j) acc16[j][0] = acc16[j][1] = zero;
        accumulate_chunk(0, ncb, acc16);
        if (ob == kOutBlock) {
          // Transpose to per-row output quads and store 8 bytes per row
          // (see the AVX2 tier) — acc16[j][h] holds rows 8h..8h+7 in
          // order, so the unpacked quads come out row-sequential.
          for (int h = 0; h < 2; ++h) {
            const std::size_t base = n0 + 8 * static_cast<std::size_t>(h);
            const __m128i t01l =
                _mm_unpacklo_epi16(acc16[0][h], acc16[1][h]);
            const __m128i t01h =
                _mm_unpackhi_epi16(acc16[0][h], acc16[1][h]);
            const __m128i t23l =
                _mm_unpacklo_epi16(acc16[2][h], acc16[3][h]);
            const __m128i t23h =
                _mm_unpackhi_epi16(acc16[2][h], acc16[3][h]);
            const __m128i quads[4] = {_mm_unpacklo_epi32(t01l, t23l),
                                      _mm_unpackhi_epi32(t01l, t23l),
                                      _mm_unpacklo_epi32(t01h, t23h),
                                      _mm_unpackhi_epi32(t01h, t23h)};
            for (int g = 0; g < 4; ++g) {
              const std::size_t r = base + 2 * static_cast<std::size_t>(g);
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + r * static_cast<std::size_t>(nout) + o0),
                  quads[g]);
              _mm_storel_epi64(
                  reinterpret_cast<__m128i*>(
                      out + (r + 1) * static_cast<std::size_t>(nout) + o0),
                  _mm_unpackhi_epi64(quads[g], quads[g]));
            }
          }
        } else {
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                              acc16[j][h]);
              for (int i = 0; i < 8; ++i)
                out[(n0 + h * 8 + i) * static_cast<std::size_t>(nout) +
                    o0 + j] = lanes[i];
            }
        }
      } else {
        std::int32_t acc32[kOutBlock][kRowBlock] = {};
        for (int c0 = 0; c0 < ncb; c0 += kChunk) {
          __m128i acc16[kOutBlock][2];
          for (int j = 0; j < ob; ++j) acc16[j][0] = acc16[j][1] = zero;
          accumulate_chunk(c0, std::min(ncb, c0 + kChunk), acc16);
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                              acc16[j][h]);
              std::int32_t* dst = acc32[j] + h * 8;
              for (int i = 0; i < 8; ++i) dst[i] += lanes[i];
            }
        }
        for (int j = 0; j < ob; ++j)
          for (std::size_t i = 0; i < kRowBlock; ++i)
            out[(n0 + i) * static_cast<std::size_t>(nout) + o0 + j] =
                static_cast<std::int16_t>(
                    std::clamp<std::int32_t>(acc32[j][i], -32768, 32767));
      }
    }
  }
  apply_packed_scalar_rows(lut, enc, full, out);
}

#else  // !defined(__SSSE3__)

bool ssse3_compiled_in() { return false; }

void apply_packed_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                        std::int16_t* out) {
  apply_packed_scalar(lut, enc, out);
}

#endif

}  // namespace ssma::maddness::detail
