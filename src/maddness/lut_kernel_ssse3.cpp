// SSSE3 tier of the packed LUT kernel: the XMM-width sibling of the AVX2
// tier (see lut_kernel_avx2.cpp for the scheme). One pshufb gathers 16
// rows; sign extension uses the SSE2 unpack+arithmetic-shift idiom since
// pmovsxbw is SSE4.1. Same chunked int16 -> int32 -> saturate-once
// contract, bit-identical to the reference kernel.
//
// The tile walk is templated over a sink: the store sink writes int16
// accumulators (classic accumulate), the fused sink runs the stage
// handoff (dequantize -> ReLU -> requantize) on each finished tile and
// writes the next stage's uint8 activations — the accumulators never
// reach memory.
#include <algorithm>
#include <cstring>

#include "maddness/lut_kernel.hpp"

#if defined(__SSSE3__)
#include <immintrin.h>
#endif

namespace ssma::maddness::detail {

#if defined(__SSSE3__)

namespace {

constexpr std::size_t kRowBlock = 16;
constexpr int kOutBlock = 4;
constexpr int kChunk = 256;

/// Classic accumulate: int16 quads / elements land in the int16 output.
struct StoreSink {
  std::int16_t* out;
  std::size_t nout;
  /// `q` holds outputs o0..o0+3 of row `r` in its low 64 bits and of
  /// row `r+1` in its high 64 bits.
  void quad2(std::size_t r, int o0, __m128i q) const {
    std::int16_t* d = out + r * nout + static_cast<std::size_t>(o0);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(d), q);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(d + nout),
                     _mm_unpackhi_epi64(q, q));
  }
  void one16(std::size_t r, int o, std::int16_t v) const {
    out[r * nout + static_cast<std::size_t>(o)] = v;
  }
  void one32(std::size_t r, int o, std::int32_t v) const {
    one16(r, o, saturate_acc16(v));
  }
};

/// Fused stage handoff: each finished int16 quad dequantizes, rectifies
/// and requantizes in-register into the next stage's uint8 activation
/// row, bit-identical to fused_requantize without its double divide:
/// a reciprocal multiply proposes a candidate within +-1 and one
/// exact-boundary comparison step corrects it. See the AVX2 tier's
/// FusedSink for the gap-lemma argument that makes the boundary
/// comparisons ((k +- 0.5) * next_scale, exact in double) decide the
/// reference's round-half-away of fl64(y / next_scale) exactly. All
/// vector ops used here are SSE2-level, so the SSSE3 tier qualifies.
struct FusedSink {
  const LutBankPacked* lut;
  std::uint8_t* dst;
  float next_scale;
  float inv_next;  ///< fl(1/next_scale); next_scale is a normal float
  std::size_t nout;

  /// Exact-boundary correction for one pair of lanes: c integral in
  /// [0, 255], y the dequantized pair, sd double(next_scale). Result is
  /// integral in [-1, 256], so cvttpd is exact.
  static __m128i fixup(__m128d c, __m128d y, __m128d sd) {
    const __m128d half = _mm_set1_pd(0.5);
    const __m128d one = _mm_set1_pd(1.0);
    const __m128d hi = _mm_mul_pd(_mm_add_pd(c, half), sd);
    const __m128d lo = _mm_mul_pd(_mm_sub_pd(c, half), sd);
    c = _mm_add_pd(c, _mm_and_pd(_mm_cmpge_pd(y, hi), one));
    c = _mm_sub_pd(c, _mm_and_pd(_mm_cmplt_pd(y, lo), one));
    return _mm_cvttpd_epi32(c);
  }

  /// Four lanes: candidates from one reciprocal multiply (clamped to
  /// [0, 255]; the clamp absorbs negatives and +-inf overflows, and no
  /// lane can be NaN since inv_next is finite), then per-pair fixup.
  __m128i quad(__m128 y) const {
    const __m128 qf = _mm_min_ps(
        _mm_max_ps(_mm_mul_ps(y, _mm_set1_ps(inv_next)),
                   _mm_setzero_ps()),
        _mm_set1_ps(255.0f));
    const __m128i c = _mm_cvtps_epi32(qf);
    const __m128d sd = _mm_set1_pd(static_cast<double>(next_scale));
    return _mm_unpacklo_epi64(
        fixup(_mm_cvtepi32_pd(c), _mm_cvtps_pd(y), sd),
        fixup(_mm_cvtepi32_pd(_mm_srli_si128(c, 8)),
              _mm_cvtps_pd(_mm_movehl_ps(y, y)), sd));
  }

  /// Requantizes rows r and r+1 (outputs o0..o0+3 each, packed in q's
  /// two 64-bit halves) in one shot: the column scales, sign extension
  /// and pack chain are shared across the row pair.
  void quad2(std::size_t r, int o0, __m128i q) const {
    const __m128 scales =
        lut->per_column_scale
            ? _mm_loadu_ps(lut->scales.data() + o0)
            : _mm_set1_ps(lut->scales[0]);
    const __m128i w_lo = _mm_srai_epi32(_mm_unpacklo_epi16(q, q), 16);
    const __m128i w_hi = _mm_srai_epi32(_mm_unpackhi_epi16(q, q), 16);
    const __m128i r0 = quad(_mm_mul_ps(_mm_cvtepi32_ps(w_lo), scales));
    const __m128i r1 = quad(_mm_mul_ps(_mm_cvtepi32_ps(w_hi), scales));
    const __m128i p16 = _mm_packs_epi32(r0, r1);     // in [-1, 256]: exact
    const __m128i p8 = _mm_packus_epi16(p16, p16);   // the [0, 255] clamp
    std::uint8_t* d = dst + r * nout + static_cast<std::size_t>(o0);
    const int b0 = _mm_cvtsi128_si32(p8);
    const int b1 = _mm_cvtsi128_si32(_mm_srli_si128(p8, 4));
    std::memcpy(d, &b0, 4);
    std::memcpy(d + nout, &b1, 4);
  }
  void one16(std::size_t r, int o, std::int16_t v) const {
    dst[r * nout + static_cast<std::size_t>(o)] =
        fused_requantize(v, packed_scale(*lut, o), next_scale);
  }
  void one32(std::size_t r, int o, std::int32_t v) const {
    one16(r, o, saturate_acc16(v));
  }
};

template <class Sink>
void ssse3_impl(const LutBankPacked& lut, const EncodedBatch& enc,
                std::size_t full, Sink sink) {
  const int nout = lut.nout;
  const int ncb = lut.ncodebooks;
  alignas(16) std::int16_t lanes[kRowBlock];
  const __m128i zero = _mm_setzero_si128();
  for (std::size_t n0 = 0; n0 < full; n0 += kRowBlock) {
    for (int o0 = 0; o0 < nout; o0 += kOutBlock) {
      const int ob = std::min(kOutBlock, nout - o0);
      const auto accumulate_chunk = [&](int c0, int c_end,
                                        __m128i acc16[][2]) {
        // Codebook pairs: interleave the two gathered vectors and let
        // pmaddubsw against all-ones sum each (A_i, B_i) byte pair into
        // int16 — exact, since |A| + |B| <= 256 never saturates (see
        // the AVX2 tier for the full argument).
        const __m128i ones = _mm_set1_epi8(1);
        int c = c0;
        for (; c + 1 < c_end; c += 2) {
          const __m128i codes_a = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c) + n0));
          const __m128i codes_b = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c + 1) + n0));
          for (int j = 0; j < ob; ++j) {
            const __m128i table_a = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j)));
            const __m128i table_b = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(
                    lut.table_ptr(c + 1, o0 + j)));
            const __m128i va = _mm_shuffle_epi8(table_a, codes_a);
            const __m128i vb = _mm_shuffle_epi8(table_b, codes_b);
            acc16[j][0] = _mm_add_epi16(
                acc16[j][0],
                _mm_maddubs_epi16(ones, _mm_unpacklo_epi8(va, vb)));
            acc16[j][1] = _mm_add_epi16(
                acc16[j][1],
                _mm_maddubs_epi16(ones, _mm_unpackhi_epi8(va, vb)));
          }
        }
        if (c < c_end) {
          const __m128i codes = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(enc.codebook(c) + n0));
          for (int j = 0; j < ob; ++j) {
            const __m128i table = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(lut.table_ptr(c, o0 + j)));
            const __m128i v8 = _mm_shuffle_epi8(table, codes);
            // unpack(zero, v) places v's bytes in each word's high half;
            // >>a 8 sign-extends, keeping lane order 0..7 / 8..15.
            acc16[j][0] = _mm_add_epi16(
                acc16[j][0],
                _mm_srai_epi16(_mm_unpacklo_epi8(zero, v8), 8));
            acc16[j][1] = _mm_add_epi16(
                acc16[j][1],
                _mm_srai_epi16(_mm_unpackhi_epi8(zero, v8), 8));
          }
        }
      };
      if (ncb <= kChunk) {
        // One chunk cannot wrap int16: the accumulators already hold the
        // exact int32 totals, clamped-by-construction.
        __m128i acc16[kOutBlock][2];
        for (int j = 0; j < ob; ++j) acc16[j][0] = acc16[j][1] = zero;
        accumulate_chunk(0, ncb, acc16);
        if (ob == kOutBlock) {
          // Transpose to per-row output quads and hand each to the sink
          // as one 64-bit lane (see the AVX2 tier) — acc16[j][h] holds
          // rows 8h..8h+7 in order, so the unpacked quads come out
          // row-sequential.
          for (int h = 0; h < 2; ++h) {
            const std::size_t base = n0 + 8 * static_cast<std::size_t>(h);
            const __m128i t01l =
                _mm_unpacklo_epi16(acc16[0][h], acc16[1][h]);
            const __m128i t01h =
                _mm_unpackhi_epi16(acc16[0][h], acc16[1][h]);
            const __m128i t23l =
                _mm_unpacklo_epi16(acc16[2][h], acc16[3][h]);
            const __m128i t23h =
                _mm_unpackhi_epi16(acc16[2][h], acc16[3][h]);
            const __m128i quads[4] = {_mm_unpacklo_epi32(t01l, t23l),
                                      _mm_unpackhi_epi32(t01l, t23l),
                                      _mm_unpacklo_epi32(t01h, t23h),
                                      _mm_unpackhi_epi32(t01h, t23h)};
            for (int g = 0; g < 4; ++g)
              sink.quad2(base + 2 * static_cast<std::size_t>(g), o0,
                         quads[g]);
          }
        } else {
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                              acc16[j][h]);
              for (int i = 0; i < 8; ++i)
                sink.one16(n0 + static_cast<std::size_t>(h) * 8 +
                               static_cast<std::size_t>(i),
                           o0 + j, lanes[i]);
            }
        }
      } else {
        std::int32_t acc32[kOutBlock][kRowBlock] = {};
        for (int c0 = 0; c0 < ncb; c0 += kChunk) {
          __m128i acc16[kOutBlock][2];
          for (int j = 0; j < ob; ++j) acc16[j][0] = acc16[j][1] = zero;
          accumulate_chunk(c0, std::min(ncb, c0 + kChunk), acc16);
          for (int j = 0; j < ob; ++j)
            for (int h = 0; h < 2; ++h) {
              _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                              acc16[j][h]);
              std::int32_t* dst32 = acc32[j] + h * 8;
              for (int i = 0; i < 8; ++i) dst32[i] += lanes[i];
            }
        }
        for (int j = 0; j < ob; ++j)
          for (std::size_t i = 0; i < kRowBlock; ++i)
            sink.one32(n0 + i, o0 + j, acc32[j][i]);
      }
    }
  }
}

}  // namespace

bool ssse3_compiled_in() { return true; }

void apply_packed_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                        std::int16_t* out) {
  const std::size_t full = enc.rows - enc.rows % kRowBlock;
  ssse3_impl(lut, enc, full,
             StoreSink{out, static_cast<std::size_t>(lut.nout)});
  apply_packed_scalar_rows(lut, enc, full, out);
}

void apply_fused_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                       const FusedEpilogue& ep, std::uint8_t* dst) {
  const std::size_t full = enc.rows - enc.rows % kRowBlock;
  ssse3_impl(lut, enc, full,
             FusedSink{&lut, dst, ep.next_scale, 1.0f / ep.next_scale,
                       static_cast<std::size_t>(lut.nout)});
  apply_fused_scalar_rows(lut, enc, ep, full, dst);
}

#else  // !defined(__SSSE3__)

bool ssse3_compiled_in() { return false; }

void apply_packed_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                        std::int16_t* out) {
  apply_packed_scalar(lut, enc, out);
}

void apply_fused_ssse3(const LutBankPacked& lut, const EncodedBatch& enc,
                       const FusedEpilogue& ep, std::uint8_t* dst) {
  apply_fused_scalar(lut, enc, ep, dst);
}

#endif

}  // namespace ssma::maddness::detail
