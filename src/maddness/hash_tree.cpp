#include "maddness/hash_tree.hpp"

#include "util/check.hpp"

namespace ssma::maddness {

HashTree::HashTree() {
  split_dims_.fill(0);
  thresholds_.fill(128);
}

int HashTree::split_dim(int level) const {
  SSMA_CHECK(level >= 0 && level < kLevels);
  return split_dims_[level];
}

void HashTree::set_split_dim(int level, int dim) {
  SSMA_CHECK(level >= 0 && level < kLevels);
  SSMA_CHECK(dim >= 0);
  split_dims_[level] = dim;
}

std::uint8_t HashTree::threshold(int level, int node) const {
  SSMA_CHECK(level >= 0 && level < kLevels);
  SSMA_CHECK(node >= 0 && node < (1 << level));
  return thresholds_[(1 << level) - 1 + node];
}

void HashTree::set_threshold(int level, int node, std::uint8_t t) {
  SSMA_CHECK(level >= 0 && level < kLevels);
  SSMA_CHECK(node >= 0 && node < (1 << level));
  thresholds_[(1 << level) - 1 + node] = t;
}

int HashTree::encode(const std::uint8_t* subvec) const {
  int node = 0;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint8_t x = subvec[split_dims_[level]];
    const std::uint8_t t = thresholds_[(1 << level) - 1 + node];
    node = 2 * node + (x >= t ? 1 : 0);
  }
  return node;
}

std::array<int, HashTree::kLevels> HashTree::encode_depths(
    const std::uint8_t* subvec) const {
  std::array<int, kLevels> depths{};
  int node = 0;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint8_t x = subvec[split_dims_[level]];
    const std::uint8_t t = thresholds_[(1 << level) - 1 + node];
    depths[level] = compare_depth(x, t);
    node = 2 * node + (x >= t ? 1 : 0);
  }
  return depths;
}

int HashTree::compare_depth(std::uint8_t x, std::uint8_t t) {
  // The dual-rail DLC resolves as soon as a bit differs, scanning from the
  // MSB; each additional level of equal high bits lengthens the discharge
  // path by one cell (Sec. III-B). Equal operands ripple the full depth.
  for (int bit = 7; bit >= 0; --bit) {
    const int xb = (x >> bit) & 1;
    const int tb = (t >> bit) & 1;
    if (xb != tb) return 8 - bit;
  }
  return 8;
}

}  // namespace ssma::maddness
