#include "maddness/tree_learner.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::maddness {

namespace {

/// Quantizes a real-valued threshold into the uint8 comparison domain such
/// that the hardware predicate (x >= t) reproduces the intended split for
/// integer-valued data: use ceil, so values strictly below the real
/// threshold stay on the left.
std::uint8_t quantize_threshold(double t) {
  return saturate_uint8(static_cast<long long>(std::ceil(t - 1e-9)));
}

}  // namespace

HashTree learn_hash_tree(const Matrix& x, TreeLearnStats* stats) {
  SSMA_CHECK(x.rows() >= 1);
  const int d = static_cast<int>(x.cols());

  HashTree tree;
  std::vector<std::size_t> all(x.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<Bucket> buckets;
  buckets.emplace_back(x, std::move(all));

  if (stats) stats->initial_sse = buckets[0].sse(x);

  for (int level = 0; level < HashTree::kLevels; ++level) {
    // Choose the dimension minimizing total loss across current buckets.
    double best_total = std::numeric_limits<double>::infinity();
    int best_dim = 0;
    std::vector<SplitChoice> best_choices;
    for (int dim = 0; dim < d; ++dim) {
      double total = 0.0;
      std::vector<SplitChoice> choices;
      choices.reserve(buckets.size());
      for (const auto& b : buckets) {
        choices.push_back(best_split_on_dim(x, b, dim));
        total += choices.back().loss;
      }
      if (total < best_total) {
        best_total = total;
        best_dim = dim;
        best_choices = std::move(choices);
      }
    }

    tree.set_split_dim(level, best_dim);

    // Split every bucket with its own (quantized) threshold.
    std::vector<Bucket> next;
    next.reserve(buckets.size() * 2);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const std::uint8_t tq = quantize_threshold(best_choices[b].threshold);
      tree.set_threshold(level, static_cast<int>(b), tq);
      auto [left, right] =
          split_bucket(x, buckets[b], best_dim, static_cast<double>(tq));
      next.push_back(std::move(left));
      next.push_back(std::move(right));
    }
    buckets = std::move(next);
  }

  if (stats) {
    stats->final_sse = 0.0;
    for (const auto& b : buckets) stats->final_sse += b.sse(x);
    stats->chosen_dims = tree.split_dims();
  }
  return tree;
}

}  // namespace ssma::maddness
