// Alternative encoding functions from the MADDNESS-accelerator lineage
// (Sec. II-B): PECAN uses Manhattan distance, LUT-NN Euclidean distance —
// both full-search over the K prototypes instead of a decision tree. They
// trade encoding cost for assignment quality; we implement them for the
// related-work comparison and as an accuracy upper bound for PQ.
//
// Also provides a k-means (Lloyd) prototype learner, the centroid-learning
// approach those works build on.
#pragma once

#include <cstdint>
#include <vector>

#include "maddness/config.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace ssma::maddness {

enum class DistanceKind { kManhattan, kEuclidean };

/// Full-search encoder over per-codebook prototype sets.
/// `prototypes` is K x subvec_dim for one codebook (float, same domain as
/// the data). Returns argmin-distance index; ties break to the lowest
/// index (deterministic).
int full_search_encode(const Matrix& prototypes, const float* subvec,
                       DistanceKind kind);

/// Encodes all rows of `x` (N x subvec_dim) against one codebook.
std::vector<std::uint8_t> full_search_encode_all(const Matrix& prototypes,
                                                 const Matrix& x,
                                                 DistanceKind kind);

/// Lloyd's k-means on the rows of `x`, k clusters, fixed iteration count.
/// Initialization: k-means++ style seeding from `rng`. Returns k x D
/// centroid matrix; empty clusters are re-seeded to the farthest point.
Matrix kmeans(const Matrix& x, int k, int iters, Rng& rng);

/// Mean per-vector quantization SSE for an assignment under `kind`'s
/// reconstruction (always Euclidean SSE; `kind` only picks assignment).
double assignment_sse(const Matrix& prototypes, const Matrix& x,
                      const std::vector<std::uint8_t>& codes);

}  // namespace ssma::maddness
