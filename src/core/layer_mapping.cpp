#include "core/layer_mapping.hpp"

namespace ssma::core {

int TilePlan::input_tiles() const {
  return (layer_codebooks + hw_ns - 1) / hw_ns;
}

int TilePlan::output_tiles() const {
  return (layer_outputs + hw_ndec - 1) / hw_ndec;
}

TilePlan plan_tiles(int layer_codebooks, int layer_outputs, int hw_ns,
                    int hw_ndec) {
  SSMA_CHECK(layer_codebooks >= 1 && layer_outputs >= 1);
  SSMA_CHECK(hw_ns >= 1 && hw_ndec >= 1);
  TilePlan plan;
  plan.hw_ns = hw_ns;
  plan.hw_ndec = hw_ndec;
  plan.layer_codebooks = layer_codebooks;
  plan.layer_outputs = layer_outputs;

  for (int lane_lo = 0; lane_lo < layer_outputs; lane_lo += hw_ndec) {
    const int lane_n = std::min(hw_ndec, layer_outputs - lane_lo);
    for (int block_lo = 0; block_lo < layer_codebooks; block_lo += hw_ns) {
      Tile t;
      t.block_lo = block_lo;
      t.block_n = std::min(hw_ns, layer_codebooks - block_lo);
      t.lane_lo = lane_lo;
      t.lane_n = lane_n;
      t.first_input_tile = (block_lo == 0);
      plan.tiles.push_back(t);
    }
  }
  return plan;
}

}  // namespace ssma::core
