// Top-level public API: program a trained MADDNESS operator onto the
// simulated macro and run workloads through it, with automatic tiling
// when the layer exceeds the macro's NS/Ndec, returning bit-exact outputs
// plus a PPA report. This is the entry point a downstream user adopts.
#pragma once

#include <memory>

#include "core/layer_mapping.hpp"
#include "core/ppa_report.hpp"
#include "maddness/amm.hpp"
#include "sim/macro.hpp"

namespace ssma::core {

struct AcceleratorOptions {
  int ndec = 16;
  int ns = 32;
  ppa::OperatingPoint op = ppa::nominal_05v();
};

struct AcceleratorResult {
  /// outputs[token * nout + o], identical to Amm::apply_int16.
  std::vector<std::int16_t> outputs;
  PpaReport report;
  TilePlan plan;
};

class Accelerator {
 public:
  explicit Accelerator(const AcceleratorOptions& opts);

  const AcceleratorOptions& options() const { return opts_; }

  /// Runs the full (possibly tiled) workload of a trained AMM operator on
  /// the event-driven macro. `bias_int16` (optional, size nout) is
  /// injected into the first input tile of each output tile.
  AcceleratorResult run(const maddness::Amm& amm,
                        const maddness::QuantizedActivations& activations,
                        const std::vector<std::int16_t>* bias_int16 = nullptr);

  /// Closed-form report for this configuration (0 = average envelope,
  /// 1/8 = best/worst data).
  PpaReport analytic_report(int dlc_depth = 0) const;

 private:
  AcceleratorOptions opts_;
};

}  // namespace ssma::core
