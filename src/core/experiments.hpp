// Shared experiment runners behind the benchmark harness: each function
// regenerates the data for one of the paper's tables/figures, combining
// the analytic model (wide sweeps) with event-driven simulation anchors.
#pragma once

#include <string>
#include <vector>

#include "ppa/analytic_perf.hpp"
#include "ppa/operating_point.hpp"

namespace ssma::core {

// ------------------------------------------------------------------ Fig. 6

struct Fig6Point {
  double vdd = 0.0;
  ppa::Corner corner = ppa::Corner::TTG;
  double best_tops_per_mm2 = 0.0;
  double worst_tops_per_mm2 = 0.0;
  double avg_tops_per_mm2 = 0.0;
  double best_tops_per_w = 0.0;
  double worst_tops_per_w = 0.0;
  double avg_tops_per_w = 0.0;
};

/// Voltage x corner sweep at the Fig. 6 configuration (Ndec=4, NS=4).
std::vector<Fig6Point> run_fig6_sweep(
    const std::vector<double>& voltages = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0});

/// Paper's published TTG averages for the same sweep (for side-by-side
/// printing in the bench).
struct Fig6Golden {
  double vdd, tops_per_w, tops_per_mm2;
};
std::vector<Fig6Golden> fig6_paper_values();

// ------------------------------------------------------------------ Fig. 7

struct Fig7Breakdown {
  int ndec = 0;
  // (A) energy shares at 0.5 V, NS=32 (measured via event simulation).
  double energy_decoder_share = 0.0;
  double energy_encoder_share = 0.0;
  double energy_other_share = 0.0;
  // (B) block latency [ns].
  double latency_best_ns = 0.0;
  double latency_worst_ns = 0.0;
  double encoder_latency_share_best = 0.0;
  double encoder_latency_share_worst = 0.0;
  // (C) area shares.
  double area_decoder_share = 0.0;
  double area_encoder_share = 0.0;
  double area_other_share = 0.0;
};

/// Runs the Fig. 7 breakdown for one Ndec (NS=32, 0.5 V). Uses the event
/// simulator for the energy shares (random data) and the calibrated
/// model for latency/area.
Fig7Breakdown run_fig7_breakdown(int ndec, int sim_tokens = 24,
                                 int sim_ns = 8);

// ----------------------------------------------------------------- Table I

struct Table1Row {
  int ndec = 0;
  double eff_05v_tops_per_w = 0.0;
  double eff_08v_tops_per_w = 0.0;
  double eff_05v_tops_per_mm2 = 0.0;
  double eff_08v_tops_per_mm2 = 0.0;
};

std::vector<Table1Row> run_table1_sweep(
    const std::vector<int>& ndecs = {4, 8, 16, 32});

struct Table1Golden {
  int ndec;
  double w05, w08, a05, a08;
};
std::vector<Table1Golden> table1_paper_values();

// ---------------------------------------------------------------- Table II

struct Table2Column {
  std::string label;
  std::string mode;
  std::string process;
  std::string supply;
  double area_mm2 = 0.0;
  std::string freq_mhz;
  std::string throughput_tops;
  std::string tops_per_w;
  std::string tops_per_mm2;
  std::string accuracy;
  std::string encoder_fj;
  std::string decoder_fj;
};

/// The proposed design's Table II column, measured: frequencies from
/// best/worst event simulations, efficiencies from the calibrated model.
Table2Column run_table2_proposed(double vdd);

/// Prior-work columns with re-derived 22nm-normalized area efficiency.
std::vector<Table2Column> table2_prior_work();

/// Simulated flagship frequency anchor (event sim, Ndec=16): returns
/// {best_mhz, worst_mhz}. `ns` trades fidelity for runtime (timing is
/// NS-independent in steady state).
std::pair<double, double> simulate_flagship_frequency(double vdd,
                                                      int ns = 8,
                                                      int tokens = 16);

}  // namespace ssma::core
