// Power/performance/area report assembled from a simulator run (or the
// analytic model), in the units the paper reports: MHz, TOPS, TOPS/W,
// TOPS/mm^2, fJ/op, mm^2 — plus the Fig. 7-style breakdown shares.
#pragma once

#include <string>
#include <vector>

#include "ppa/analytic_perf.hpp"
#include "sim/macro.hpp"

namespace ssma::core {

struct PpaReport {
  // Configuration echo.
  int ndec = 0;
  int ns = 0;
  double vdd = 0.0;
  std::string corner;

  // Performance.
  double freq_mhz = 0.0;
  double throughput_tops = 0.0;
  double token_interval_ns = 0.0;

  // Efficiency.
  double tops_per_w = 0.0;
  double tops_per_mm2 = 0.0;
  double energy_per_op_fj = 0.0;

  // Area.
  double core_mm2 = 0.0;
  long long sram_bits = 0;

  // Fig. 7-style shares.
  double energy_decoder_share = 0.0;
  double energy_encoder_share = 0.0;
  double area_decoder_share = 0.0;

  // Bookkeeping.
  long long total_ops = 0;
  double duration_ns = 0.0;
  std::uint64_t events = 0;

  std::string render() const;
};

/// Builds a report from an event-simulator run.
PpaReport make_report(const sim::MacroConfig& cfg,
                      const sim::MacroRunStats& stats, long long ntokens);

/// Builds a report from the closed-form model at a given DLC depth
/// assumption (1 = best, 8 = worst, or the average envelope if depth==0).
PpaReport make_analytic_report(const ppa::MacroConfig& cfg,
                               const ppa::OperatingPoint& op, int dlc_depth);

/// Merges per-shard reports from a pool of macros running in parallel
/// (serve::InferenceServer workers): ops/events/area/SRAM add, aggregate
/// throughput is the sum of shard throughputs, per-op energy and the
/// breakdown shares are recomputed from pooled totals, and duration is
/// the longest shard (wall-clock view of a parallel run). Shards with no
/// completed work contribute only their silicon. Empty input -> default
/// report.
PpaReport merge_reports(const std::vector<PpaReport>& parts);

/// Merges reports of consecutive runs on the SAME macro (a serving
/// shard's batch history): ops/events add, durations add, silicon stays
/// that of one macro, rates combine ops-weighted, per-op energy and
/// shares recompute from pooled totals. Empty input -> default report.
PpaReport merge_sequential_reports(const std::vector<PpaReport>& parts);

}  // namespace ssma::core
