// Maps a MADDNESS-converted layer onto fixed macro dimensions (Fig. 3):
// input channels (codebooks) tile across NS pipeline blocks, weight
// kernels (output columns) tile across Ndec decoder lanes. Input-channel
// tiles chain through partial-sum re-injection; output tiles are
// independent macro passes.
#pragma once

#include <vector>

#include "util/check.hpp"

namespace ssma::core {

struct Tile {
  int block_lo = 0;  ///< first codebook of this tile
  int block_n = 0;   ///< codebooks in this tile (== occupied NS blocks)
  int lane_lo = 0;   ///< first output column
  int lane_n = 0;    ///< output columns (== occupied decoder lanes)
  bool first_input_tile = false;  ///< receives the bias injection
};

struct TilePlan {
  int hw_ns = 0;
  int hw_ndec = 0;
  int layer_codebooks = 0;
  int layer_outputs = 0;
  std::vector<Tile> tiles;  ///< ordered: output-major, input-minor

  int input_tiles() const;
  int output_tiles() const;
};

/// Plans the tiling of a (codebooks x outputs) layer on an (ns x ndec)
/// macro. Partial tiles are allowed (unused blocks/lanes idle).
TilePlan plan_tiles(int layer_codebooks, int layer_outputs, int hw_ns,
                    int hw_ndec);

}  // namespace ssma::core
