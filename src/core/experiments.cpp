#include "core/experiments.hpp"

#include <sstream>

#include "baselines/prior_work.hpp"
#include "ppa/area_model.hpp"
#include "ppa/corner.hpp"
#include "sim/macro.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ssma::core {

namespace {

/// Uniform-threshold trees + constant inputs pin every DLC to depth 1
/// (value 0x00) or depth 8 (value 0x80) — the Fig. 6 / Table II
/// best/worst cases.
std::vector<maddness::HashTree> uniform_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

std::vector<std::vector<std::array<std::int8_t, 16>>> random_luts(
    Rng& rng, int ns, int ndec) {
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& block : luts)
    for (auto& table : block)
      for (auto& e : table)
        e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return luts;
}

std::vector<std::vector<sim::Subvec>> constant_inputs(int ntokens, int ns,
                                                      std::uint8_t value) {
  sim::Subvec sv;
  sv.fill(value);
  return std::vector<std::vector<sim::Subvec>>(
      ntokens, std::vector<sim::Subvec>(ns, sv));
}

std::string fmt(double v, int prec) { return TextTable::num(v, prec); }

}  // namespace

// ------------------------------------------------------------------ Fig. 6

std::vector<Fig6Point> run_fig6_sweep(const std::vector<double>& voltages) {
  std::vector<Fig6Point> points;
  for (double v : voltages) {
    for (ppa::Corner c : {ppa::Corner::TTG, ppa::Corner::FFG,
                          ppa::Corner::SSG, ppa::Corner::SFG,
                          ppa::Corner::FSG}) {
      ppa::AnalyticPerf perf({4, 4}, {v, c, 25.0});
      const auto env = perf.envelope();
      Fig6Point p;
      p.vdd = v;
      p.corner = c;
      p.best_tops_per_mm2 = env.best.tops_per_mm2;
      p.worst_tops_per_mm2 = env.worst.tops_per_mm2;
      p.avg_tops_per_mm2 = env.avg_tops_per_mm2;
      p.best_tops_per_w = env.best.tops_per_w;
      p.worst_tops_per_w = env.worst.tops_per_w;
      p.avg_tops_per_w = env.avg_tops_per_w;
      points.push_back(p);
    }
  }
  return points;
}

std::vector<Fig6Golden> fig6_paper_values() {
  return {{0.5, 164.0, 1.45}, {0.6, 123.0, 3.46}, {0.7, 92.8, 5.94},
          {0.8, 72.2, 8.55},  {0.9, 57.5, 11.03}, {1.0, 46.6, 13.25}};
}

// ------------------------------------------------------------------ Fig. 7

Fig7Breakdown run_fig7_breakdown(int ndec, int sim_tokens, int sim_ns) {
  SSMA_CHECK(ndec >= 1);
  Fig7Breakdown b;
  b.ndec = ndec;

  // (A) energy shares via event simulation on random data. Shares are
  // NS-independent (all terms scale with NS), so a reduced-NS run keeps
  // the bench fast without changing the result.
  {
    sim::MacroConfig mc;
    mc.ndec = ndec;
    mc.ns = sim_ns;
    mc.op = ppa::nominal_05v();
    sim::Macro macro(mc);
    Rng rng(4242 + static_cast<std::uint64_t>(ndec));
    std::vector<maddness::HashTree> trees(sim_ns);
    for (auto& t : trees) {
      for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
      for (int l = 0; l < 4; ++l)
        for (int n = 0; n < (1 << l); ++n)
          t.set_threshold(l, n,
                          static_cast<std::uint8_t>(rng.next_int(1, 254)));
    }
    macro.program(trees, random_luts(rng, sim_ns, ndec),
                  std::vector<std::int16_t>(ndec, 0));
    std::vector<std::vector<sim::Subvec>> inputs(
        sim_tokens, std::vector<sim::Subvec>(sim_ns));
    for (auto& tok : inputs)
      for (auto& sv : tok)
        for (auto& v : sv)
          v = static_cast<std::uint8_t>(rng.next_int(0, 255));
    const auto res = macro.run(inputs);
    const auto& l = res.stats.ledger;
    const double total = l.total_fj();
    b.energy_decoder_share = l.decoder_fj() / total;
    b.energy_encoder_share = l.encoder_fj() / total;
    b.energy_other_share = l.other_fj() / total;
  }

  // (B) latency from the calibrated delay model.
  {
    ppa::DelayModel delay(ppa::nominal_05v());
    b.latency_best_ns = delay.block_latency_best_ns(ndec);
    b.latency_worst_ns = delay.block_latency_worst_ns(ndec);
    b.encoder_latency_share_best =
        delay.encoder_best_ns() / b.latency_best_ns;
    b.encoder_latency_share_worst =
        delay.encoder_worst_ns() / b.latency_worst_ns;
  }

  // (C) area shares (NS=32 as in the paper).
  {
    const ppa::AreaModel area;
    const auto a = area.macro_area(ndec, 32);
    b.area_decoder_share = a.decoder_share();
    b.area_encoder_share = a.encoder_um2 / a.core_um2();
    b.area_other_share = 1.0 - b.area_decoder_share - b.area_encoder_share;
  }
  return b;
}

// ----------------------------------------------------------------- Table I

std::vector<Table1Row> run_table1_sweep(const std::vector<int>& ndecs) {
  std::vector<Table1Row> rows;
  for (int ndec : ndecs) {
    Table1Row r;
    r.ndec = ndec;
    {
      ppa::AnalyticPerf perf({ndec, 32}, ppa::nominal_05v());
      const auto env = perf.envelope();
      r.eff_05v_tops_per_w = env.avg_tops_per_w;
      r.eff_05v_tops_per_mm2 = env.avg_tops_per_mm2;
    }
    {
      ppa::AnalyticPerf perf({ndec, 32}, ppa::nominal_08v());
      const auto env = perf.envelope();
      r.eff_08v_tops_per_w = env.avg_tops_per_w;
      r.eff_08v_tops_per_mm2 = env.avg_tops_per_mm2;
    }
    rows.push_back(r);
  }
  return rows;
}

std::vector<Table1Golden> table1_paper_values() {
  return {{4, 167.5, 73.0, 1.4, 8.7},
          {8, 171.8, 74.4, 1.8, 10.8},
          {16, 174.0, 75.1, 2.0, 11.3},
          {32, 174.9, 75.4, 2.0, 11.5}};
}

// ---------------------------------------------------------------- Table II

std::pair<double, double> simulate_flagship_frequency(double vdd, int ns,
                                                      int tokens) {
  double best_mhz = 0.0, worst_mhz = 0.0;
  for (const bool best : {true, false}) {
    sim::MacroConfig mc;
    mc.ndec = 16;
    mc.ns = ns;
    mc.op = {vdd, ppa::Corner::TTG, 25.0};
    sim::Macro macro(mc);
    Rng rng(99);
    macro.program(uniform_trees(ns), random_luts(rng, ns, 16),
                  std::vector<std::int16_t>(16, 0));
    const auto res =
        macro.run(constant_inputs(tokens, ns, best ? 0x00 : 0x80));
    const double mhz = 1e3 / res.stats.output_interval_ns.mean();
    (best ? best_mhz : worst_mhz) = mhz;
  }
  return {best_mhz, worst_mhz};
}

Table2Column run_table2_proposed(double vdd) {
  Table2Column col;
  col.label = "Proposed (Ndec=16, NS=32)";
  col.mode = "MADDNESS (Digital)";
  col.process = "22 (Planar, simulated)";
  {
    std::ostringstream oss;
    oss << fmt(vdd, 1) << " V";
    col.supply = oss.str();
  }

  const auto [best_mhz, worst_mhz] = simulate_flagship_frequency(vdd);
  col.freq_mhz = fmt(worst_mhz, 1) + "-" + fmt(best_mhz, 1);

  ppa::AnalyticPerf perf({16, 32}, {vdd, ppa::Corner::TTG, 25.0});
  const auto env = perf.envelope();
  col.area_mm2 = env.core_mm2;
  col.throughput_tops =
      fmt(env.worst.throughput_tops, 2) + "-" + fmt(env.best.throughput_tops, 2);
  col.tops_per_w = fmt(env.avg_tops_per_w, 1);
  col.tops_per_mm2 = fmt(env.avg_tops_per_mm2, 2);
  col.accuracy = "see accuracy bench";

  const auto breakdown = perf.energy_breakdown();
  col.encoder_fj = fmt(breakdown.encoder_fj, 3);
  col.decoder_fj = fmt(breakdown.decoder_fj, 1);
  return col;
}

std::vector<Table2Column> table2_prior_work() {
  std::vector<Table2Column> cols;
  for (const auto& d :
       {baselines::fuketa_tcas23(), baselines::stella_nera()}) {
    Table2Column c;
    c.label = d.label;
    c.mode = d.mode;
    c.process = fmt(d.process_nm, 0);
    c.supply = fmt(d.supply_v, 2) + " V";
    c.area_mm2 = d.area_mm2;
    c.freq_mhz = fmt(d.freq_mhz_lo, 0);
    c.throughput_tops = fmt(d.throughput_tops, 3);
    c.tops_per_w = fmt(d.tops_per_w, 1);
    c.tops_per_mm2 = fmt(d.tops_per_mm2, 2) + " (" +
                     fmt(baselines::normalized_area_efficiency(d), 2) +
                     " @22nm)";
    c.accuracy = fmt(d.resnet9_cifar10_acc, 1);
    c.encoder_fj = fmt(d.encoder_fj_per_op, 2);
    c.decoder_fj = fmt(d.decoder_fj_per_op, 2);
    cols.push_back(c);
  }
  return cols;
}

}  // namespace ssma::core
