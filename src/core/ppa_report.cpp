#include "core/ppa_report.hpp"

#include <sstream>

#include "ppa/area_model.hpp"
#include "ppa/corner.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace ssma::core {

std::string PpaReport::render() const {
  std::ostringstream oss;
  TextTable t({"metric", "value"});
  t.add_row({"config", "Ndec=" + std::to_string(ndec) +
                            ", NS=" + std::to_string(ns)});
  t.add_row({"operating point",
             TextTable::num(vdd, 2) + " V, " + corner});
  t.add_row({"frequency [MHz]", TextTable::num(freq_mhz, 1)});
  t.add_row({"throughput [TOPS]", TextTable::num(throughput_tops, 3)});
  t.add_row({"energy eff. [TOPS/W]", TextTable::num(tops_per_w, 1)});
  t.add_row({"area eff. [TOPS/mm2]", TextTable::num(tops_per_mm2, 2)});
  t.add_row({"energy/op [fJ]", TextTable::num(energy_per_op_fj, 2)});
  t.add_row({"core area [mm2]", TextTable::num(core_mm2, 3)});
  t.add_row({"SRAM [kb]", TextTable::num(
                              static_cast<double>(sram_bits) / 1024.0, 0)});
  t.add_row({"decoder energy share", TextTable::pct(energy_decoder_share)});
  t.add_row({"encoder energy share",
             TextTable::pct(energy_encoder_share, 2)});
  t.add_row({"decoder area share", TextTable::pct(area_decoder_share)});
  oss << t.render();
  return oss.str();
}

PpaReport make_report(const sim::MacroConfig& cfg,
                      const sim::MacroRunStats& stats, long long ntokens) {
  SSMA_CHECK(ntokens >= 1);
  PpaReport r;
  r.ndec = cfg.ndec;
  r.ns = cfg.ns;
  r.vdd = cfg.op.vdd;
  r.corner = ppa::corner_name(cfg.op.corner);

  const long long ops_per_token =
      static_cast<long long>(cfg.ns) * cfg.ndec * ppa::kOpsPerLookup;
  r.total_ops = ops_per_token * ntokens;
  r.duration_ns = stats.duration_ns;
  r.events = stats.events;

  if (stats.output_interval_ns.count() > 0) {
    r.token_interval_ns = stats.output_interval_ns.mean();
    r.freq_mhz = 1e3 / r.token_interval_ns;
    r.throughput_tops =
        static_cast<double>(ops_per_token) / r.token_interval_ns * 1e-3;
  }
  r.energy_per_op_fj =
      stats.ledger.total_fj() / static_cast<double>(r.total_ops);
  r.tops_per_w = 1e3 / r.energy_per_op_fj;

  const ppa::AreaModel area;
  r.core_mm2 = area.core_mm2(cfg.ndec, cfg.ns);
  r.sram_bits = area.sram_bits(cfg.ndec, cfg.ns);
  r.tops_per_mm2 = r.throughput_tops / r.core_mm2;
  r.area_decoder_share = area.macro_area(cfg.ndec, cfg.ns).decoder_share();

  const double total_fj = stats.ledger.total_fj();
  if (total_fj > 0.0) {
    r.energy_decoder_share = stats.ledger.decoder_fj() / total_fj;
    r.energy_encoder_share = stats.ledger.encoder_fj() / total_fj;
  }
  return r;
}

PpaReport make_analytic_report(const ppa::MacroConfig& cfg,
                               const ppa::OperatingPoint& op,
                               int dlc_depth) {
  PpaReport r;
  r.ndec = cfg.ndec;
  r.ns = cfg.ns;
  r.vdd = op.vdd;
  r.corner = ppa::corner_name(op.corner);

  ppa::AnalyticPerf perf(cfg, op);
  ppa::PerfPoint p;
  if (dlc_depth == 0) {
    const auto env = perf.envelope();
    // Average envelope: paper's dashed-line convention.
    p.tops_per_w = env.avg_tops_per_w;
    p.tops_per_mm2 = env.avg_tops_per_mm2;
    p.throughput_tops =
        0.5 * (env.best.throughput_tops + env.worst.throughput_tops);
    p.freq_mhz = 0.5 * (env.best.freq_mhz + env.worst.freq_mhz);
    p.energy_per_op_fj = 1e3 / p.tops_per_w;
  } else {
    p = perf.perf_at_interval(perf.block_latency_ns(dlc_depth));
  }
  r.freq_mhz = p.freq_mhz;
  r.throughput_tops = p.throughput_tops;
  r.token_interval_ns = p.freq_mhz > 0 ? 1e3 / p.freq_mhz : 0.0;
  r.tops_per_w = p.tops_per_w;
  r.tops_per_mm2 = p.tops_per_mm2;
  r.energy_per_op_fj = p.energy_per_op_fj;

  const ppa::AreaModel area;
  r.core_mm2 = area.core_mm2(cfg.ndec, cfg.ns);
  r.sram_bits = area.sram_bits(cfg.ndec, cfg.ns);
  r.area_decoder_share = area.macro_area(cfg.ndec, cfg.ns).decoder_share();

  const auto breakdown = perf.energy_breakdown();
  r.energy_decoder_share = breakdown.decoder_share();
  r.energy_encoder_share = breakdown.encoder_share();
  return r;
}

}  // namespace ssma::core
