#include "core/ppa_report.hpp"

#include <algorithm>
#include <sstream>

#include "ppa/area_model.hpp"
#include "ppa/corner.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace ssma::core {

std::string PpaReport::render() const {
  std::ostringstream oss;
  TextTable t({"metric", "value"});
  t.add_row({"config", "Ndec=" + std::to_string(ndec) +
                            ", NS=" + std::to_string(ns)});
  t.add_row({"operating point",
             TextTable::num(vdd, 2) + " V, " + corner});
  t.add_row({"frequency [MHz]", TextTable::num(freq_mhz, 1)});
  t.add_row({"throughput [TOPS]", TextTable::num(throughput_tops, 3)});
  t.add_row({"energy eff. [TOPS/W]", TextTable::num(tops_per_w, 1)});
  t.add_row({"area eff. [TOPS/mm2]", TextTable::num(tops_per_mm2, 2)});
  t.add_row({"energy/op [fJ]", TextTable::num(energy_per_op_fj, 2)});
  t.add_row({"core area [mm2]", TextTable::num(core_mm2, 3)});
  t.add_row({"SRAM [kb]", TextTable::num(
                              static_cast<double>(sram_bits) / 1024.0, 0)});
  t.add_row({"decoder energy share", TextTable::pct(energy_decoder_share)});
  t.add_row({"encoder energy share",
             TextTable::pct(energy_encoder_share, 2)});
  t.add_row({"decoder area share", TextTable::pct(area_decoder_share)});
  oss << t.render();
  return oss.str();
}

PpaReport make_report(const sim::MacroConfig& cfg,
                      const sim::MacroRunStats& stats, long long ntokens) {
  SSMA_CHECK(ntokens >= 1);
  PpaReport r;
  r.ndec = cfg.ndec;
  r.ns = cfg.ns;
  r.vdd = cfg.op.vdd;
  r.corner = ppa::corner_name(cfg.op.corner);

  const long long ops_per_token =
      static_cast<long long>(cfg.ns) * cfg.ndec * ppa::kOpsPerLookup;
  r.total_ops = ops_per_token * ntokens;
  r.duration_ns = stats.duration_ns;
  r.events = stats.events;

  if (stats.output_interval_ns.count() > 0) {
    r.token_interval_ns = stats.output_interval_ns.mean();
    r.freq_mhz = 1e3 / r.token_interval_ns;
    r.throughput_tops =
        static_cast<double>(ops_per_token) / r.token_interval_ns * 1e-3;
  }
  r.energy_per_op_fj =
      stats.ledger.total_fj() / static_cast<double>(r.total_ops);
  r.tops_per_w = 1e3 / r.energy_per_op_fj;

  const ppa::AreaModel area;
  r.core_mm2 = area.core_mm2(cfg.ndec, cfg.ns);
  r.sram_bits = area.sram_bits(cfg.ndec, cfg.ns);
  r.tops_per_mm2 = r.throughput_tops / r.core_mm2;
  r.area_decoder_share = area.macro_area(cfg.ndec, cfg.ns).decoder_share();

  const double total_fj = stats.ledger.total_fj();
  if (total_fj > 0.0) {
    r.energy_decoder_share = stats.ledger.decoder_fj() / total_fj;
    r.energy_encoder_share = stats.ledger.encoder_fj() / total_fj;
  }
  return r;
}

PpaReport make_analytic_report(const ppa::MacroConfig& cfg,
                               const ppa::OperatingPoint& op,
                               int dlc_depth) {
  PpaReport r;
  r.ndec = cfg.ndec;
  r.ns = cfg.ns;
  r.vdd = op.vdd;
  r.corner = ppa::corner_name(op.corner);

  ppa::AnalyticPerf perf(cfg, op);
  ppa::PerfPoint p;
  if (dlc_depth == 0) {
    const auto env = perf.envelope();
    // Average envelope: paper's dashed-line convention.
    p.tops_per_w = env.avg_tops_per_w;
    p.tops_per_mm2 = env.avg_tops_per_mm2;
    p.throughput_tops =
        0.5 * (env.best.throughput_tops + env.worst.throughput_tops);
    p.freq_mhz = 0.5 * (env.best.freq_mhz + env.worst.freq_mhz);
    p.energy_per_op_fj = 1e3 / p.tops_per_w;
  } else {
    p = perf.perf_at_interval(perf.block_latency_ns(dlc_depth));
  }
  r.freq_mhz = p.freq_mhz;
  r.throughput_tops = p.throughput_tops;
  r.token_interval_ns = p.freq_mhz > 0 ? 1e3 / p.freq_mhz : 0.0;
  r.tops_per_w = p.tops_per_w;
  r.tops_per_mm2 = p.tops_per_mm2;
  r.energy_per_op_fj = p.energy_per_op_fj;

  const ppa::AreaModel area;
  r.core_mm2 = area.core_mm2(cfg.ndec, cfg.ns);
  r.sram_bits = area.sram_bits(cfg.ndec, cfg.ns);
  r.area_decoder_share = area.macro_area(cfg.ndec, cfg.ns).decoder_share();

  const auto breakdown = perf.energy_breakdown();
  r.energy_decoder_share = breakdown.decoder_share();
  r.energy_encoder_share = breakdown.encoder_share();
  return r;
}

namespace {

/// Shared pooling math of the two report merges. Energy totals are
/// ops-weighted; the token interval is the ops-weighted mean (the only
/// per-token rate that averages linearly), and frequency is re-derived
/// from it so the freq == 1e3/interval invariant of make_report holds
/// on merged reports too.
struct MergeAccum {
  double total_energy_fj = 0.0;
  double decoder_fj = 0.0, encoder_fj = 0.0;
  double interval_weighted = 0.0;
  /// throughput * interval is config-constant (ops per token / 1e3);
  /// pooled it re-derives aggregate throughput from the merged interval.
  double tput_x_interval_weighted = 0.0;
  double ops_with_rate = 0.0;

  void add(const PpaReport& p) {
    const auto ops = static_cast<double>(p.total_ops);
    const double energy = p.energy_per_op_fj * ops;
    total_energy_fj += energy;
    decoder_fj += p.energy_decoder_share * energy;
    encoder_fj += p.energy_encoder_share * energy;
    if (p.token_interval_ns > 0.0) {
      interval_weighted += p.token_interval_ns * ops;
      tput_x_interval_weighted +=
          p.throughput_tops * p.token_interval_ns * ops;
      ops_with_rate += ops;
    }
  }

  /// `derive_throughput`: recompute m->throughput_tops from the merged
  /// interval (sequential runs of one macro); parallel merges keep the
  /// sum of shard throughputs instead.
  void finalize(PpaReport* m, bool derive_throughput) const {
    if (ops_with_rate > 0.0) {
      m->token_interval_ns = interval_weighted / ops_with_rate;
      m->freq_mhz = 1e3 / m->token_interval_ns;
      if (derive_throughput)
        m->throughput_tops = (tput_x_interval_weighted / ops_with_rate) /
                             m->token_interval_ns;
    }
    if (m->total_ops > 0) {
      m->energy_per_op_fj =
          total_energy_fj / static_cast<double>(m->total_ops);
      if (m->energy_per_op_fj > 0.0)
        m->tops_per_w = 1e3 / m->energy_per_op_fj;
    }
    if (m->core_mm2 > 0.0)
      m->tops_per_mm2 = m->throughput_tops / m->core_mm2;
    if (total_energy_fj > 0.0) {
      m->energy_decoder_share = decoder_fj / total_energy_fj;
      m->energy_encoder_share = encoder_fj / total_energy_fj;
    }
  }
};

}  // namespace

PpaReport merge_reports(const std::vector<PpaReport>& parts) {
  PpaReport m;
  if (parts.empty()) return m;
  // Config echo from the first shard that has one (a default-empty
  // part must not blank the merged echo).
  const PpaReport* echo = &parts.front();
  for (const PpaReport& p : parts)
    if (p.ndec != 0) {
      echo = &p;
      break;
    }
  m.ndec = echo->ndec;
  m.ns = echo->ns;
  m.vdd = echo->vdd;
  m.corner = echo->corner;

  MergeAccum acc;
  double area_decoder_weighted = 0.0;
  for (const PpaReport& p : parts) {
    m.total_ops += p.total_ops;
    m.events += p.events;
    m.duration_ns = std::max(m.duration_ns, p.duration_ns);
    m.core_mm2 += p.core_mm2;
    m.sram_bits += p.sram_bits;
    m.throughput_tops += p.throughput_tops;
    area_decoder_weighted += p.area_decoder_share * p.core_mm2;
    acc.add(p);
  }
  acc.finalize(&m, /*derive_throughput=*/false);
  if (m.core_mm2 > 0.0)
    m.area_decoder_share = area_decoder_weighted / m.core_mm2;
  return m;
}

PpaReport merge_sequential_reports(const std::vector<PpaReport>& parts) {
  PpaReport m;
  if (parts.empty()) return m;
  m.ndec = parts.front().ndec;
  m.ns = parts.front().ns;
  m.vdd = parts.front().vdd;
  m.corner = parts.front().corner;
  m.core_mm2 = parts.front().core_mm2;
  m.sram_bits = parts.front().sram_bits;
  m.area_decoder_share = parts.front().area_decoder_share;

  MergeAccum acc;
  for (const PpaReport& p : parts) {
    m.total_ops += p.total_ops;
    m.events += p.events;
    m.duration_ns += p.duration_ns;
    acc.add(p);
  }
  acc.finalize(&m, /*derive_throughput=*/true);
  return m;
}

}  // namespace ssma::core
