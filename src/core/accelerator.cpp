#include "core/accelerator.hpp"

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::core {

Accelerator::Accelerator(const AcceleratorOptions& opts) : opts_(opts) {
  SSMA_CHECK(opts.ndec >= 1 && opts.ns >= 1);
}

AcceleratorResult Accelerator::run(
    const maddness::Amm& amm,
    const maddness::QuantizedActivations& activations,
    const std::vector<std::int16_t>* bias_int16) {
  const maddness::Config& mcfg = amm.cfg();
  SSMA_CHECK_MSG(mcfg.subvec_dim == ppa::kSubvectorDim,
                 "hardware subvectors are 9-dimensional");
  // The decoder SRAMs have exactly 16 rows; a config with a different
  // prototype count must fail here, before tile programming silently
  // truncates or misstrides its tables.
  SSMA_CHECK_MSG(mcfg.nprototypes() == ppa::kProtosPerCodebook,
                 "hardware LUTs hold " << ppa::kProtosPerCodebook
                                       << " prototypes per codebook, config "
                                          "has "
                                       << mcfg.nprototypes());
  // The macro's CSA/RCA rail wraps at 16 bits while the software decode
  // saturates from int32; they are bit-exact only while a worst-case
  // accumulation cannot leave the rail. Reject configs past that point
  // instead of silently diverging from apply_int16.
  SSMA_CHECK_MSG(mcfg.ncodebooks * 127 <= 32767,
                 "config can overflow the macro's 16-bit accumulation "
                 "rail; the hardware model would wrap where the software "
                 "decode saturates");
  SSMA_CHECK(activations.cols ==
             static_cast<std::size_t>(mcfg.total_dims()));
  const int nout = amm.lut().nout;
  if (bias_int16) SSMA_CHECK(static_cast<int>(bias_int16->size()) == nout);

  AcceleratorResult res;
  res.plan = plan_tiles(mcfg.ncodebooks, nout, opts_.ns, opts_.ndec);
  const std::size_t ntok = activations.rows;
  res.outputs.assign(ntok * static_cast<std::size_t>(nout), 0);

  sim::MacroRunStats agg_stats;
  std::uint64_t total_events = 0;
  double total_duration = 0.0;

  // Identity tree used by idle (padding) blocks; their LUTs are zero so
  // they contribute nothing to the accumulation.
  const maddness::HashTree idle_tree;
  const sim::LutTable zero_table{};
  const sim::Subvec zero_subvec{};

  for (const Tile& tile : res.plan.tiles) {
    sim::MacroConfig mc;
    mc.ndec = opts_.ndec;
    mc.ns = opts_.ns;
    mc.op = opts_.op;
    sim::Macro macro(mc);

    // Program: blocks [0, tile.block_n) carry real codebooks, the rest
    // idle; lanes [0, tile.lane_n) carry real outputs.
    std::vector<maddness::HashTree> trees(opts_.ns, idle_tree);
    std::vector<std::vector<sim::LutTable>> luts(
        opts_.ns, std::vector<sim::LutTable>(opts_.ndec, zero_table));
    for (int b = 0; b < tile.block_n; ++b) {
      const int cb = tile.block_lo + b;
      trees[b] = amm.trees()[cb];
      for (int d = 0; d < tile.lane_n; ++d) {
        const auto table = amm.lut().table(cb, tile.lane_lo + d);
        for (int k = 0; k < ppa::kProtosPerCodebook; ++k)
          luts[b][d][k] = table[k];
      }
    }
    macro.program(trees, luts,
                  std::vector<std::int16_t>(opts_.ndec, 0));

    // Inputs: real subvectors for occupied blocks, zeros for idle ones.
    std::vector<std::vector<sim::Subvec>> inputs(
        ntok, std::vector<sim::Subvec>(opts_.ns, zero_subvec));
    for (std::size_t k = 0; k < ntok; ++k)
      for (int b = 0; b < tile.block_n; ++b) {
        const int cb = tile.block_lo + b;
        for (int j = 0; j < 9; ++j)
          inputs[k][b][j] = activations.at(
              k, static_cast<std::size_t>(cb) * 9 + j);
      }

    // Initial lanes: bias on the first input tile, prior partial sums on
    // subsequent ones (hardware partial-sum re-injection).
    std::vector<std::vector<std::int16_t>> initial(
        ntok, std::vector<std::int16_t>(opts_.ndec, 0));
    for (std::size_t k = 0; k < ntok; ++k)
      for (int d = 0; d < tile.lane_n; ++d) {
        if (tile.first_input_tile) {
          initial[k][d] =
              bias_int16 ? (*bias_int16)[tile.lane_lo + d] : 0;
        } else {
          initial[k][d] =
              res.outputs[k * static_cast<std::size_t>(nout) +
                          tile.lane_lo + d];
        }
      }

    const sim::MacroRunResult run = macro.run(inputs, &initial);
    for (std::size_t k = 0; k < ntok; ++k)
      for (int d = 0; d < tile.lane_n; ++d)
        res.outputs[k * static_cast<std::size_t>(nout) + tile.lane_lo + d] =
            run.outputs[k][d];

    // Aggregate across tiles.
    if (&tile == &res.plan.tiles.front()) {
      agg_stats = run.stats;
    } else {
      for (double v : run.stats.output_interval_ns.samples())
        agg_stats.output_interval_ns.add(v);
      for (double v : run.stats.token_latency_ns.samples())
        agg_stats.token_latency_ns.add(v);
      agg_stats.ledger = [&] {
        sim::EnergyLedger sum = agg_stats.ledger;
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(sim::EnergyCat::kCount); ++c)
          sum.charge(static_cast<sim::EnergyCat>(c),
                     run.stats.ledger.fj(static_cast<sim::EnergyCat>(c)));
        return sum;
      }();
    }
    total_events += run.stats.events;
    total_duration += run.stats.duration_ns;
  }

  agg_stats.events = total_events;
  agg_stats.duration_ns = total_duration;

  sim::MacroConfig mc;
  mc.ndec = opts_.ndec;
  mc.ns = opts_.ns;
  mc.op = opts_.op;
  res.report = make_report(
      mc, agg_stats,
      static_cast<long long>(ntok) *
          static_cast<long long>(res.plan.tiles.size()));
  return res;
}

PpaReport Accelerator::analytic_report(int dlc_depth) const {
  return make_analytic_report({opts_.ndec, opts_.ns}, opts_.op, dlc_depth);
}

}  // namespace ssma::core
