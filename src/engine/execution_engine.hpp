// Backend-pluggable execution — the compute-facing half of the Engine
// API.
//
// An ExecutionEngine turns one stitched batch of quantized activation
// rows into int16 accumulators for a pinned ModelHandle. The three
// in-tree backends cover the repo's execution tiers:
//
//   kKernel      Amm::apply_int16 — the hardware-exact software kernel
//                at host speed (the throughput-serving default).
//   kSimulate    core::Accelerator::run — the event-driven macro, same
//                bits, plus per-batch PPA accounting exposed through
//                ppa_report().
//   kDevicePaced kernel outputs + a modeled device service time per
//                token — measures runtime overlap of N devices
//                independent of host core count.
//
// All backends produce bit-identical outputs for the same model and
// batch (the sim/kernel equivalence is asserted by the test suites), so
// the backend is a deployment knob, not a semantics knob. Engines are
// stateful (encode scratch, PPA ledgers, pacing clocks) and NOT
// thread-safe: create one per worker thread via make_engine().
//
// Multi-stage models (ModelHandle::is_pipeline()) run stage-by-stage
// inside run_batch; see engine/pipeline.hpp for the handoff semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/accelerator.hpp"
#include "core/ppa_report.hpp"
#include "engine/model_registry.hpp"
#include "maddness/quantize.hpp"

namespace ssma::engine {

/// Which compute tier a worker runs batches on.
enum class Backend {
  kKernel,
  kSimulate,
  kDevicePaced,
};

const char* to_string(Backend backend);

/// Everything needed to construct a per-worker engine.
struct EngineOptions {
  Backend backend = Backend::kKernel;
  /// Macro shape for kSimulate shards (and the analytic pacing model).
  core::AcceleratorOptions accel;
  /// kDevicePaced only: modeled device service time per token (0 = the
  /// analytic model's average token interval for `accel`).
  double device_ns_per_token = 0.0;
  /// Kernel/paced backends: chain pipeline stages through the fused
  /// in-register epilogue (the default). false keeps the legacy
  /// materializing stage_handoff walk — same bits, slower — as the
  /// baseline for fused-vs-unfused comparisons.
  bool fused_pipeline = true;
};

/// Capability/shape metadata a scheduler can dispatch on.
struct EngineInfo {
  const char* name = "";     ///< backend name ("kernel", ...)
  Backend backend = Backend::kKernel;
  bool collects_ppa = false; ///< ppa_report() is meaningful after use
  bool paced = false;        ///< run_batch blocks for modeled device time
};

class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// Computes `batch` (rows x model.cols(), stitched row-major) through
  /// every stage of `model`; `out` is resized to rows x model.nout(),
  /// capacity-reusing. Deterministic and bit-exact across backends.
  virtual void run_batch(const ModelHandle& model,
                         const maddness::QuantizedActivations& batch,
                         std::vector<std::int16_t>& out) = 0;

  virtual EngineInfo info() const = 0;

  /// Accumulated PPA accounting for everything this engine instance has
  /// run. Default-empty for backends whose info().collects_ppa is
  /// false; the simulate backend merges its per-batch reports (or, when
  /// it ran nothing, reports idle silicon: config echo + area/SRAM with
  /// zeroed run-dependent fields).
  virtual core::PpaReport ppa_report() const { return core::PpaReport{}; }
};

/// Factory: one engine per worker thread. Throws CheckError when the
/// options are inconsistent (e.g. a paced backend with no resolvable
/// token interval).
std::unique_ptr<ExecutionEngine> make_engine(const EngineOptions& opts);

}  // namespace ssma::engine
