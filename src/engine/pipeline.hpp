// Multi-stage model execution: the handoff between chained LUT stages.
//
// A pipeline model (ModelHandle with >1 stage) chains matmul-shaped
// operators: stage i's int16 accumulators are dequantized with its LUT
// scales, rectified (the uint8 requantization clamp — post-activation
// distributions are non-negative, exactly the paper's inter-layer
// convention), requantized with stage i+1's calibrated activation
// scale, and re-encoded into stage i+1's codebooks. The whole handoff
// is deterministic float->uint8 arithmetic, so replayed pipelines are
// bit-exact regardless of backend or host.
//
// Stage shapes must chain: stage[i+1].cfg().total_dims() ==
// stage[i].lut().nout (ModelHandle validates at construction). Typical
// builds: a CNN feature layer's im2col matmul feeding an MLP head, or a
// stack of dense layers trained with train_chained_stage().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/model_registry.hpp"
#include "maddness/quantize.hpp"

namespace ssma::nn {
class MaddnessNetwork;
}  // namespace ssma::nn

namespace ssma::engine {

/// Builds stage s+1's quantized input from stage s's accumulators:
/// dequantize (prev LUT scales) -> clamp at 0 (ReLU) -> requantize with
/// next.activation_scale(). `acc` is rows x prev.lut().nout.
maddness::QuantizedActivations stage_handoff(
    const maddness::Amm& prev, const maddness::Amm& next,
    const std::vector<std::int16_t>& acc, std::size_t rows);

/// Reference multi-stage apply: Amm::apply_int16 per stage plus
/// stage_handoff between stages. Every backend's run_batch must match
/// this bit-for-bit (single-stage models reduce to plain apply_int16).
std::vector<std::int16_t> pipeline_reference_apply(
    const ModelHandle& model, const maddness::QuantizedActivations& q);

/// Trains a stage whose input distribution is the previous stage's
/// rectified dequantized output (error-aware chaining: the stage is
/// calibrated on the activations it will actually see). `prev_output`
/// is the previous stage's float output on the calibration set (or the
/// raw calibration batch for stage 0); returns the trained stage and
/// writes the stage's own output into `*next_input` for the next call.
maddness::Amm train_chained_stage(const maddness::Config& cfg,
                                  const Matrix& prev_output,
                                  const Matrix& weights,
                                  Matrix* next_input);

/// Registers every MADDNESS-substituted conv of a trained network as an
/// independently served patch-matmul model "<prefix>.convK" (version 1
/// each) — CNN feature layers become servable request streams (each
/// request row is one im2col patch of that layer). Returns the
/// registered names in layer order. The network's operators are
/// re-serialized into the handles, so the network need not outlive the
/// registry.
std::vector<std::string> register_network_layers(
    ModelRegistry& registry, const std::string& prefix,
    const nn::MaddnessNetwork& net);

/// Registers a whole trained network for end-to-end serving through the
/// fused ExecutionPlan: maximal runs of shape-chaining operators
/// (stage[i+1].cfg().total_dims() == stage[i].lut().nout) become one
/// pipeline model each — executed with fused in-register handoffs —
/// and non-chaining operators become single-stage models. Models are
/// named "<prefix>.segK" in network order; returns the names. Conv
/// stacks generally don't shape-chain (a 3x3 layer consumes 9*C_in
/// patch columns, not the C_out rows the previous layer produced — the
/// im2col hop is the client's), so CNNs typically yield one segment per
/// layer while dense train_chained_stage() stacks collapse into a
/// single fused pipeline model.
std::vector<std::string> register_network(ModelRegistry& registry,
                                          const std::string& prefix,
                                          const nn::MaddnessNetwork& net);

/// The chaining core of register_network over an explicit operator
/// list, for callers that assemble stage lists without a
/// MaddnessNetwork (and for testing the segmentation directly).
std::vector<std::string> register_segments(
    ModelRegistry& registry, const std::string& prefix,
    const std::vector<const maddness::Amm*>& amms);

}  // namespace ssma::engine
