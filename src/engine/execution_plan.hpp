// Compiled per-model execution descriptor — the software mirror of the
// paper's self-synchronous pipeline wiring.
//
// A pipeline ModelHandle used to execute stage-at-a-time: materialize
// every stage's int16 accumulators, run engine::stage_handoff (dequant
// -> ReLU -> requant, two fresh matrices per boundary), re-encode. An
// ExecutionPlan is compiled once at model construction and caches, per
// stage boundary, the fused-epilogue constants (producing stage's LUT
// scales live in its packed bank; the consuming stage's activation
// scale rides in FusedEpilogue) so run_plan() can chain stages through
// maddness::apply_lut_fused: each finished accumulator tile dequantizes,
// rectifies and requantizes in-register and lands directly in the next
// stage's uint8 activation buffer. The int16 accumulators and the
// dequantized float matrix of every interior boundary never touch
// memory.
//
// run_plan(fused=true) is bit-exact vs pipeline_reference_apply — the
// epilogue element math is the exact scalar reference sequence — and
// allocation-free at steady state given a caller-owned PlanScratch.
// run_plan(fused=false) preserves the legacy materializing walk (same
// bits, stage_handoff allocations and all) as the comparison baseline
// for the fused-vs-unfused bench cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "maddness/amm.hpp"

namespace ssma::engine {

/// One compiled stage: the operator plus the constants of its fused
/// handoff into the next stage. The Amm pointer aims into the owning
/// ModelHandle's stage list (handles are immutable and outlive their
/// plan by construction).
struct PlanStage {
  const maddness::Amm* amm = nullptr;
  /// Interior stages only (unused on the final stage): requantization
  /// constants folded into the LUT kernel epilogue.
  maddness::FusedEpilogue epilogue;
};

class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Compiles a shape-chained stage list (validated by ModelHandle).
  /// `stages` must outlive the plan.
  static ExecutionPlan compile(const std::vector<maddness::Amm>& stages);

  std::size_t num_stages() const { return stages_.size(); }
  bool is_pipeline() const { return stages_.size() > 1; }
  const PlanStage& stage(std::size_t i) const { return stages_[i]; }

  /// Intermediate memory traffic per batch row the fused walk never
  /// pays, summed over interior boundaries: the int16 accumulator write
  /// + read (4 bytes/element) and the dequantized float write + read
  /// (8 bytes/element) of the materializing walk. The uint8 activation
  /// buffer (2 bytes/element) is still paid by both walks and is not
  /// counted. Feeds the roofline fusion report.
  std::size_t fused_bytes_avoided_per_row() const { return bytes_avoided_; }

 private:
  std::vector<PlanStage> stages_;
  std::size_t bytes_avoided_ = 0;
};

/// Caller-owned working set of run_plan: encode staging, the encoded
/// batch, the interior uint8 activation buffer and the unfused walk's
/// accumulator. Everything is capacity-reusing — a worker shard that
/// keeps one PlanScratch alive pays zero steady-state allocations for
/// fused pipeline batches.
struct PlanScratch {
  maddness::EncodeScratch encode;
  maddness::EncodedBatch enc;
  maddness::QuantizedActivations inter;
  std::vector<std::int16_t> acc;  ///< unfused walk only
};

/// Executes `batch` through every plan stage into `out` (resized
/// capacity-reusing to rows x final nout). Bit-exact vs
/// pipeline_reference_apply for both walks; `fused` only chooses whether
/// interior boundaries run in-register or materialize. Spans tag
/// kEncode/kLutAccumulate/kEpilogue with the stage index.
void run_plan(const ExecutionPlan& plan,
              const maddness::QuantizedActivations& batch,
              PlanScratch& scratch, std::vector<std::int16_t>& out,
              bool fused = true);

/// Tier-explicit form (tests drive every available LUT tier through one
/// process; the default form uses the runtime-selected tier).
void run_plan(const ExecutionPlan& plan,
              const maddness::QuantizedActivations& batch,
              PlanScratch& scratch, std::vector<std::int16_t>& out,
              bool fused, maddness::KernelTier lut_tier);

}  // namespace ssma::engine
