#include "engine/execution_plan.hpp"

#include "engine/pipeline.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::engine {

ExecutionPlan ExecutionPlan::compile(
    const std::vector<maddness::Amm>& stages) {
  SSMA_CHECK_MSG(!stages.empty(), "execution plan needs >= 1 stage");
  ExecutionPlan plan;
  plan.stages_.reserve(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    PlanStage ps;
    ps.amm = &stages[s];
    if (s + 1 < stages.size()) {
      ps.epilogue.next_scale = stages[s + 1].activation_scale();
      // Materializing-walk traffic per row at this boundary: int16
      // accumulators (2B) written + read back, dequantized floats (4B)
      // written + read back. The uint8 activations are paid either way.
      plan.bytes_avoided_ +=
          static_cast<std::size_t>(stages[s].lut().nout) * (2 + 2 + 4 + 4);
    }
    plan.stages_.push_back(ps);
  }
  return plan;
}

namespace {

void run_plan_fused(const ExecutionPlan& plan,
                    const maddness::QuantizedActivations& batch,
                    PlanScratch& scratch, std::vector<std::int16_t>& out,
                    maddness::KernelTier lut_tier) {
  const std::size_t rows = batch.rows;
  {
    SSMA_TRACE_SPAN_TAG(kEncode, 0);
    plan.stage(0).amm->encode_batch(batch, scratch.encode, scratch.enc);
  }
  for (std::size_t s = 0;; ++s) {
    const PlanStage& ps = plan.stage(s);
    const maddness::LutBankPacked& lut = ps.amm->packed_lut();
    if (s + 1 == plan.num_stages()) {
      SSMA_TRACE_SPAN_TAG(kLutAccumulate, s);
      maddness::apply_lut_packed(lut, scratch.enc, lut_tier, out);
      return;
    }
    maddness::QuantizedActivations& inter = scratch.inter;
    inter.rows = rows;
    inter.cols = static_cast<std::size_t>(lut.nout);
    inter.scale = ps.epilogue.next_scale;
    inter.codes.resize(rows * inter.cols);
    {
      // Accumulate + fused handoff in one pass: stage s's int16
      // accumulators and dequantized floats stay in registers/L1.
      SSMA_TRACE_SPAN_TAG(kEpilogue, s);
      maddness::apply_lut_fused(lut, scratch.enc, ps.epilogue, lut_tier,
                                inter.codes.data());
    }
    {
      SSMA_TRACE_SPAN_TAG(kEncode, s + 1);
      plan.stage(s + 1).amm->encode_batch(inter, scratch.encode,
                                          scratch.enc);
    }
  }
}

void run_plan_unfused(const ExecutionPlan& plan,
                      const maddness::QuantizedActivations& batch,
                      PlanScratch& scratch,
                      std::vector<std::int16_t>& out,
                      maddness::KernelTier lut_tier) {
  {
    SSMA_TRACE_SPAN_TAG(kEncode, 0);
    plan.stage(0).amm->encode_batch(batch, scratch.encode, scratch.enc);
  }
  if (!plan.is_pipeline()) {
    SSMA_TRACE_SPAN_TAG(kLutAccumulate, 0);
    maddness::apply_lut_packed(plan.stage(0).amm->packed_lut(),
                               scratch.enc, lut_tier, out);
    return;
  }
  {
    SSMA_TRACE_SPAN_TAG(kLutAccumulate, 0);
    maddness::apply_lut_packed(plan.stage(0).amm->packed_lut(),
                               scratch.enc, lut_tier, scratch.acc);
  }
  for (std::size_t s = 1; s < plan.num_stages(); ++s) {
    const maddness::Amm& prev = *plan.stage(s - 1).amm;
    const maddness::Amm& cur = *plan.stage(s).amm;
    const maddness::QuantizedActivations qs = [&] {
      SSMA_TRACE_SPAN_TAG(kEpilogue, s - 1);
      return stage_handoff(prev, cur, scratch.acc, batch.rows);
    }();
    {
      SSMA_TRACE_SPAN_TAG(kEncode, s);
      cur.encode_batch(qs, scratch.encode, scratch.enc);
    }
    SSMA_TRACE_SPAN_TAG(kLutAccumulate, s);
    if (s + 1 == plan.num_stages())
      maddness::apply_lut_packed(cur.packed_lut(), scratch.enc, lut_tier,
                                 out);
    else
      maddness::apply_lut_packed(cur.packed_lut(), scratch.enc, lut_tier,
                                 scratch.acc);
  }
}

}  // namespace

void run_plan(const ExecutionPlan& plan,
              const maddness::QuantizedActivations& batch,
              PlanScratch& scratch, std::vector<std::int16_t>& out,
              bool fused, maddness::KernelTier lut_tier) {
  if (fused)
    run_plan_fused(plan, batch, scratch, out, lut_tier);
  else
    run_plan_unfused(plan, batch, scratch, out, lut_tier);
}

void run_plan(const ExecutionPlan& plan,
              const maddness::QuantizedActivations& batch,
              PlanScratch& scratch, std::vector<std::int16_t>& out,
              bool fused) {
  run_plan(plan, batch, scratch, out, fused,
           maddness::select_kernel_tier());
}

}  // namespace ssma::engine
