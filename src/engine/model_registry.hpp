// Versioned multi-model registry — the deployment-facing half of the
// Engine API.
//
// A ModelHandle is one immutable deployable unit: a (name, version)
// pair plus the trained operator(s) behind it — a single Amm for
// matmul-shaped models, or a shape-chained stage list for multi-stage
// (CNN-feature / MLP-head) pipelines. Handles are reference-counted and
// never mutated after construction, so a worker that pins one for the
// duration of a batch keeps serving the exact bank it resolved even if
// a newer version is registered (or the old one retired) mid-batch —
// that shared_ptr pin is the whole zero-downtime hot-swap mechanism.
//
// The ModelRegistry maps (name, version) -> ModelHandle with an atomic
// `latest` pointer per name:
//
//   reg.register_model("embed", amm);          // -> version 1
//   auto h  = reg.resolve("embed@latest");     // pins v1
//   reg.register_model("embed", retrained);    // -> version 2 (atomic bump)
//   auto h2 = reg.resolve("embed");            // pins v2; h still serves v1
//   reg.retire("embed", 1);                    // v1 unreachable; h unaffected
//
// The registry serializes into the serving checkpoint (v2 record), so a
// restarted server restores every registered version and journal replay
// stays bit-exact across a hot-swap boundary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/execution_plan.hpp"
#include "maddness/amm.hpp"

namespace ssma::engine {

class ModelHandle;

/// How code refers to a pinned model: shared ownership of an immutable
/// handle. Copy freely; the bank lives while any pin does.
using ModelRef = std::shared_ptr<const ModelHandle>;

class ModelHandle {
 public:
  /// Deserializes a handle from its canonical blob: a single SSMAAMM2
  /// Amm frame, or an SSMAPIP1 multi-stage frame. Throws CheckError on
  /// a torn or foreign blob, or on a name outside [A-Za-z0-9._-]
  /// (names land verbatim in refs, metrics tables and JSON artifacts).
  static ModelRef from_blob(std::string name, std::uint64_t version,
                            std::string blob);
  /// Wraps one trained operator (re-serialized into the handle's blob).
  static ModelRef from_amm(std::string name, std::uint64_t version,
                           const maddness::Amm& amm);
  /// Builds a multi-stage pipeline handle. Stage shapes must chain:
  /// stage[i+1].cfg().total_dims() == stage[i].lut().nout.
  static ModelRef from_stages(std::string name, std::uint64_t version,
                              const std::vector<const maddness::Amm*>& stages);

  const std::string& name() const { return name_; }
  std::uint64_t version() const { return version_; }
  /// Canonical serialized form — what checkpoints persist and what
  /// from_blob() round-trips.
  const std::string& blob() const { return blob_; }

  std::size_t num_stages() const { return stages_.size(); }
  bool is_pipeline() const { return stages_.size() > 1; }
  const maddness::Amm& stage(std::size_t i) const { return stages_[i]; }
  /// The single operator of a matmul-shaped model (stage 0 otherwise).
  const maddness::Amm& amm() const { return stages_.front(); }

  /// The execution descriptor compiled at construction: stage chain +
  /// fused-epilogue constants. Engines walk this instead of the raw
  /// stage list (see engine/execution_plan.hpp).
  const ExecutionPlan& plan() const { return plan_; }

  /// Request geometry: activation columns consumed per row (stage 0)
  /// and int16 outputs produced per row (final stage).
  std::size_t cols() const;
  std::size_t nout() const;

  /// "name@version" — the exact ref string that resolves back to this
  /// handle (journal records and metrics keys use it).
  std::string ref() const;

 private:
  ModelHandle() = default;
  // The plan points into stages_: handles must never be copied or
  // moved out of their shared_ptr.
  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  std::string name_;
  std::uint64_t version_ = 0;
  std::vector<maddness::Amm> stages_;
  ExecutionPlan plan_;
  std::string blob_;
};

/// Serializes a stage list into the SSMAPIP1 multi-stage blob format
/// (each stage an Amm frame inside an outer CRC frame).
std::string pipeline_blob(const std::vector<const maddness::Amm*>& stages);

class ModelRegistry {
 public:
  /// The name the v1 single-model API maps onto.
  static constexpr const char* kDefaultModel = "default";

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `amm` (or a pre-serialized blob, or a stage pipeline) as
  /// the next version of `name` and atomically bumps `latest`. Returns
  /// the new version. Thread-safe; resolvers never observe a
  /// half-registered version. With `publish = false` the version is
  /// installed (explicitly resolvable, included in save()) but `latest`
  /// is NOT bumped until publish() — the server uses this to make a
  /// version durable in a checkpoint before "@latest" traffic can pin
  /// it.
  std::uint64_t register_model(const std::string& name,
                               const maddness::Amm& amm);
  std::uint64_t register_model(const std::string& name, std::string blob,
                               bool publish = true);
  std::uint64_t register_pipeline(
      const std::string& name,
      const std::vector<const maddness::Amm*>& stages);

  /// Advances `latest` to `version` (the second half of a
  /// register_model(..., publish=false)). Throws CheckError when the
  /// version was never installed OR does not advance latest — a double
  /// publish of the same version fails loud rather than silently
  /// no-opping.
  void publish(const std::string& name, std::uint64_t version);

  /// Drops a staged-but-never-published version — the rollback path of
  /// a rollout. Throws CheckError when the version is unknown or has
  /// been published (published versions go through retire()). Pinned
  /// handles are unaffected.
  void discard_staged(const std::string& name, std::uint64_t version);

  /// Installs an exact (name, version) handle — the checkpoint-restore
  /// path. `latest` becomes the highest installed version.
  void install(ModelRef handle);

  /// Resolves "name", "name@latest", or "name@N". Throws CheckError on
  /// an unknown name/version or a malformed ref.
  ModelRef resolve(const std::string& ref) const;
  /// version 0 = latest.
  ModelRef resolve(const std::string& name, std::uint64_t version) const;
  /// Like resolve(name, version) but returns nullptr instead of
  /// throwing.
  ModelRef try_resolve(const std::string& name,
                       std::uint64_t version) const;

  /// Makes a published (name, version) unresolvable. Pinned handles are
  /// unaffected — in-flight batches drain on the retired bank. Retiring
  /// `latest` moves `latest` to the highest remaining version (a name
  /// with no versions left is dropped entirely). Throws CheckError for
  /// a never-published staged version — use discard_staged().
  void retire(const std::string& name, std::uint64_t version);

  std::vector<std::string> names() const;
  std::vector<std::uint64_t> versions(const std::string& name) const;
  /// 0 when the name is unknown.
  std::uint64_t latest_version(const std::string& name) const;
  std::size_t num_models() const;

  /// Registry section of the v2 checkpoint record: every registered
  /// (name, version, blob) plus the latest pointers, in deterministic
  /// (sorted) order so identical registries encode byte-identically.
  void save(std::ostream& os) const;
  /// Installs every model from a save() stream into this registry.
  void load(std::istream& is);
  /// Applies a save() stream to a registry that may already hold some
  /// of it: versions already installed are skipped (no re-decode, live
  /// pins untouched), missing ones installed, and the stream's latest
  /// pointers honored exactly — including a latest left behind a newer
  /// staged-but-unpublished version, so a replication follower applying
  /// successive leader checkpoints resolves "@latest" exactly as the
  /// leader's own restore would.
  void merge(std::istream& is);

 private:
  struct Entry {
    std::map<std::uint64_t, ModelRef> versions;
    std::uint64_t latest = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> models_;
};

}  // namespace ssma::engine
