#include "engine/execution_engine.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "engine/execution_plan.hpp"
#include "engine/pipeline.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::engine {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kKernel:
      return "kernel";
    case Backend::kSimulate:
      return "simulate";
    case Backend::kDevicePaced:
      return "paced";
  }
  return "?";
}

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Software-kernel backend: walks the model's compiled ExecutionPlan —
/// vectorized batch encode into reusable scratch, packed
/// tier-dispatched LUT accumulate, and (fused mode, the default)
/// in-register stage handoffs for pipeline models. Zero steady-state
/// allocations for single-stage AND fused pipeline batches once the
/// PlanScratch capacities are established; the unfused walk keeps the
/// legacy per-boundary materialization as a comparison baseline.
class KernelEngine : public ExecutionEngine {
 public:
  explicit KernelEngine(bool fused = true) : fused_(fused) {}

  void run_batch(const ModelHandle& model,
                 const maddness::QuantizedActivations& batch,
                 std::vector<std::int16_t>& out) override {
    run_plan(model.plan(), batch, scratch_, out, fused_);
  }

  EngineInfo info() const override {
    return {"kernel", Backend::kKernel, false, false};
  }

 private:
  PlanScratch scratch_;
  bool fused_;
};

/// Event-driven macro backend: same bits as the kernel, plus per-batch
/// PPA accounting merged into ppa_report().
class SimEngine : public ExecutionEngine {
 public:
  explicit SimEngine(const EngineOptions& opts) : accel_(opts.accel) {}

  void run_batch(const ModelHandle& model,
                 const maddness::QuantizedActivations& batch,
                 std::vector<std::int16_t>& out) override {
    maddness::QuantizedActivations staged;
    const maddness::QuantizedActivations* input = &batch;
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      core::AcceleratorResult r = [&] {
        // The macro run folds encode + accumulate into one event-driven
        // pass; attribute it to the accumulate stage.
        SSMA_TRACE_SPAN_TAG(kLutAccumulate, s);
        return accel_.run(model.stage(s), *input);
      }();
      reports_.push_back(std::move(r.report));
      if (s + 1 < model.num_stages()) {
        SSMA_TRACE_SPAN_TAG(kEpilogue, s);
        staged = stage_handoff(model.stage(s), model.stage(s + 1),
                               r.outputs, input->rows);
        input = &staged;
      } else {
        out = std::move(r.outputs);
      }
    }
  }

  EngineInfo info() const override {
    return {"simulate", Backend::kSimulate, true, false};
  }

  core::PpaReport ppa_report() const override {
    if (reports_.empty()) {
      // Idle engine: its macro still exists — contribute the silicon
      // (config echo + area/SRAM) with zeroed run-dependent fields.
      core::PpaReport silicon = accel_.analytic_report(0);
      silicon.freq_mhz = 0.0;
      silicon.throughput_tops = 0.0;
      silicon.token_interval_ns = 0.0;
      silicon.tops_per_w = 0.0;
      silicon.tops_per_mm2 = 0.0;
      silicon.energy_per_op_fj = 0.0;
      silicon.energy_decoder_share = 0.0;
      silicon.energy_encoder_share = 0.0;
      return silicon;
    }
    return core::merge_sequential_reports(reports_);
  }

 private:
  core::Accelerator accel_;
  std::vector<core::PpaReport> reports_;
};

/// Hardware-in-the-loop pacing: outputs from the kernel, then block
/// until the modeled device's service time for the batch has elapsed —
/// like a host thread waiting on a real macro. Back-to-back batches
/// queue on the device; idle gaps don't accumulate credit.
class PacedEngine : public ExecutionEngine {
 public:
  explicit PacedEngine(const EngineOptions& opts)
      : kernel_(opts.fused_pipeline),
        pace_ns_(opts.device_ns_per_token > 0.0
                     ? opts.device_ns_per_token
                     : core::Accelerator(opts.accel)
                           .analytic_report(0)
                           .token_interval_ns),
        device_free_(SteadyClock::now()) {
    SSMA_CHECK_MSG(pace_ns_ > 0.0, "device pacing needs a token interval");
  }

  void run_batch(const ModelHandle& model,
                 const maddness::QuantizedActivations& batch,
                 std::vector<std::int16_t>& out) override {
    const SteadyClock::time_point t_exec = SteadyClock::now();
    kernel_.run_batch(model, batch, out);
    // The device serves one stage pass per token per stage.
    const double tokens =
        static_cast<double>(batch.rows) *
        static_cast<double>(model.num_stages());
    device_free_ = std::max(device_free_, t_exec) +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double, std::nano>(
                           tokens * pace_ns_));
    SSMA_TRACE_SPAN(kDeviceWait);
    std::this_thread::sleep_until(device_free_);
  }

  EngineInfo info() const override {
    return {"paced", Backend::kDevicePaced, false, true};
  }

 private:
  KernelEngine kernel_;
  double pace_ns_;
  SteadyClock::time_point device_free_;
};

}  // namespace

std::unique_ptr<ExecutionEngine> make_engine(const EngineOptions& opts) {
  switch (opts.backend) {
    case Backend::kKernel:
      return std::make_unique<KernelEngine>(opts.fused_pipeline);
    case Backend::kSimulate:
      return std::make_unique<SimEngine>(opts);
    case Backend::kDevicePaced:
      return std::make_unique<PacedEngine>(opts);
  }
  SSMA_CHECK_MSG(false, "unknown engine backend");
  return nullptr;
}

}  // namespace ssma::engine
