#include "engine/pipeline.hpp"

#include <utility>

#include "nn/maddness_network.hpp"
#include "util/check.hpp"

namespace ssma::engine {

maddness::QuantizedActivations stage_handoff(
    const maddness::Amm& prev, const maddness::Amm& next,
    const std::vector<std::int16_t>& acc, std::size_t rows) {
  SSMA_CHECK_MSG(static_cast<std::size_t>(next.cfg().total_dims()) ==
                     static_cast<std::size_t>(prev.lut().nout),
                 "stage handoff shape mismatch");
  const Matrix y = prev.dequantize_result(acc, rows);
  // Requantization saturates at [0, 255], which is exactly ReLU +
  // clip on the dequantized values — the inter-layer convention of the
  // uint8 activation pipeline.
  return maddness::quantize_activations(y, next.activation_scale());
}

std::vector<std::int16_t> pipeline_reference_apply(
    const ModelHandle& model, const maddness::QuantizedActivations& q) {
  std::vector<std::int16_t> acc = model.stage(0).apply_int16(q);
  for (std::size_t s = 1; s < model.num_stages(); ++s) {
    const maddness::QuantizedActivations qs =
        stage_handoff(model.stage(s - 1), model.stage(s), acc, q.rows);
    acc = model.stage(s).apply_int16(qs);
  }
  return acc;
}

maddness::Amm train_chained_stage(const maddness::Config& cfg,
                                  const Matrix& prev_output,
                                  const Matrix& weights,
                                  Matrix* next_input) {
  maddness::Amm amm = maddness::Amm::train(cfg, prev_output, weights);
  if (next_input) {
    // Error-aware chaining: the next stage calibrates on this stage's
    // *approximate* rectified output — the distribution it will see at
    // inference, not the exact-arithmetic one.
    Matrix out = amm.apply(prev_output);
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
    *next_input = std::move(out);
  }
  return amm;
}

std::vector<std::string> register_network_layers(
    ModelRegistry& registry, const std::string& prefix,
    const nn::MaddnessNetwork& net) {
  const std::vector<const maddness::Amm*> amms = net.substituted_amms();
  std::vector<std::string> names;
  names.reserve(amms.size());
  for (std::size_t i = 0; i < amms.size(); ++i) {
    std::string name = prefix + ".conv" + std::to_string(i);
    registry.register_model(name, *amms[i]);
    names.push_back(std::move(name));
  }
  return names;
}

std::vector<std::string> register_segments(
    ModelRegistry& registry, const std::string& prefix,
    const std::vector<const maddness::Amm*>& amms) {
  std::vector<std::string> names;
  std::size_t seg = 0;
  std::size_t i = 0;
  while (i < amms.size()) {
    // Greedy maximal chaining run: extend while the next operator's
    // input width equals this one's output width.
    std::size_t j = i + 1;
    while (j < amms.size() &&
           static_cast<std::size_t>(amms[j]->cfg().total_dims()) ==
               static_cast<std::size_t>(amms[j - 1]->lut().nout))
      ++j;
    std::string name = prefix + ".seg" + std::to_string(seg++);
    if (j - i == 1) {
      registry.register_model(name, *amms[i]);
    } else {
      registry.register_pipeline(
          name, std::vector<const maddness::Amm*>(amms.begin() + i,
                                                  amms.begin() + j));
    }
    names.push_back(std::move(name));
    i = j;
  }
  return names;
}

std::vector<std::string> register_network(ModelRegistry& registry,
                                          const std::string& prefix,
                                          const nn::MaddnessNetwork& net) {
  return register_segments(registry, prefix, net.substituted_amms());
}

}  // namespace ssma::engine
