#include "engine/model_registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "maddness/framing.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::engine {

namespace {

constexpr char kPipeMagic[8] = {'S', 'S', 'M', 'A', 'P', 'I', 'P', '1'};
constexpr char kAmmMagicPrefix[4] = {'S', 'S', 'M', 'A'};

void check_stage_chain(const std::vector<maddness::Amm>& stages) {
  SSMA_CHECK_MSG(!stages.empty(), "a model needs at least one stage");
  for (std::size_t i = 1; i < stages.size(); ++i)
    SSMA_CHECK_MSG(
        static_cast<std::size_t>(stages[i].cfg().total_dims()) ==
            static_cast<std::size_t>(stages[i - 1].lut().nout),
        "pipeline stage " << i << " consumes "
                          << stages[i].cfg().total_dims()
                          << " dims but stage " << i - 1 << " produces "
                          << stages[i - 1].lut().nout);
}

}  // namespace

std::string pipeline_blob(const std::vector<const maddness::Amm*>& stages) {
  SSMA_CHECK_MSG(!stages.empty(), "a pipeline needs at least one stage");
  std::ostringstream payload;
  wire::put_u64(payload, stages.size());
  for (const maddness::Amm* amm : stages) {
    SSMA_CHECK(amm != nullptr);
    maddness::write_framed_blob(payload, amm->save_string());
  }
  std::ostringstream os;
  os.write(kPipeMagic, sizeof(kPipeMagic));
  maddness::write_framed_blob(os, payload.str());
  return os.str();
}

ModelRef ModelHandle::from_blob(std::string name, std::uint64_t version,
                                std::string blob) {
  SSMA_CHECK_MSG(!name.empty(), "model name must be non-empty");
  // Names flow into refs ("name@version"), metrics tables and JSON
  // artifacts verbatim: keep them to a charset none of those need to
  // escape.
  SSMA_CHECK_MSG(name.find_first_not_of(
                     "abcdefghijklmnopqrstuvwxyz"
                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-") ==
                     std::string::npos,
                 "model name must be [A-Za-z0-9._-]: " << name);
  SSMA_CHECK(version >= 1);
  auto handle = std::shared_ptr<ModelHandle>(new ModelHandle());
  handle->name_ = std::move(name);
  handle->version_ = version;

  SSMA_CHECK_MSG(blob.size() >= 8, "model blob too short to be framed");
  if (std::equal(kPipeMagic, kPipeMagic + 8, blob.data())) {
    std::istringstream is(blob);
    is.ignore(8);
    std::istringstream payload(maddness::read_framed_blob(is));
    const std::uint64_t nstages = wire::get_u64(payload);
    SSMA_CHECK_MSG(nstages >= 1 && nstages <= 64,
                   "implausible pipeline stage count " << nstages);
    handle->stages_.reserve(static_cast<std::size_t>(nstages));
    for (std::uint64_t s = 0; s < nstages; ++s) {
      std::istringstream stage(maddness::read_framed_blob(payload));
      handle->stages_.push_back(maddness::Amm::load(stage));
    }
  } else {
    SSMA_CHECK_MSG(
        std::equal(kAmmMagicPrefix, kAmmMagicPrefix + 4, blob.data()),
        "not an SSMA model blob (model " << handle->name_ << ")");
    std::istringstream is(blob);
    handle->stages_.push_back(maddness::Amm::load(is));
  }
  check_stage_chain(handle->stages_);
  // Compile the execution descriptor once per handle: stages_ is
  // immutable from here on, so the plan's stage pointers stay valid for
  // the handle's lifetime.
  handle->plan_ = ExecutionPlan::compile(handle->stages_);
  handle->blob_ = std::move(blob);
  return handle;
}

ModelRef ModelHandle::from_amm(std::string name, std::uint64_t version,
                               const maddness::Amm& amm) {
  return from_blob(std::move(name), version, amm.save_string());
}

ModelRef ModelHandle::from_stages(
    std::string name, std::uint64_t version,
    const std::vector<const maddness::Amm*>& stages) {
  if (stages.size() == 1)
    return from_amm(std::move(name), version, *stages.front());
  return from_blob(std::move(name), version, pipeline_blob(stages));
}

std::size_t ModelHandle::cols() const {
  return static_cast<std::size_t>(stages_.front().cfg().total_dims());
}

std::size_t ModelHandle::nout() const {
  return static_cast<std::size_t>(stages_.back().lut().nout);
}

std::string ModelHandle::ref() const {
  return name_ + "@" + std::to_string(version_);
}

// ------------------------------------------------------------ registry

std::uint64_t ModelRegistry::register_model(const std::string& name,
                                            const maddness::Amm& amm) {
  return register_model(name, amm.save_string());
}

std::uint64_t ModelRegistry::register_model(const std::string& name,
                                            std::string blob,
                                            bool publish) {
  // Deserialize (and thereby validate) outside the lock so a slow bank
  // decode never blocks admission-path resolves; retry the version
  // claim if a concurrent register of the same name won the race.
  auto next_version = [&]() {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(name);
    if (it == models_.end()) return std::uint64_t{1};
    const Entry& entry = it->second;
    std::uint64_t v = entry.latest + 1;
    if (!entry.versions.empty())
      v = std::max(v, entry.versions.rbegin()->first + 1);
    return v;
  };
  std::uint64_t version = next_version();
  ModelRef handle = ModelHandle::from_blob(name, version, std::move(blob));
  for (;;) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = models_[name];
    if (!entry.versions.count(version)) {
      entry.versions[version] = handle;
      if (publish) entry.latest = std::max(entry.latest, version);
      return version;
    }
    version = entry.versions.rbegin()->first + 1;
    handle = ModelHandle::from_blob(name, version, handle->blob());
  }
}

void ModelRegistry::publish(const std::string& name,
                            std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  SSMA_CHECK_MSG(it != models_.end() &&
                     it->second.versions.count(version),
                 "publish of unregistered " << name << "@" << version);
  // A publish must move "@latest" forward. Re-publishing the current
  // latest (double publish) or a superseded version is a rollout-logic
  // bug — fail loud instead of silently doing nothing.
  SSMA_CHECK_MSG(version > it->second.latest,
                 "publish of " << name << "@" << version
                               << " does not advance latest (currently @"
                               << it->second.latest
                               << "): already published?");
  it->second.latest = version;
}

void ModelRegistry::discard_staged(const std::string& name,
                                   std::uint64_t version) {
  ModelRef doomed;  // destruct outside the lock, as in retire()
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  SSMA_CHECK_MSG(it != models_.end(), "unknown model " << name);
  Entry& entry = it->second;
  const auto vit = entry.versions.find(version);
  SSMA_CHECK_MSG(vit != entry.versions.end(),
                 "unknown version " << name << "@" << version);
  SSMA_CHECK_MSG(version > entry.latest,
                 "discard_staged of published " << name << "@" << version
                                                << " (latest is @"
                                                << entry.latest
                                                << "): use retire()");
  doomed = std::move(vit->second);
  entry.versions.erase(vit);
  if (entry.versions.empty()) models_.erase(it);
}

std::uint64_t ModelRegistry::register_pipeline(
    const std::string& name,
    const std::vector<const maddness::Amm*>& stages) {
  return register_model(name, pipeline_blob(stages));
}

void ModelRegistry::install(ModelRef handle) {
  SSMA_CHECK(handle != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = models_[handle->name()];
  entry.versions[handle->version()] = handle;
  entry.latest = std::max(entry.latest, handle->version());
}

ModelRef ModelRegistry::resolve(const std::string& ref) const {
  const std::size_t at = ref.find('@');
  if (at == std::string::npos) return resolve(ref, 0);
  const std::string name = ref.substr(0, at);
  const std::string tag = ref.substr(at + 1);
  if (tag == "latest") return resolve(name, 0);
  SSMA_CHECK_MSG(!tag.empty() && tag.find_first_not_of("0123456789") ==
                                     std::string::npos,
                 "malformed model ref: " << ref);
  const std::uint64_t version = std::strtoull(tag.c_str(), nullptr, 10);
  // Versions start at 1; "@0" is a bad ref, not a latest alias (0 is
  // only the internal latest sentinel of resolve(name, version)).
  SSMA_CHECK_MSG(version >= 1, "malformed model ref: " << ref);
  return resolve(name, version);
}

ModelRef ModelRegistry::resolve(const std::string& name,
                                std::uint64_t version) const {
  ModelRef handle = try_resolve(name, version);
  SSMA_CHECK_MSG(handle != nullptr,
                 "unknown model "
                     << name << "@"
                     << (version ? std::to_string(version) : "latest"));
  return handle;
}

ModelRef ModelRegistry::try_resolve(const std::string& name,
                                    std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  const Entry& entry = it->second;
  const std::uint64_t want = version ? version : entry.latest;
  const auto vit = entry.versions.find(want);
  return vit == entry.versions.end() ? nullptr : vit->second;
}

void ModelRegistry::retire(const std::string& name,
                           std::uint64_t version) {
  // The erased ModelRef may be the last owner; let the bank destruct
  // outside the lock.
  ModelRef doomed;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  SSMA_CHECK_MSG(it != models_.end(), "unknown model " << name);
  Entry& entry = it->second;
  const auto vit = entry.versions.find(version);
  SSMA_CHECK_MSG(vit != entry.versions.end(),
                 "unknown version " << name << "@" << version);
  // Retiring a staged-but-never-published version through this path
  // would silently skip the rollout bookkeeping; direct it explicitly.
  SSMA_CHECK_MSG(version <= entry.latest,
                 "retire of never-published "
                     << name << "@" << version << " (latest is @"
                     << entry.latest << "): use discard_staged()");
  doomed = std::move(vit->second);
  entry.versions.erase(vit);
  if (entry.versions.empty()) {
    models_.erase(it);
  } else if (entry.latest == version) {
    entry.latest = entry.versions.rbegin()->first;
  }
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& kv : models_) out.push_back(kv.first);
  return out;
}

std::vector<std::uint64_t> ModelRegistry::versions(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  const auto it = models_.find(name);
  if (it == models_.end()) return out;
  for (const auto& kv : it->second.versions) out.push_back(kv.first);
  return out;
}

std::uint64_t ModelRegistry::latest_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? 0 : it->second.latest;
}

std::size_t ModelRegistry::num_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

void ModelRegistry::save(std::ostream& os) const {
  // Snapshot the structure under the lock (handle refcount bumps only),
  // then stream the — immutable — blobs outside it: serializing a large
  // registry must not stall admission-path resolves (checkpoint cadence
  // runs save() from the submit path).
  std::map<std::string, Entry> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = models_;
  }
  wire::put_u64(os, snapshot.size());
  for (const auto& kv : snapshot) {  // std::map: sorted, deterministic
    wire::put_u64(os, kv.first.size());
    os.write(kv.first.data(),
             static_cast<std::streamsize>(kv.first.size()));
    wire::put_u64(os, kv.second.latest);
    wire::put_u64(os, kv.second.versions.size());
    for (const auto& vv : kv.second.versions) {
      wire::put_u64(os, vv.first);
      const std::string& blob = vv.second->blob();
      wire::put_u64(os, blob.size());
      os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
  }
}

void ModelRegistry::load(std::istream& is) {
  const std::uint64_t nmodels = wire::get_u64(is);
  SSMA_CHECK_MSG(nmodels <= 4096, "implausible registry model count");
  for (std::uint64_t m = 0; m < nmodels; ++m) {
    std::string name(static_cast<std::size_t>(wire::get_u64(is)), '\0');
    is.read(name.data(), static_cast<std::streamsize>(name.size()));
    SSMA_CHECK_MSG(is.good(), "registry decode underflow");
    const std::uint64_t latest = wire::get_u64(is);
    const std::uint64_t nversions = wire::get_u64(is);
    SSMA_CHECK_MSG(nversions >= 1 && nversions <= 65536,
                   "implausible version count for model " << name);
    for (std::uint64_t v = 0; v < nversions; ++v) {
      const std::uint64_t version = wire::get_u64(is);
      std::string blob(static_cast<std::size_t>(wire::get_u64(is)), '\0');
      is.read(blob.data(), static_cast<std::streamsize>(blob.size()));
      SSMA_CHECK_MSG(is.good(), "registry decode underflow");
      install(ModelHandle::from_blob(name, version, std::move(blob)));
    }
    // Honor the saved latest pointer exactly — including latest == 0, a
    // name whose only versions were staged (registered, checkpointed,
    // but never published before the crash): the staged versions stay
    // explicitly resolvable for journal replay, but "@latest" must not
    // silently commit an uncommitted swap. install() bumped latest, so
    // undo that unless the saved pointer names a missing version (a
    // foreign/hand-edited blob — keep the install default then).
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(name);
    if (it != models_.end() &&
        (latest == 0 || it->second.versions.count(latest)))
      it->second.latest = latest;
  }
}

void ModelRegistry::merge(std::istream& is) {
  const std::uint64_t nmodels = wire::get_u64(is);
  SSMA_CHECK_MSG(nmodels <= 4096, "implausible registry model count");
  for (std::uint64_t m = 0; m < nmodels; ++m) {
    std::string name(static_cast<std::size_t>(wire::get_u64(is)), '\0');
    is.read(name.data(), static_cast<std::streamsize>(name.size()));
    SSMA_CHECK_MSG(is.good(), "registry decode underflow");
    const std::uint64_t latest = wire::get_u64(is);
    const std::uint64_t nversions = wire::get_u64(is);
    SSMA_CHECK_MSG(nversions >= 1 && nversions <= 65536,
                   "implausible version count for model " << name);
    for (std::uint64_t v = 0; v < nversions; ++v) {
      const std::uint64_t version = wire::get_u64(is);
      std::string blob(static_cast<std::size_t>(wire::get_u64(is)), '\0');
      is.read(blob.data(), static_cast<std::streamsize>(blob.size()));
      SSMA_CHECK_MSG(is.good(), "registry decode underflow");
      if (!try_resolve(name, version))
        install(ModelHandle::from_blob(name, version, std::move(blob)));
    }
    // Same latest-pointer fidelity as load(): the stream is
    // authoritative, newer than anything this registry was built from.
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(name);
    if (it != models_.end() &&
        (latest == 0 || it->second.versions.count(latest)))
      it->second.latest = latest;
  }
}

}  // namespace ssma::engine
