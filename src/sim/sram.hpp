// Two-port 10T-SRAM LUT array of one decoder: 16 rows x 8 columns
// (Fig. 5A). Reads are full-swing (no sense amplifier): the selected cell
// discharges RBL or RBLB; per-column completion is detected by the RCD
// NAND. The write port (WWL / WBL) programs LUT contents.
#pragma once

#include <array>
#include <cstdint>

#include "sim/context.hpp"

namespace ssma::sim {

class SramArray {
 public:
  /// `block`/`dec` select this array's variation-map slice.
  SramArray(int block = 0, int dec = 0) : block_(block), dec_(dec) {}

  /// Writes one row (8 bits = one int8 LUT word) via the write port.
  void write_row(SimContext& ctx, int row, std::int8_t word);

  std::int8_t read_word(int row) const;

  struct ColumnRead {
    int bit = 0;            ///< the value read (0/1)
    double delay_ns = 0.0;  ///< RBL/RBLB discharge time for this column
  };

  /// Reads column `col` of `row`, charging read energy. One of RBL/RBLB
  /// always swings fully, so energy is data-independent; delay varies with
  /// the column's local Vth offset.
  ColumnRead read_column(SimContext& ctx, int row, int col) const;

 private:
  int block_;
  int dec_;
  std::array<std::uint8_t, 16> rows_{};  ///< bit-packed storage
};

}  // namespace ssma::sim
