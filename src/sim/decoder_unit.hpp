// One decoder (Fig. 5): 16x8 10T-SRAM LUT + 16-bit CSA + output latch +
// per-column RCD aggregated by the RCD_LUT tournament. A decode reads the
// selected row, compresses it onto the incoming carry-save partial sums
// and reports completion through its RCD — the per-column self-timing
// that replaces a sense-amp replica path.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "ppa/tech_constants.hpp"
#include "sim/adders.hpp"
#include "sim/context.hpp"
#include "sim/rcd_tree.hpp"
#include "sim/sram.hpp"

namespace ssma::sim {

/// One decoder's LUT contents: the fixed 16-row hardware SRAM shape.
/// Software configs with a different Config::nprototypes() cannot be
/// programmed onto this unit — the programming paths check loudly.
using LutTable = std::array<std::int8_t, ppa::kProtosPerCodebook>;

class DecoderUnit {
 public:
  DecoderUnit(SimContext& ctx, int block, int dec);

  /// Programs the 16-entry LUT via the write port.
  void program(SimContext& ctx, const LutTable& table);

  std::int8_t lut_entry(int row) const { return sram_.read_word(row); }

  struct Done {
    CarrySave out;
    SimTime latch_time_ps = 0;  ///< when the output latches closed
  };

  /// Starts a decode at the current simulation time (RWL already
  /// asserted): reads row `row`, compresses onto `in`. `done` fires when
  /// this decoder's RCD_LUT output rises.
  void decode(SimContext& ctx, int row, CarrySave in,
              std::function<void(Done)> done);

  /// Latched output of the previous decode (drives downstream CSA).
  CarrySave latched() const { return latched_; }

 private:
  SramArray sram_;
  RcdTree lut_rcd_;
  CarrySave latched_{};
  double rcd_lut_prop_ns_;
};

}  // namespace ssma::sim
