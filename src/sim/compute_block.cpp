#include "sim/compute_block.hpp"

#include <string>

#include "util/check.hpp"

namespace ssma::sim {

ComputeBlock::ComputeBlock(SimContext& ctx, int index, int ndec,
                           bool speculative_encode)
    : ctx_(ctx),
      index_(index),
      ndec_(ndec),
      speculative_(speculative_encode),
      encoder_(index),
      block_rcd_(ndec, ctx.delay.rcd_block_ns(ndec)) {
  SSMA_CHECK(ndec >= 1);
  decoders_.reserve(ndec);
  for (int d = 0; d < ndec; ++d)
    decoders_.push_back(std::make_unique<DecoderUnit>(ctx, index, d));
}

void ComputeBlock::program_tree(SimContext& ctx,
                                const maddness::HashTree& tree) {
  encoder_.program(tree);
  // Threshold flops are written through the local write port.
  ctx.ledger.charge(EnergyCat::kWrite,
                    BdtEncoder::kNodes * 8.0 * ctx.energy.write_bit_fj());
}

void ComputeBlock::program_lut(SimContext& ctx, int dec,
                               const std::array<std::int8_t, 16>& table) {
  SSMA_CHECK(dec >= 0 && dec < ndec_);
  decoders_[dec]->program(ctx, table);
}

void ComputeBlock::connect(FourPhaseLink* up, FourPhaseLink* down) {
  up_ = up;
  down_ = down;
  up_->set_consumer([this](const Token& t) { return on_offer(t); });
  down_->set_producer([this] { on_downstream_rtz(); });
}

bool ComputeBlock::on_offer(const Token& t) {
  if (state_ != State::kReady) return false;
  SSMA_CHECK_MSG(static_cast<int>(t.lanes.size()) == ndec_,
                 "token lane count mismatch");
  state_ = State::kComputing;
  current_ = t;
  accept_time_ = ctx_.sched.now();
  ctx_.trace_signal("block" + std::to_string(index_) + ".state", "compute");
  // Handshake controller + input latching energy for this pass.
  ctx_.ledger.charge(EnergyCat::kControl, ctx_.energy.ctrl_pass_fj(ndec_));
  ctx_.sched.after(0, [this] { start_compute(); });
  return true;
}

void ComputeBlock::start_compute() {
  SSMA_CHECK(fetch_);
  if (speculative_ && spec_index_ == current_.index) {
    if (spec_valid_) {
      // The encoder raced ahead and already classified this token.
      spec_valid_ = false;
      proceed_with_leaf(spec_result_);
    } else {
      SSMA_CHECK(spec_running_);
      waiting_for_spec_ = true;  // on_spec_encoded will continue
    }
    return;
  }
  const Subvec* sv = fetch_(current_.index);
  SSMA_CHECK_MSG(sv != nullptr, "no input for token");
  encoder_.encode(ctx_, sv->data(),
                  [this](BdtEncoder::Result r) { on_encoded(r); });
}

void ComputeBlock::on_encoded(const BdtEncoder::Result& r) {
  encoder_latency_ns_.add(r.total_delay_ns);
  // Encoder rails precharge now, hidden under the decode phase.
  encoder_.precharge(ctx_);
  encoder_free_at_ =
      ctx_.sched.now() + ps_from_ns(ctx_.delay.precharge_ns());
  proceed_with_leaf(r);
}

void ComputeBlock::proceed_with_leaf(const BdtEncoder::Result& r) {
  ctx_.trace_signal("block" + std::to_string(index_) + ".leaf",
                    std::to_string(r.leaf));
  block_rcd_.reset();
  result_ = Token{current_.index, std::vector<CarrySave>(ndec_)};

  maybe_start_speculative(current_.index + 1);

  // RWL driver broadcasts the one-hot row select across all Ndec LUTs.
  ctx_.sched.after_ns(ctx_.delay.rwl_ns(ndec_), [this, leaf = r.leaf] {
    for (int d = 0; d < ndec_; ++d) {
      decoders_[d]->decode(
          ctx_, leaf, current_.lanes[d], [this, d](DecoderUnit::Done done) {
            result_.lanes[d] = done.out;
            bitline_precharged_ =
                std::max(bitline_precharged_,
                         done.latch_time_ps +
                             ps_from_ns(ctx_.delay.precharge_ns()));
            block_rcd_.leaf_done(ctx_, [this] { on_block_rcd_done(); });
          });
    }
  });
}

void ComputeBlock::maybe_start_speculative(long long idx) {
  if (!speculative_ || spec_running_ || spec_valid_) return;
  const Subvec* sv = fetch_(idx);
  if (sv == nullptr) return;
  spec_running_ = true;
  spec_index_ = idx;
  // The encoder may still be precharging from its previous evaluation.
  const SimTime start = std::max(ctx_.sched.now(), encoder_free_at_);
  ctx_.sched.at(start, [this, sv] {
    encoder_.encode(ctx_, sv->data(),
                    [this](BdtEncoder::Result r) { on_spec_encoded(r); });
  });
}

void ComputeBlock::on_spec_encoded(const BdtEncoder::Result& r) {
  encoder_latency_ns_.add(r.total_delay_ns);
  encoder_.precharge(ctx_);
  encoder_free_at_ =
      ctx_.sched.now() + ps_from_ns(ctx_.delay.precharge_ns());
  spec_running_ = false;
  spec_result_ = r;
  if (waiting_for_spec_) {
    SSMA_CHECK(current_.index == spec_index_);
    waiting_for_spec_ = false;
    proceed_with_leaf(r);
  } else {
    spec_valid_ = true;
  }
}

void ComputeBlock::on_block_rcd_done() {
  // Completion detected; the controller raises REQ to the next stage
  // after its four-phase control delay.
  ctx_.sched.after_ns(ctx_.delay.handshake_ns(), [this] {
    latency_ns_.add(ns_from_ps(ctx_.sched.now() - accept_time_));
    state_ = State::kWaitDownstream;
    down_->offer(ctx_, result_);
  });
}

void ComputeBlock::on_downstream_rtz() {
  SSMA_CHECK(state_ == State::kWaitDownstream);
  // Bitlines precharge in the shadow of the RCD/handshake tail; only if
  // that window was shorter than the precharge time do we wait here.
  const SimTime now = ctx_.sched.now();
  if (now >= bitline_precharged_) {
    become_ready();
  } else {
    ctx_.sched.at(bitline_precharged_, [this] { become_ready(); });
  }
}

void ComputeBlock::become_ready() {
  state_ = State::kReady;
  ctx_.trace_signal("block" + std::to_string(index_) + ".state", "ready");
  up_->consumer_ready(ctx_);
}

}  // namespace ssma::sim
