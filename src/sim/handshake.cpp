#include "sim/handshake.hpp"

#include <utility>

#include "util/check.hpp"

namespace ssma::sim {

void FourPhaseLink::set_consumer(OfferHook on_offer) {
  on_offer_ = std::move(on_offer);
}

void FourPhaseLink::set_producer(RtzHook on_rtz_complete) {
  on_rtz_ = std::move(on_rtz_complete);
}

void FourPhaseLink::offer(SimContext& ctx, Token t) {
  SSMA_CHECK_MSG(state_ == State::kIdle,
                 "four-phase violation: REQ raised while link in state "
                     << static_cast<int>(state_));
  SSMA_CHECK_MSG(!pending_, "four-phase violation: double offer");
  pending_ = std::move(t);
  state_ = State::kReqHigh;
  if (!trace_id_.empty()) ctx.trace_signal(trace_id_ + ".req", "1");
  deliver(ctx);
}

void FourPhaseLink::consumer_ready(SimContext& ctx) {
  if (state_ == State::kReqHigh && pending_) deliver(ctx);
}

void FourPhaseLink::deliver(SimContext& ctx) {
  SSMA_CHECK(state_ == State::kReqHigh);
  SSMA_CHECK(static_cast<bool>(on_offer_));
  if (on_offer_(*pending_)) accept_sequence(ctx);
}

void FourPhaseLink::accept_sequence(SimContext& ctx) {
  // ACK rises; REQ falls; ACK falls. The signal round trip is lumped into
  // the calibrated handshake delay charged by the producing block, so the
  // return-to-zero transitions execute back-to-back as zero-delay events
  // (kept as separate events so the ordering is observable and checked).
  state_ = State::kAckHigh;
  pending_.reset();
  if (!trace_id_.empty()) ctx.trace_signal(trace_id_ + ".ack", "1");
  ctx.sched.after(0, [this, &ctx] {
    SSMA_CHECK_MSG(state_ == State::kAckHigh,
                   "four-phase violation: REQ fall out of order");
    state_ = State::kReqLow;
    if (!trace_id_.empty()) ctx.trace_signal(trace_id_ + ".req", "0");
    ctx.sched.after(0, [this, &ctx] {
      SSMA_CHECK_MSG(state_ == State::kReqLow,
                     "four-phase violation: ACK fall out of order");
      state_ = State::kIdle;
      if (!trace_id_.empty()) ctx.trace_signal(trace_id_ + ".ack", "0");
      ++cycles_;
      if (on_rtz_) on_rtz_();
    });
  });
}

}  // namespace ssma::sim
