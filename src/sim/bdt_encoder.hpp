// The compute block's PQ encoder: 15 DLCs in a 4-level tournament
// (Fig. 4A). Only the DLC on the active path evaluates at each level
// (dynamic logic auto-gates the rest), so exactly 4 of 15 comparators
// discharge per encoding.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "maddness/hash_tree.hpp"
#include "sim/dlc.hpp"

namespace ssma::sim {

class BdtEncoder {
 public:
  static constexpr int kLevels = maddness::HashTree::kLevels;
  static constexpr int kNodes = maddness::HashTree::kNodes;

  /// `block_index` selects this encoder's variation-map slice.
  explicit BdtEncoder(int block_index = 0) : block_(block_index) {}

  /// Programs thresholds and per-level split dims from a learned tree.
  void program(const maddness::HashTree& tree);

  /// Writes one threshold flop directly (write-path model); charges write
  /// energy.
  void write_threshold(SimContext& ctx, int flat_node, std::uint8_t t);

  const maddness::HashTree& tree() const { return tree_; }

  struct Result {
    int leaf = 0;                       ///< prototype index [0, 16)
    double total_delay_ns = 0.0;        ///< sum of the 4 DLC evaluations
    std::array<int, kLevels> depths{};  ///< per-level resolution depths
  };

  /// Runs the 4-level evaluation on the subvector, charging DLC energy.
  /// `done` fires on the scheduler after the accumulated encoder delay.
  void encode(SimContext& ctx, const std::uint8_t* subvec,
              std::function<void(Result)> done);

  /// Precharges all 15 DLCs (energy only; timing handled by the block's
  /// precharge phase).
  void precharge(SimContext& ctx);

 private:
  int block_;
  maddness::HashTree tree_;
  std::array<Dlc, kNodes> dlcs_;
};

}  // namespace ssma::sim
