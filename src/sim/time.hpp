// Simulation time base: integer picoseconds. Integer time keeps event
// ordering exact and runs bit-reproducible across platforms.
#pragma once

#include <cmath>
#include <cstdint>

namespace ssma::sim {

using SimTime = std::int64_t;  // picoseconds

inline SimTime ps_from_ns(double ns) {
  return static_cast<SimTime>(std::llround(ns * 1000.0));
}

inline double ns_from_ps(SimTime ps) {
  return static_cast<double>(ps) * 1e-3;
}

}  // namespace ssma::sim
