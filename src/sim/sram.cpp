#include "sim/sram.hpp"

#include "util/check.hpp"

namespace ssma::sim {

void SramArray::write_row(SimContext& ctx, int row, std::int8_t word) {
  SSMA_CHECK(row >= 0 && row < 16);
  rows_[row] = static_cast<std::uint8_t>(word);
  ctx.ledger.charge(EnergyCat::kWrite, 8.0 * ctx.energy.write_bit_fj());
}

std::int8_t SramArray::read_word(int row) const {
  SSMA_CHECK(row >= 0 && row < 16);
  return static_cast<std::int8_t>(rows_[row]);
}

SramArray::ColumnRead SramArray::read_column(SimContext& ctx, int row,
                                             int col) const {
  SSMA_CHECK(row >= 0 && row < 16);
  SSMA_CHECK(col >= 0 && col < 8);
  ColumnRead r;
  r.bit = (rows_[row] >> col) & 1;
  const double vth_off =
      ctx.variation.empty() ? 0.0 : ctx.variation.column_vth(block_, dec_, col);
  r.delay_ns = ctx.delay.rbl_discharge_ns(vth_off);
  ctx.ledger.charge(EnergyCat::kSramRead, ctx.energy.column_read_fj());
  return r;
}

}  // namespace ssma::sim
