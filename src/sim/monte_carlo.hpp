// Monte-Carlo local-variation sampling: draws one within-die variation
// map (per-DLC and per-SRAM-column Vth offsets) per simulated die. Used
// by the variation ablation bench to reproduce the paper's observation
// that large Ndec makes the macro vulnerable to local variation
// (Sec. IV), motivating the Ndec=16 recommendation.
#pragma once

#include "sim/variation.hpp"
#include "util/rng.hpp"

namespace ssma::sim {

struct VariationConfig {
  double dlc_vth_sigma_v;     ///< per-DLC threshold mismatch sigma [V]
  double column_vth_sigma_v;  ///< per-column read-path mismatch sigma [V]
  VariationConfig();
};

/// Samples one die's variation map.
VariationMap sample_variation(int ns, int ndec, const VariationConfig& cfg,
                              Rng& rng);

}  // namespace ssma::sim
