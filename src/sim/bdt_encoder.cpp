#include "sim/bdt_encoder.hpp"

#include "util/check.hpp"

namespace ssma::sim {

void BdtEncoder::program(const maddness::HashTree& tree) {
  tree_ = tree;
  for (int n = 0; n < kNodes; ++n)
    dlcs_[n].set_threshold(tree.threshold_flat(n));
}

void BdtEncoder::write_threshold(SimContext& ctx, int flat_node,
                                 std::uint8_t t) {
  SSMA_CHECK(flat_node >= 0 && flat_node < kNodes);
  dlcs_[flat_node].set_threshold(t);
  const int level = flat_node < 1 ? 0 : (flat_node < 3 ? 1 : (flat_node < 7 ? 2 : 3));
  const int node = flat_node - ((1 << level) - 1);
  tree_.set_threshold(level, node, t);
  ctx.ledger.charge(EnergyCat::kWrite, 8.0 * ctx.energy.write_bit_fj());
}

void BdtEncoder::encode(SimContext& ctx, const std::uint8_t* subvec,
                        std::function<void(Result)> done) {
  // Apply per-node variation offsets lazily (the map may be installed
  // after construction).
  if (!ctx.variation.empty()) {
    for (int n = 0; n < kNodes; ++n)
      dlcs_[n].set_vth_offset(ctx.variation.dlc_vth(block_, n));
  }

  ctx.ledger.charge(EnergyCat::kEncoderBuffer, ctx.energy.input_buffer_fj());

  // The four evaluations are sequential (each level's result selects the
  // next DLC); functionally we can resolve the whole path now and let the
  // scheduler realize the total delay.
  Result r;
  int node = 0;
  double total_ns = 0.0;
  for (int level = 0; level < kLevels; ++level) {
    const int flat = (1 << level) - 1 + node;
    const std::uint8_t x = subvec[tree_.split_dim(level)];
    const DlcResult dr = dlcs_[flat].evaluate(ctx, x);
    r.depths[level] = dr.depth;
    total_ns += dr.delay_ns;
    node = 2 * node + (dr.x_ge_t ? 1 : 0);
  }
  r.leaf = node;
  r.total_delay_ns = total_ns;
  ctx.sched.after_ns(total_ns,
                     [done = std::move(done), r]() mutable { done(r); });
}

void BdtEncoder::precharge(SimContext& ctx) {
  for (int n = 0; n < kNodes; ++n) {
    (void)n;
    Dlc::charge_precharge(ctx);
  }
}

}  // namespace ssma::sim
