#include "sim/energy_ledger.hpp"

#include <sstream>

#include "util/check.hpp"

namespace ssma::sim {

const char* energy_cat_name(EnergyCat c) {
  switch (c) {
    case EnergyCat::kEncoderDlc: return "encoder.dlc";
    case EnergyCat::kEncoderBuffer: return "encoder.buffer";
    case EnergyCat::kSramRead: return "decoder.sram";
    case EnergyCat::kCsa: return "decoder.csa";
    case EnergyCat::kLatch: return "decoder.latch";
    case EnergyCat::kRcd: return "decoder.rcd";
    case EnergyCat::kControl: return "control";
    case EnergyCat::kOutputStage: return "output";
    case EnergyCat::kWrite: return "write";
    case EnergyCat::kLeakageDecoder: return "decoder.leakage";
    case EnergyCat::kLeakage: return "leakage";
    case EnergyCat::kCount: break;
  }
  return "?";
}

void EnergyLedger::charge(EnergyCat cat, double fj) {
  SSMA_CHECK(cat != EnergyCat::kCount);
  SSMA_CHECK_MSG(fj >= 0.0, "negative energy charge");
  fj_[static_cast<std::size_t>(cat)] += fj;
}

void EnergyLedger::reset() { fj_.fill(0.0); }

EnergyLedger EnergyLedger::delta(const EnergyLedger& after,
                                 const EnergyLedger& before) {
  EnergyLedger d;
  for (std::size_t i = 0; i < d.fj_.size(); ++i) {
    d.fj_[i] = after.fj_[i] - before.fj_[i];
    SSMA_CHECK_MSG(d.fj_[i] >= -1e-9, "ledger went backwards");
  }
  return d;
}

double EnergyLedger::total_fj() const {
  double t = 0.0;
  for (double v : fj_) t += v;
  return t;
}

double EnergyLedger::fj(EnergyCat cat) const {
  SSMA_CHECK(cat != EnergyCat::kCount);
  return fj_[static_cast<std::size_t>(cat)];
}

double EnergyLedger::decoder_fj() const {
  return fj(EnergyCat::kSramRead) + fj(EnergyCat::kCsa) +
         fj(EnergyCat::kLatch) + fj(EnergyCat::kRcd) +
         fj(EnergyCat::kLeakageDecoder);
}

double EnergyLedger::encoder_fj() const {
  return fj(EnergyCat::kEncoderDlc) + fj(EnergyCat::kEncoderBuffer);
}

double EnergyLedger::other_fj() const {
  return fj(EnergyCat::kControl) + fj(EnergyCat::kOutputStage) +
         fj(EnergyCat::kWrite) + fj(EnergyCat::kLeakage);
}

std::string EnergyLedger::summary() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < fj_.size(); ++i) {
    oss << energy_cat_name(static_cast<EnergyCat>(i)) << ": " << fj_[i]
        << " fJ\n";
  }
  oss << "total: " << total_fj() << " fJ\n";
  return oss.str();
}

}  // namespace ssma::sim
