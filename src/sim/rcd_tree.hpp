// Read-completion-detection aggregation (Fig. 5C and Fig. 2): per-column
// RCD signals combine through a NAND-NOR tournament into RCD_LUT, and the
// per-decoder RCD_LUT signals combine into the block-level RCD used by
// the handshake controller. The tree fires only after *all* leaves have
// fired — the self-timing property that makes the design PVT-robust.
#pragma once

#include <functional>

#include "sim/context.hpp"

namespace ssma::sim {

class RcdTree {
 public:
  /// `leaves` inputs; `prop_delay_ns` is the full tournament propagation
  /// delay from last-leaf arrival to output (already voltage-scaled by
  /// the caller via DelayModel).
  RcdTree(int leaves, double prop_delay_ns);

  int leaves() const { return leaves_; }

  /// Re-arms the tree for a new cycle (all leaves low).
  void reset();

  /// Marks one leaf complete at the current simulation time. When the
  /// last leaf arrives, `done` fires after the tournament propagation
  /// delay. Overrunning the leaf count without reset() is a protocol
  /// error.
  void leaf_done(SimContext& ctx, std::function<void()> done);

  bool fired() const { return fired_; }

 private:
  int leaves_;
  double prop_delay_ns_;
  int arrived_ = 0;
  bool fired_ = false;
};

}  // namespace ssma::sim
