// Four-phase handshake link between adjacent pipeline stages
// (REQ up, ACK up, REQ down, ACK down — return-to-zero signalling, as in
// Sit et al. [26]). The link carries one token; a producer whose consumer
// is busy stalls with REQ held high, which is what makes the pipeline
// elastic. An embedded protocol checker turns any out-of-order transition
// into a CheckError.
#pragma once

#include <functional>
#include <optional>

#include "sim/context.hpp"
#include "sim/token.hpp"

namespace ssma::sim {

class FourPhaseLink {
 public:
  enum class State { kIdle, kReqHigh, kAckHigh, kReqLow };

  /// Consumer hook: called when a token is offered (REQ rises or the
  /// consumer declares readiness with a token pending). Return true to
  /// accept now — the consumer must then latch the payload and the link
  /// runs the ACK/return-to-zero sequence; return false to leave the
  /// token pending with REQ held high.
  using OfferHook = std::function<bool(const Token&)>;
  /// Producer hook: called when the return-to-zero completes (ACK fell) —
  /// the producer may then start its precharge/next cycle.
  using RtzHook = std::function<void()>;

  void set_consumer(OfferHook on_offer);
  void set_producer(RtzHook on_rtz_complete);

  /// Names this link's REQ/ACK signals in traces (e.g. "link3").
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }

  State state() const { return state_; }
  bool idle() const { return state_ == State::kIdle; }
  bool has_pending() const { return pending_.has_value(); }
  long long completed_cycles() const { return cycles_; }

  /// Producer: raises REQ with the token. Protocol error if a previous
  /// cycle has not completed.
  void offer(SimContext& ctx, Token t);

  /// Consumer: signals it can accept again; re-delivers a pending token.
  void consumer_ready(SimContext& ctx);

 private:
  void deliver(SimContext& ctx);
  void accept_sequence(SimContext& ctx);

  State state_ = State::kIdle;
  std::optional<Token> pending_;
  OfferHook on_offer_;
  RtzHook on_rtz_;
  long long cycles_ = 0;
  std::string trace_id_;
};

}  // namespace ssma::sim
