// Shared simulation context: the event scheduler, energy ledger, the
// calibrated delay/energy models at the chosen operating point, and the
// (optional) local-variation map. Components hold a reference to this.
#pragma once

#include "ppa/delay_model.hpp"
#include "ppa/energy_model.hpp"
#include "ppa/operating_point.hpp"
#include "sim/energy_ledger.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/variation.hpp"

namespace ssma::sim {

struct SimContext {
  explicit SimContext(const ppa::OperatingPoint& op)
      : delay(op), energy(op) {}

  Scheduler sched;
  EnergyLedger ledger;
  ppa::DelayModel delay;
  ppa::EnergyModel energy;
  VariationMap variation;     ///< empty = nominal devices
  TraceSink* trace = nullptr;  ///< optional signal tracing

  void trace_signal(const char* signal, const char* value) {
    if (trace) trace->record(sched.now(), signal, value);
  }
  void trace_signal(const std::string& signal, const std::string& value) {
    if (trace) trace->record(sched.now(), signal, value);
  }
};

}  // namespace ssma::sim
