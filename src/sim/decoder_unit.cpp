#include "sim/decoder_unit.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace ssma::sim {

DecoderUnit::DecoderUnit(SimContext& ctx, int block, int dec)
    : sram_(block, dec),
      lut_rcd_(8, ctx.delay.rcd_lut_ns()),
      rcd_lut_prop_ns_(ctx.delay.rcd_lut_ns()) {}

void DecoderUnit::program(SimContext& ctx, const LutTable& table) {
  for (int row = 0; row < ppa::kProtosPerCodebook; ++row)
    sram_.write_row(ctx, row, table[row]);
}

void DecoderUnit::decode(SimContext& ctx, int row, CarrySave in,
                         std::function<void(Done)> done) {
  SSMA_CHECK(row >= 0 && row < ppa::kProtosPerCodebook);
  lut_rcd_.reset();

  // Functional result is fully determined now; events realize the timing.
  const std::int8_t word = sram_.read_word(row);
  const CarrySave out = csa_step(in, word);
  const int toggles = csa_toggled_bits(latched_, out);

  // Per-column path: RBL/RBLB discharge -> FA settle -> RCD_col -> GE
  // pulse + latch. Each column signals the RCD_LUT tournament
  // independently (column-level completion detection, Sec. III-C).
  const double tail_ns = ctx.delay.csa_ns() + ctx.delay.rcd_col_ns() +
                         ctx.delay.latch_ns();
  SimTime last_latch = ctx.sched.now();
  auto shared_done =
      std::make_shared<std::function<void(Done)>>(std::move(done));
  for (int col = 0; col < 8; ++col) {
    const SramArray::ColumnRead r = sram_.read_column(ctx, row, col);
    const SimTime t_latch =
        ctx.sched.now() + ps_from_ns(r.delay_ns + tail_ns);
    last_latch = std::max(last_latch, t_latch);
    ctx.sched.at(t_latch, [this, &ctx, col, out, toggles, t_latch,
                           shared_done] {
      (void)col;
      lut_rcd_.leaf_done(ctx, [this, &ctx, out, toggles, t_latch,
                               shared_done] {
        // All columns latched; RCD_LUT has propagated.
        latched_ = out;
        ctx.ledger.charge(EnergyCat::kCsa, ctx.energy.csa_fj(toggles));
        ctx.ledger.charge(EnergyCat::kLatch, ctx.energy.latch_fj());
        ctx.ledger.charge(EnergyCat::kRcd, ctx.energy.rcd_lut_fj());
        (*shared_done)(Done{out, t_latch});
      });
    });
  }
}

}  // namespace ssma::sim
