// One pipeline stage (Fig. 2): BDT encoder + Ndec decoders + RWL driver +
// block-level RCD tree + four-phase handshake controller. Accepts a token
// from upstream, encodes its own subvector, looks up all Ndec LUTs,
// compresses onto the incoming partial sums and forwards the token
// downstream. Precharge overlaps the same token's decode phase, so the
// steady-state pipeline interval equals the block's compute latency.
//
// Speculative-encode extension (not in the paper's serial schedule): the
// encoder's operand is the block's *own* subvector, independent of the
// upstream partial sums — so encoding of token k+1 can start while the
// block waits for token k+1's partials, hiding most of the
// encoder-dominated latency (see bench/ablation_speculative).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "maddness/hash_tree.hpp"
#include "sim/bdt_encoder.hpp"
#include "sim/decoder_unit.hpp"
#include "sim/handshake.hpp"
#include "sim/rcd_tree.hpp"
#include "util/stats.hpp"

namespace ssma::sim {

class ComputeBlock {
 public:
  /// Fetches the block's subvector for a token index from its input
  /// buffer (owned by the macro); nullptr when no such token exists.
  using FetchSubvec = std::function<const Subvec*(long long)>;

  ComputeBlock(SimContext& ctx, int index, int ndec,
               bool speculative_encode = false);

  int index() const { return index_; }
  int ndec() const { return ndec_; }

  void program_tree(SimContext& ctx, const maddness::HashTree& tree);
  void program_lut(SimContext& ctx, int dec,
                   const std::array<std::int8_t, 16>& table);
  const BdtEncoder& encoder() const { return encoder_; }
  const DecoderUnit& decoder(int dec) const { return *decoders_[dec]; }

  void set_fetch(FetchSubvec fetch) { fetch_ = std::move(fetch); }

  /// Wires the block between its upstream and downstream links.
  void connect(FourPhaseLink* up, FourPhaseLink* down);

  /// Per-token compute latency (accept -> REQ_out), for Fig. 7B style
  /// measurements.
  const SampleSet& latency_ns() const { return latency_ns_; }

  /// Distribution of encoder resolution latencies seen.
  const SampleSet& encoder_latency_ns() const { return encoder_latency_ns_; }

 private:
  enum class State { kReady, kComputing, kWaitDownstream };

  bool on_offer(const Token& t);
  void start_compute();
  void on_encoded(const BdtEncoder::Result& r);
  /// Common tail after the leaf index is known: RWL + decoders + RCD.
  void proceed_with_leaf(const BdtEncoder::Result& r);
  void maybe_start_speculative(long long idx);
  void on_spec_encoded(const BdtEncoder::Result& r);
  void on_block_rcd_done();
  void on_downstream_rtz();
  void become_ready();

  SimContext& ctx_;
  int index_;
  int ndec_;
  bool speculative_;
  State state_ = State::kReady;

  BdtEncoder encoder_;
  std::vector<std::unique_ptr<DecoderUnit>> decoders_;
  RcdTree block_rcd_;
  FetchSubvec fetch_;

  FourPhaseLink* up_ = nullptr;
  FourPhaseLink* down_ = nullptr;

  Token current_;
  Token result_;
  SimTime accept_time_ = 0;
  SimTime bitline_precharged_ = 0;  ///< absolute time precharge completes
  SimTime encoder_free_at_ = 0;     ///< encoder rails precharged again

  // Speculative-encode state.
  bool spec_valid_ = false;
  bool spec_running_ = false;
  bool waiting_for_spec_ = false;
  long long spec_index_ = -1;
  BdtEncoder::Result spec_result_{};

  SampleSet latency_ns_;
  SampleSet encoder_latency_ns_;
};

}  // namespace ssma::sim
