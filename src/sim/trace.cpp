#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "telemetry/chrome_trace.hpp"
#include "util/check.hpp"

namespace ssma::sim {

void TraceSink::record(SimTime t, std::string signal, std::string value) {
  SSMA_CHECK(!signal.empty());
  records_.push_back(Record{t, std::move(signal), std::move(value)});
}

std::vector<TraceSink::Record> TraceSink::for_signal(
    const std::string& signal) const {
  std::vector<Record> out;
  for (const auto& r : records_)
    if (r.signal == signal) out.push_back(r);
  return out;
}

std::string TraceSink::render_text() const {
  std::ostringstream oss;
  for (const auto& r : records_) {
    oss.setf(std::ios::fixed);
    oss.precision(3);
    oss << ns_from_ps(r.t) << " ns  " << r.signal << " = " << r.value
        << "\n";
  }
  return oss.str();
}

std::string TraceSink::render_vcd(const std::string& module) const {
  // Assign a short identifier per distinct signal.
  std::map<std::string, std::string> ids;
  auto make_id = [](std::size_t n) {
    std::string id;
    do {
      id.push_back(static_cast<char>('!' + n % 94));
      n /= 94;
    } while (n);
    return id;
  };
  for (const auto& r : records_)
    if (!ids.count(r.signal)) ids[r.signal] = make_id(ids.size());

  std::ostringstream oss;
  oss << "$timescale 1ps $end\n";
  oss << "$scope module " << module << " $end\n";
  for (const auto& [sig, id] : ids) {
    // VCD identifiers cannot contain whitespace; signal names are
    // dot-separated already.
    oss << "$var string 1 " << id << " " << sig << " $end\n";
  }
  oss << "$upscope $end\n$enddefinitions $end\n";

  // Records are appended in execution order, which is time order.
  SimTime last = -1;
  for (const auto& r : records_) {
    if (r.t != last) {
      oss << "#" << r.t << "\n";
      last = r.t;
    }
    oss << "s" << r.value << " " << ids[r.signal] << "\n";
  }
  return oss.str();
}

std::string TraceSink::render_chrome_json(const std::string& module) const {
  telemetry::ChromeTraceWriter writer(module);

  // One track (tid) per signal, in first-appearance order so the UI
  // layout matches the simulation's narrative order.
  std::map<std::string, int> tids;
  for (const Record& r : records_) {
    if (tids.count(r.signal)) continue;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids[r.signal] = tid;
    writer.add_thread_name(tid, r.signal);
  }

  // A signal holds each value until its next transition: consecutive
  // records per signal become complete events, the last an instant.
  // SimTime is integer picoseconds; trace ts is microseconds.
  constexpr double kUsPerPs = 1e-6;
  std::map<std::string, const Record*> open;
  for (const Record& r : records_) {
    const auto it = open.find(r.signal);
    if (it != open.end()) {
      const Record* prev = it->second;
      writer.add_complete(tids[r.signal], prev->value,
                          static_cast<double>(prev->t) * kUsPerPs,
                          static_cast<double>(r.t - prev->t) * kUsPerPs);
    }
    open[r.signal] = &r;
  }
  for (const auto& [signal, last] : open) {
    writer.add_instant(tids[signal], last->value,
                       static_cast<double>(last->t) * kUsPerPs);
  }
  return writer.render();
}

}  // namespace ssma::sim
