#include "sim/scheduler.hpp"

#include <utility>

#include "util/check.hpp"

namespace ssma::sim {

void Scheduler::at(SimTime t, Action fn) {
  SSMA_CHECK_MSG(t >= now_, "event scheduled in the past: " << t << " < "
                                                            << now_);
  queue_.push(Ev{t, next_seq_++, std::move(fn)});
}

void Scheduler::after(SimTime delay_ps, Action fn) {
  SSMA_CHECK(delay_ps >= 0);
  at(now_ + delay_ps, std::move(fn));
}

void Scheduler::after_ns(double delay_ns, Action fn) {
  after(ps_from_ns(delay_ns), std::move(fn));
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so the event may schedule others.
  Ev ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace ssma::sim
