#include "sim/rcd_tree.hpp"

#include "util/check.hpp"

namespace ssma::sim {

RcdTree::RcdTree(int leaves, double prop_delay_ns)
    : leaves_(leaves), prop_delay_ns_(prop_delay_ns) {
  SSMA_CHECK(leaves >= 1);
  SSMA_CHECK(prop_delay_ns >= 0.0);
  reset();
}

void RcdTree::reset() {
  arrived_ = 0;
  fired_ = false;
}

void RcdTree::leaf_done(SimContext& ctx, std::function<void()> done) {
  SSMA_CHECK_MSG(!fired_, "RCD tree fired twice without reset");
  SSMA_CHECK_MSG(arrived_ < leaves_, "more RCD arrivals than leaves");
  ++arrived_;
  if (arrived_ == leaves_) {
    fired_ = true;
    ctx.sched.after_ns(prop_delay_ns_, std::move(done));
  }
}

}  // namespace ssma::sim
