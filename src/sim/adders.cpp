#include "sim/adders.hpp"

#include "util/fixed_point.hpp"

namespace ssma::sim {

CarrySave csa_step(CarrySave in, std::int8_t lut_word) {
  const auto l = static_cast<std::uint16_t>(
      static_cast<std::int16_t>(lut_word));  // sign-extend to 16 bits
  CarrySave out;
  out.s = in.s ^ in.c ^ l;
  const std::uint16_t maj =
      static_cast<std::uint16_t>((in.s & in.c) | (in.s & l) | (in.c & l));
  out.c = static_cast<std::uint16_t>(maj << 1);  // carry into next bit
  return out;
}

int csa_toggled_bits(CarrySave prev, CarrySave next) {
  return popcount16(static_cast<std::uint16_t>(prev.s ^ next.s)) +
         popcount16(static_cast<std::uint16_t>(prev.c ^ next.c));
}

int rca_carry_chain(CarrySave in) {
  // Propagate p_i = s_i XOR c_i, generate g_i = s_i AND c_i. A carry
  // born at bit i ripples while successive bits propagate; the RCA's
  // settling time follows the longest such run.
  int longest = 0;
  int run = 0;
  bool carry_alive = false;
  for (int bit = 0; bit < 16; ++bit) {
    const int s = (in.s >> bit) & 1;
    const int c = (in.c >> bit) & 1;
    const bool generate = s & c;
    const bool propagate = s ^ c;
    if (carry_alive && propagate) {
      ++run;
    } else if (generate) {
      carry_alive = true;
      run = 1;
    } else {
      carry_alive = generate;
      run = generate ? 1 : 0;
    }
    if (run > longest) longest = run;
  }
  return longest;
}

}  // namespace ssma::sim
