// Local (within-die) variation map: per-instance threshold-voltage
// offsets applied to timing-critical devices. A nominal simulation uses an
// empty map (all offsets zero); Monte-Carlo runs sample one map per die.
#pragma once

#include <cstddef>
#include <vector>

namespace ssma::sim {

class VariationMap {
 public:
  VariationMap() = default;

  /// Sized map: ns blocks, ndec decoders per block, 8 columns per decoder,
  /// 15 DLCs per encoder.
  VariationMap(int ns, int ndec);

  bool empty() const { return dlc_offsets_.empty(); }

  /// Vth offset [V] for DLC `node` (0..14) of block `block`.
  double dlc_vth(int block, int node) const;
  double& dlc_vth_mut(int block, int node);

  /// Vth offset [V] for SRAM read path of (block, decoder, column).
  double column_vth(int block, int dec, int col) const;
  double& column_vth_mut(int block, int dec, int col);

 private:
  int ns_ = 0;
  int ndec_ = 0;
  std::vector<double> dlc_offsets_;     // ns * 15
  std::vector<double> column_offsets_;  // ns * ndec * 8
};

}  // namespace ssma::sim
