// Discrete-event simulation kernel. Events at equal timestamps execute in
// insertion order (monotonic sequence number), which makes runs fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ssma::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  void at(SimTime t, Action fn);

  /// Schedules `fn` after `delay_ps` from now.
  void after(SimTime delay_ps, Action fn);
  void after_ns(double delay_ns, Action fn);

  /// Runs until the event queue drains. Returns number of events executed.
  std::uint64_t run();

  /// Executes a single event; returns false if the queue is empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ssma::sim
