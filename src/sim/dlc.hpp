// Dual-rail dynamic-logic comparator (Fig. 4B/C). Functional model plus
// the data-dependent timing/energy behaviour of the dynamic circuit:
//   * precharge phase charges both rails (energy per DLC per cycle);
//   * evaluation discharges one rail; the discharge path length — and
//     hence the delay — grows with the number of equal high-order bits
//     (comparisons "determined by the higher digits alone" finish first).
#pragma once

#include <cstdint>

#include "sim/context.hpp"

namespace ssma::sim {

struct DlcResult {
  bool x_ge_t = false;  ///< comparison outcome (x >= t goes right)
  int depth = 0;        ///< resolution depth in [1, 8]
  double delay_ns = 0.0;
};

class Dlc {
 public:
  Dlc() = default;
  Dlc(std::uint8_t threshold, double vth_offset_v)
      : threshold_(threshold), vth_offset_(vth_offset_v) {}

  std::uint8_t threshold() const { return threshold_; }
  void set_threshold(std::uint8_t t) { threshold_ = t; }
  void set_vth_offset(double v) { vth_offset_ = v; }

  /// Resolution depth shared with maddness::HashTree::compare_depth —
  /// asserted equal in tests.
  static int compare_depth(std::uint8_t x, std::uint8_t t);

  /// Evaluates against input x at the given operating point. Charges the
  /// evaluation energy; precharge energy is charged by the encoder during
  /// the precharge phase.
  DlcResult evaluate(SimContext& ctx, std::uint8_t x) const;

  /// Precharge energy for one DLC (both rails restored).
  static void charge_precharge(SimContext& ctx);

 private:
  std::uint8_t threshold_ = 128;
  double vth_offset_ = 0.0;
};

}  // namespace ssma::sim
