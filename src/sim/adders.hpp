// Arithmetic datapath elements: the 16-bit carry-save adder (3:2
// compressor) inside each decoder and the 16-bit ripple-carry adder of
// the output stage. Functional semantics are exact 16-bit
// two's-complement wraparound; timing/energy are data-dependent
// (toggled bits for CSA energy, longest carry-propagate run for RCA
// delay).
#pragma once

#include <cstdint>

namespace ssma::sim {

/// Carry-save state flowing between pipeline blocks: value = S + C mod 2^16.
struct CarrySave {
  std::uint16_t s = 0;
  std::uint16_t c = 0;

  std::int16_t resolve() const {
    return static_cast<std::int16_t>(
        static_cast<std::uint16_t>(s + c));
  }
};

/// One 3:2 compression step: (S, C, L) -> (S', C') with
/// S' + C' == S + C + L (mod 2^16). L is the sign-extended LUT word.
CarrySave csa_step(CarrySave in, std::int8_t lut_word);

/// Number of output bits (S' and C' concatenated, 32 bits) that differ
/// from the previous CSA output state — drives switching energy.
int csa_toggled_bits(CarrySave prev, CarrySave next);

/// Longest carry-propagate chain (in bits) when resolving S + C with a
/// ripple-carry adder; determines the RCA delay.
int rca_carry_chain(CarrySave in);

}  // namespace ssma::sim
