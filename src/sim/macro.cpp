#include "sim/macro.hpp"

#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::sim {

namespace {
// Write-path timing at the 0.5 V reference: one 10T-SRAM row write
// (WBL/WBLB drive + cell flip) per cycle, 16 rows per block.
constexpr double kRowWriteBaseNs = 1.8;
constexpr double kLutRowsPerBlock = 16.0;
}  // namespace

double MacroRunStats::throughput_tops(long long ops_per_token) const {
  if (output_interval_ns.count() == 0) return 0.0;
  return static_cast<double>(ops_per_token) / output_interval_ns.mean() *
         1e-3;
}

double MacroRunStats::tops_per_w(long long total_ops) const {
  const double fj = ledger.total_fj();
  if (fj <= 0.0) return 0.0;
  return static_cast<double>(total_ops) / fj * 1e3;  // ops/fJ -> TOPS/W
}

Macro::Macro(const MacroConfig& cfg)
    : cfg_(cfg), ctx_(std::make_unique<SimContext>(cfg.op)) {
  SSMA_CHECK(cfg.ndec >= 1 && cfg.ns >= 1);
  // ns+1 links: [0] source->block0, [i] block(i-1)->block(i), [ns] ->output.
  links_.reserve(cfg.ns + 1);
  for (int i = 0; i <= cfg.ns; ++i)
    links_.push_back(std::make_unique<FourPhaseLink>());
  blocks_.reserve(cfg.ns);
  for (int b = 0; b < cfg.ns; ++b) {
    blocks_.push_back(std::make_unique<ComputeBlock>(
        *ctx_, b, cfg.ndec, cfg.speculative_encode));
    blocks_[b]->connect(links_[b].get(), links_[b + 1].get());
  }
}

void Macro::set_variation(VariationMap map) {
  ctx_->variation = std::move(map);
}

void Macro::set_trace(TraceSink* sink) {
  ctx_->trace = sink;
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i]->set_trace_id("link" + std::to_string(i));
}

void Macro::program(
    const std::vector<maddness::HashTree>& trees,
    const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
    const std::vector<std::int16_t>& bias) {
  SSMA_CHECK_MSG(static_cast<int>(trees.size()) == cfg_.ns,
                 "need one hash tree per compute block");
  SSMA_CHECK_MSG(static_cast<int>(luts.size()) == cfg_.ns,
                 "need one LUT set per compute block");
  SSMA_CHECK_MSG(static_cast<int>(bias.size()) == cfg_.ndec,
                 "need one bias per lane");
  for (int b = 0; b < cfg_.ns; ++b) {
    SSMA_CHECK(static_cast<int>(luts[b].size()) == cfg_.ndec);
    blocks_[b]->program_tree(*ctx_, trees[b]);
    for (int d = 0; d < cfg_.ndec; ++d)
      blocks_[b]->program_lut(*ctx_, d, luts[b][d]);
  }
  trees_ = trees;
  luts_ = luts;
  bias_ = bias;
  programmed_ = true;
}

double Macro::program_timed(
    const std::vector<maddness::HashTree>& trees,
    const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
    const std::vector<std::int16_t>& bias) {
  // Per-row write cycle: global write driver setup + WWL decode/drive +
  // local bitcell write. The WWL spans the block's Ndec arrays, so its
  // RC tracks the RWL model; cell write time follows the decoder-path
  // voltage law.
  const double wwl_ns = ctx_->delay.rwl_ns(cfg_.ndec);
  const double cell_write_ns =
      kRowWriteBaseNs * ppa::delay_scale(ppa::DelayClass::kDecoder, cfg_.op);
  const double row_cycle_ns = wwl_ns + cell_write_ns;

  // All Ndec arrays of a block share the WWL and are written in the same
  // row cycle (one 8-bit word each from the global write data bus);
  // blocks are programmed serially by the global driver.
  const double lut_time =
      static_cast<double>(cfg_.ns) * kLutRowsPerBlock * row_cycle_ns;
  // Threshold flops: 15 per block through the local write control.
  const double thr_time =
      static_cast<double>(cfg_.ns) * 15.0 * cell_write_ns;

  program(trees, luts, bias);  // contents + write energy
  const double total = lut_time + thr_time;
  ctx_->sched.after_ns(total, [] {});
  ctx_->sched.run();
  return total;
}

MacroRunResult Macro::run(
    const std::vector<std::vector<Subvec>>& inputs,
    const std::vector<std::vector<std::int16_t>>* initial_lanes) {
  SSMA_CHECK_MSG(programmed_, "Macro::program must be called before run");
  const long long ntokens = static_cast<long long>(inputs.size());
  for (const auto& tok : inputs)
    SSMA_CHECK_MSG(static_cast<int>(tok.size()) == cfg_.ns,
                   "each token needs one subvector per block");
  if (initial_lanes) {
    SSMA_CHECK_MSG(initial_lanes->size() == inputs.size(),
                   "initial_lanes must match token count");
    for (const auto& lanes : *initial_lanes)
      SSMA_CHECK(static_cast<int>(lanes.size()) == cfg_.ndec);
  }

  MacroRunResult res;
  res.outputs.assign(inputs.size(),
                     std::vector<std::int16_t>(cfg_.ndec, 0));
  long long completed = 0;

  // Input buffers: blocks fetch their subvector by token index (null
  // past the end of the stream, which stops speculative encoding).
  for (int b = 0; b < cfg_.ns; ++b) {
    blocks_[b]->set_fetch(
        [&inputs, b, ntokens](long long idx) -> const Subvec* {
          if (idx < 0 || idx >= ntokens) return nullptr;
          return &inputs[static_cast<std::size_t>(idx)][b];
        });
  }

  // --- Source: offers tokens whenever link 0 completes a cycle. ---
  FourPhaseLink& in_link = *links_[0];
  std::vector<SimTime> offer_time(inputs.size(), 0);
  long long next_token = 0;
  auto offer_next = [&] {
    if (next_token >= ntokens) return;
    Token t;
    t.index = next_token;
    t.lanes.assign(cfg_.ndec, CarrySave{});
    for (int d = 0; d < cfg_.ndec; ++d) {
      const std::int16_t init =
          initial_lanes
              ? (*initial_lanes)[static_cast<std::size_t>(next_token)][d]
              : bias_[d];
      t.lanes[d].s = static_cast<std::uint16_t>(init);
    }
    offer_time[static_cast<std::size_t>(next_token)] = ctx_->sched.now();
    ++next_token;
    in_link.offer(*ctx_, std::move(t));
  };
  in_link.set_producer([&] { offer_next(); });

  // --- Output stage: Ndec RCAs + output register. ---
  FourPhaseLink& out_link = *links_[cfg_.ns];
  bool out_busy = false;
  SimTime last_completion = -1;
  auto& stats = res.stats;
  out_link.set_consumer([&](const Token& t) -> bool {
    if (out_busy) return false;
    out_busy = true;
    // The RCA bank settles after the longest carry chain among lanes.
    int chain = 0;
    std::vector<std::int16_t> outs(cfg_.ndec);
    for (int d = 0; d < cfg_.ndec; ++d) {
      chain = std::max(chain, rca_carry_chain(t.lanes[d]));
      outs[d] = t.lanes[d].resolve();
      ctx_->ledger.charge(EnergyCat::kOutputStage,
                          ctx_->energy.rca_fj() + ctx_->energy.out_reg_fj());
    }
    const long long idx = t.index;
    ctx_->sched.after_ns(ctx_->delay.rca_ns(chain), [&, idx,
                                                     outs = std::move(outs)] {
      res.outputs[static_cast<std::size_t>(idx)] = outs;
      ++completed;
      const SimTime now = ctx_->sched.now();
      stats.token_latency_ns.add(
          ns_from_ps(now - offer_time[static_cast<std::size_t>(idx)]));
      if (last_completion >= 0)
        stats.output_interval_ns.add(ns_from_ps(now - last_completion));
      last_completion = now;
      out_busy = false;
      out_link.consumer_ready(*ctx_);
    });
    return true;
  });

  const std::uint64_t events_before = ctx_->sched.events_executed();
  const EnergyLedger ledger_before = ctx_->ledger;
  const SimTime start = ctx_->sched.now();
  if (ntokens > 0) offer_next();
  ctx_->sched.run();

  // Integrate leakage over the simulated interval, attributing the
  // decoder arrays' (device-count-dominant) share explicitly.
  const double duration_ns = ns_from_ps(ctx_->sched.now() - start);
  const double leak_fj =
      ctx_->energy.macro_leakage_uw(cfg_.ndec, cfg_.ns) * duration_ns;
  const double dec_frac = ctx_->energy.decoder_leak_fraction(cfg_.ndec);
  ctx_->ledger.charge(EnergyCat::kLeakageDecoder, leak_fj * dec_frac);
  ctx_->ledger.charge(EnergyCat::kLeakage, leak_fj * (1.0 - dec_frac));

  res.stats.duration_ns = duration_ns;
  res.stats.events = ctx_->sched.events_executed() - events_before;
  res.stats.ledger = EnergyLedger::delta(ctx_->ledger, ledger_before);

  SSMA_CHECK_MSG(completed == ntokens,
                 "pipeline deadlock: " << completed << " of " << ntokens
                                       << " tokens completed");
  return res;
}

std::vector<std::vector<std::int16_t>> Macro::reference_outputs(
    const std::vector<std::vector<Subvec>>& inputs) const {
  SSMA_CHECK(programmed_);
  std::vector<std::vector<std::int16_t>> out(
      inputs.size(), std::vector<std::int16_t>(cfg_.ndec, 0));
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (int d = 0; d < cfg_.ndec; ++d) {
      std::int16_t acc = bias_[d];
      for (int b = 0; b < cfg_.ns; ++b) {
        const int leaf = trees_[b].encode(inputs[k][b].data());
        acc = add_wrap16(acc, sext8to16(luts_[b][d][leaf]));
      }
      out[k][d] = acc;
    }
  }
  return out;
}

}  // namespace ssma::sim
