#include "sim/clocked_macro.hpp"

#include "ppa/delay_model.hpp"
#include "ppa/energy_model.hpp"
#include "util/check.hpp"
#include "util/fixed_point.hpp"

namespace ssma::sim {

namespace {
// A synchronous implementation re-registers the inter-block partial sums
// (2 x 16 bits per lane per stage) and distributes a clock; per-stage
// register + clock energy, absent from the self-synchronous design, is
// charged per token. Stella Nera-style synchronous MADDNESS pays exactly
// this class of overhead ([22]'s encoder energy is dominated by it).
constexpr double kSyncRegFjPerLanePerStage = 1.9;  // at 0.5 V reference
}  // namespace

ClockedMacro::ClockedMacro(const ClockedConfig& cfg) : cfg_(cfg) {
  SSMA_CHECK(cfg.ndec >= 1 && cfg.ns >= 1);
  SSMA_CHECK(cfg.clock_margin >= 0.0);
}

double ClockedMacro::clock_period_ns() const {
  const ppa::DelayModel delay(cfg_.op);
  // Worst-case data (full-depth DLC ripples) + precharge, which a
  // clocked dynamic-logic design must fit inside the same cycle, + margin.
  const double worst = delay.block_latency_worst_ns(cfg_.ndec) +
                       delay.precharge_ns();
  return worst * (1.0 + cfg_.clock_margin);
}

void ClockedMacro::program(
    const std::vector<maddness::HashTree>& trees,
    const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
    const std::vector<std::int16_t>& bias) {
  SSMA_CHECK(static_cast<int>(trees.size()) == cfg_.ns);
  SSMA_CHECK(static_cast<int>(luts.size()) == cfg_.ns);
  SSMA_CHECK(static_cast<int>(bias.size()) == cfg_.ndec);
  trees_ = trees;
  luts_ = luts;
  bias_ = bias;
  programmed_ = true;
}

ClockedRunResult ClockedMacro::run(
    const std::vector<std::vector<Subvec>>& inputs) {
  SSMA_CHECK_MSG(programmed_, "program before run");
  const auto ntokens = static_cast<long long>(inputs.size());
  const ppa::EnergyModel energy(cfg_.op);

  ClockedRunResult res;
  res.clock_period_ns = clock_period_ns();
  res.outputs.assign(inputs.size(),
                     std::vector<std::int16_t>(cfg_.ndec, 0));

  // Cycle-accurate schedule: stage b handles token (cycle - b); the RCA
  // output stage adds one more cycle. Dynamic energy matches the async
  // datapath plus the synchronous register/clock overhead.
  double dyn_fj = 0.0;
  for (long long k = 0; k < ntokens; ++k) {
    SSMA_CHECK(static_cast<int>(inputs[k].size()) == cfg_.ns);
    for (int d = 0; d < cfg_.ndec; ++d) {
      std::int16_t acc = bias_[d];
      for (int b = 0; b < cfg_.ns; ++b) {
        const int leaf = trees_[b].encode(inputs[k][b].data());
        acc = add_wrap16(acc, sext8to16(luts_[b][d][leaf]));
      }
      res.outputs[static_cast<std::size_t>(k)][d] = acc;
    }
    for (int b = 0; b < cfg_.ns; ++b) {
      const auto depths = trees_[b].encode_depths(inputs[k][b].data());
      dyn_fj += energy.encoder_pass_fj(depths.data());
      dyn_fj += cfg_.ndec * energy.decoder_lookup_avg_fj();
      dyn_fj += energy.ctrl_pass_fj(cfg_.ndec);
      dyn_fj += cfg_.ndec * kSyncRegFjPerLanePerStage * energy.dyn_scale();
    }
    dyn_fj += cfg_.ndec * (energy.rca_fj() + energy.out_reg_fj());
  }

  const long long cycles = ntokens > 0 ? ntokens + cfg_.ns : 0;
  res.duration_ns = static_cast<double>(cycles) * res.clock_period_ns;
  const double leak_fj =
      energy.macro_leakage_uw(cfg_.ndec, cfg_.ns) * res.duration_ns;
  res.total_energy_fj = dyn_fj + leak_fj;

  const long long ops_per_token =
      static_cast<long long>(cfg_.ns) * cfg_.ndec * ppa::kOpsPerLookup;
  if (ntokens > 0) {
    res.throughput_tops =
        static_cast<double>(ops_per_token) / res.clock_period_ns * 1e-3;
    res.tops_per_w = static_cast<double>(ops_per_token * ntokens) /
                     res.total_energy_fj * 1e3;
  }
  return res;
}

}  // namespace ssma::sim
