#include "sim/monte_carlo.hpp"

#include "ppa/tech_constants.hpp"

namespace ssma::sim {

VariationConfig::VariationConfig()
    : dlc_vth_sigma_v(ppa::kLocalVthSigma),
      column_vth_sigma_v(ppa::kLocalVthSigma) {}

VariationMap sample_variation(int ns, int ndec, const VariationConfig& cfg,
                              Rng& rng) {
  VariationMap map(ns, ndec);
  for (int b = 0; b < ns; ++b)
    for (int n = 0; n < 15; ++n)
      map.dlc_vth_mut(b, n) = rng.next_gaussian(0.0, cfg.dlc_vth_sigma_v);
  for (int b = 0; b < ns; ++b)
    for (int d = 0; d < ndec; ++d)
      for (int c = 0; c < 8; ++c)
        map.column_vth_mut(b, d, c) =
            rng.next_gaussian(0.0, cfg.column_vth_sigma_v);
  return map;
}

}  // namespace ssma::sim
