// Clock-synchronous baseline of the same datapath: every pipeline stage
// advances on a global clock whose period must cover the *worst-case*
// block latency across all PVT/data conditions plus a timing margin.
// This is the design point the paper argues against (Sec. III-A): the
// self-synchronous pipeline runs at average-case speed, the clocked one
// at guard-banded worst-case speed.
//
// Functionally identical to Macro (bit-exact outputs); only the schedule
// differs — so the comparison isolates the architectural choice.
#pragma once

#include <cstdint>
#include <vector>

#include "maddness/hash_tree.hpp"
#include "ppa/operating_point.hpp"
#include "sim/macro.hpp"

namespace ssma::sim {

struct ClockedConfig {
  int ndec = 16;
  int ns = 32;
  ppa::OperatingPoint op = ppa::nominal_05v();
  /// Clock guard band on top of the worst-case block latency. Synchronous
  /// sign-off additionally margins for the worst PVT corner; the margin
  /// here is on top of the *current* operating point's worst case.
  double clock_margin = 0.10;
};

struct ClockedRunResult {
  std::vector<std::vector<std::int16_t>> outputs;
  double clock_period_ns = 0.0;
  double duration_ns = 0.0;
  double total_energy_fj = 0.0;
  double throughput_tops = 0.0;
  double tops_per_w = 0.0;
};

class ClockedMacro {
 public:
  explicit ClockedMacro(const ClockedConfig& cfg);

  void program(const std::vector<maddness::HashTree>& trees,
               const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
               const std::vector<std::int16_t>& bias);

  /// Cycle-accurate run at the fixed clock period. Each stage processes
  /// one token per clock; energy adds the clock-tree/register overhead a
  /// synchronous implementation pays (the paper's [22] comparison point).
  ClockedRunResult run(const std::vector<std::vector<Subvec>>& inputs);

  double clock_period_ns() const;

 private:
  ClockedConfig cfg_;
  std::vector<maddness::HashTree> trees_;
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts_;
  std::vector<std::int16_t> bias_;
  bool programmed_ = false;
};

}  // namespace ssma::sim
