#include "sim/dlc.hpp"

namespace ssma::sim {

int Dlc::compare_depth(std::uint8_t x, std::uint8_t t) {
  for (int bit = 7; bit >= 0; --bit) {
    if (((x >> bit) & 1) != ((t >> bit) & 1)) return 8 - bit;
  }
  return 8;
}

DlcResult Dlc::evaluate(SimContext& ctx, std::uint8_t x) const {
  DlcResult r;
  r.x_ge_t = x >= threshold_;
  r.depth = compare_depth(x, threshold_);
  r.delay_ns = ctx.delay.dlc_eval_ns(r.depth, vth_offset_);
  ctx.ledger.charge(EnergyCat::kEncoderDlc, ctx.energy.dlc_eval_fj(r.depth));
  return r;
}

void Dlc::charge_precharge(SimContext& ctx) {
  ctx.ledger.charge(EnergyCat::kEncoderDlc, ctx.energy.dlc_precharge_fj());
}

}  // namespace ssma::sim
