#include "sim/variation.hpp"

#include "util/check.hpp"

namespace ssma::sim {

VariationMap::VariationMap(int ns, int ndec) : ns_(ns), ndec_(ndec) {
  SSMA_CHECK(ns >= 1 && ndec >= 1);
  dlc_offsets_.assign(static_cast<std::size_t>(ns) * 15, 0.0);
  column_offsets_.assign(static_cast<std::size_t>(ns) * ndec * 8, 0.0);
}

double VariationMap::dlc_vth(int block, int node) const {
  SSMA_CHECK(block >= 0 && block < ns_ && node >= 0 && node < 15);
  return dlc_offsets_[static_cast<std::size_t>(block) * 15 + node];
}

double& VariationMap::dlc_vth_mut(int block, int node) {
  SSMA_CHECK(block >= 0 && block < ns_ && node >= 0 && node < 15);
  return dlc_offsets_[static_cast<std::size_t>(block) * 15 + node];
}

double VariationMap::column_vth(int block, int dec, int col) const {
  SSMA_CHECK(block >= 0 && block < ns_ && dec >= 0 && dec < ndec_ &&
             col >= 0 && col < 8);
  return column_offsets_[(static_cast<std::size_t>(block) * ndec_ + dec) * 8 +
                         col];
}

double& VariationMap::column_vth_mut(int block, int dec, int col) {
  SSMA_CHECK(block >= 0 && block < ns_ && dec >= 0 && dec < ndec_ &&
             col >= 0 && col < 8);
  return column_offsets_[(static_cast<std::size_t>(block) * ndec_ + dec) * 8 +
                         col];
}

}  // namespace ssma::sim
