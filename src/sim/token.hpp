// Data flowing through the self-synchronous pipeline: a token carries the
// per-lane carry-save partial sums from block to block (Fig. 2). Each
// block also consumes its own 9-element activation subvector from its
// input buffer, addressed by the token index.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ppa/tech_constants.hpp"
#include "sim/adders.hpp"

namespace ssma::sim {

using Subvec = std::array<std::uint8_t, ppa::kSubvectorDim>;

struct Token {
  long long index = -1;
  std::vector<CarrySave> lanes;  ///< one (S, C) pair per decoder lane
};

}  // namespace ssma::sim
