// Signal tracing for the event-driven simulator: components record
// named signal transitions (handshake edges, encoder decisions, block
// states) into a TraceSink, which can render a human-readable timeline
// or a VCD file loadable in GTKWave — the debugging workflow a real
// asynchronous-design team would use.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ssma::sim {

class TraceSink {
 public:
  struct Record {
    SimTime t = 0;
    std::string signal;
    std::string value;
  };

  void record(SimTime t, std::string signal, std::string value);
  void clear() { records_.clear(); }

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// All records of one signal, in time order.
  std::vector<Record> for_signal(const std::string& signal) const;

  /// Plain-text timeline (one line per record).
  std::string render_text() const;

  /// Value-change-dump rendering (timescale 1 ps, string-valued vars).
  std::string render_vcd(const std::string& module = "ssma") const;

  /// Chrome trace-event JSON rendering (shared telemetry writer): one
  /// track per signal, each value interval an "X" event named by the
  /// value, the final record an instant. Opens in the same Perfetto UI
  /// as the serving-side request traces.
  std::string render_chrome_json(const std::string& module = "ssma") const;

 private:
  std::vector<Record> records_;
};

}  // namespace ssma::sim
