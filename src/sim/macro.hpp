// The full accelerator macro (Fig. 2): NS serially connected compute
// blocks, a source that streams tokens into block 0 (injecting per-lane
// bias as the initial carry-save state), and the output stage — Ndec
// 16-bit ripple-carry adders resolving (S, C) into the output register.
//
// Macro::run() is the event-driven ground truth: outputs are bit-exact
// against maddness::Amm::apply_int16 and the timing/energy statistics
// feed every PPA experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "maddness/hash_tree.hpp"
#include "ppa/operating_point.hpp"
#include "sim/compute_block.hpp"
#include "sim/context.hpp"
#include "util/stats.hpp"

namespace ssma::sim {

struct MacroConfig {
  int ndec = 16;
  int ns = 32;
  ppa::OperatingPoint op = ppa::nominal_05v();
  /// Extension (bench/ablation_speculative): start encoding token k+1
  /// while waiting for its upstream partial sums, hiding the
  /// encoder-dominated latency. Off by default (paper's serial schedule).
  bool speculative_encode = false;
};

struct MacroRunStats {
  SampleSet token_latency_ns;   ///< source offer -> output register
  SampleSet output_interval_ns; ///< spacing of consecutive completions
  double duration_ns = 0.0;     ///< total simulated time
  std::uint64_t events = 0;
  EnergyLedger ledger;          ///< includes integrated leakage

  double throughput_tops(long long ops_per_token) const;
  double tops_per_w(long long total_ops) const;
};

struct MacroRunResult {
  /// outputs[token][lane], bit-exact vs the software int16 decode.
  std::vector<std::vector<std::int16_t>> outputs;
  MacroRunStats stats;
};

class Macro {
 public:
  explicit Macro(const MacroConfig& cfg);

  const MacroConfig& cfg() const { return cfg_; }
  SimContext& ctx() { return *ctx_; }

  /// Installs a local-variation map (must match ns/ndec dimensions).
  void set_variation(VariationMap map);

  /// Attaches a trace sink: REQ/ACK edges of every link, block states
  /// and encoder decisions are recorded (render_vcd() for waveforms).
  void set_trace(TraceSink* sink);

  /// Programs all blocks: `trees[b]` is block b's encoder;
  /// `luts[b][d]` the 16-entry LUT of decoder d; `bias[d]` is injected as
  /// the initial per-lane partial sum. Write energy is charged; timing is
  /// not simulated (programming happens "prior to the inference").
  void program(const std::vector<maddness::HashTree>& trees,
               const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
               const std::vector<std::int16_t>& bias);

  /// Timed variant: simulates the write path of Fig. 2 — the global
  /// write driver streams rows block by block (WWL decode + local write
  /// per row, LWE-gated), then the threshold flops. Returns the total
  /// programming time [ns]; contents and energy identical to program().
  double program_timed(
      const std::vector<maddness::HashTree>& trees,
      const std::vector<std::vector<std::array<std::int8_t, 16>>>& luts,
      const std::vector<std::int16_t>& bias);

  /// Streams `inputs[token][block]` subvectors through the pipeline and
  /// returns per-token lane outputs plus run statistics. Resets timing
  /// statistics but accumulates onto the energy ledger of this context.
  ///
  /// `initial_lanes` (optional, one int16 vector per token) overrides the
  /// programmed bias as the injected initial partial sums — the mechanism
  /// used to chain passes when an input-channel dimension is tiled across
  /// multiple macro invocations.
  MacroRunResult run(const std::vector<std::vector<Subvec>>& inputs,
                     const std::vector<std::vector<std::int16_t>>*
                         initial_lanes = nullptr);

  /// Reference (event-free) functional model: what the hardware must
  /// produce. Used by tests for bit-exact comparison.
  std::vector<std::vector<std::int16_t>> reference_outputs(
      const std::vector<std::vector<Subvec>>& inputs) const;

  const ComputeBlock& block(int b) const { return *blocks_[b]; }

 private:
  MacroConfig cfg_;
  std::unique_ptr<SimContext> ctx_;
  std::vector<std::unique_ptr<ComputeBlock>> blocks_;
  std::vector<std::unique_ptr<FourPhaseLink>> links_;  // ns + 1 links
  std::vector<std::int16_t> bias_;
  std::vector<maddness::HashTree> trees_;
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts_;
  bool programmed_ = false;
};

}  // namespace ssma::sim
