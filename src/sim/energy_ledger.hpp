// Per-category energy accounting. Every simulated event charges its
// dynamic energy here; leakage is integrated over simulated time at the
// end of a run. The categories mirror the paper's Fig. 7 breakdown.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace ssma::sim {

enum class EnergyCat : std::size_t {
  kEncoderDlc,     // DLC precharge + evaluation
  kEncoderBuffer,  // input buffers
  kSramRead,       // RBL/RBLB discharge + precharge
  kCsa,            // carry-save adders
  kLatch,          // output latches + pulse gens
  kRcd,            // column / LUT / block completion detection
  kControl,        // handshake controllers, RWL drivers
  kOutputStage,    // RCAs + output register
  kWrite,          // LUT/threshold programming
  kLeakageDecoder, // leakage of the SRAM/CSA arrays (area-dominant)
  kLeakage,        // leakage of everything else
  kCount
};

const char* energy_cat_name(EnergyCat c);

class EnergyLedger {
 public:
  void charge(EnergyCat cat, double fj);
  void reset();

  /// Per-category difference (after - before); used to isolate the energy
  /// of one run from a cumulative context ledger.
  static EnergyLedger delta(const EnergyLedger& after,
                            const EnergyLedger& before);

  double total_fj() const;
  double fj(EnergyCat cat) const;

  /// Paper-style groups (Fig. 7A): decoder = SRAM + CSA + latch + RCD +
  /// decoder leakage; encoder = DLC + buffer; other = the rest.
  double decoder_fj() const;
  double encoder_fj() const;
  double other_fj() const;

  std::string summary() const;

 private:
  std::array<double, static_cast<std::size_t>(EnergyCat::kCount)> fj_{};
};

}  // namespace ssma::sim
