#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/rollout/rollout.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::net {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kEventId = 1;

// Practical per-request row bound: far above any sane batch request,
// far below anything that could wedge a worker. Shape errors are
// kMalformed, not crashes.
constexpr std::uint64_t kMaxRequestRows = 1u << 20;

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

NetServer::NetServer(serve::InferenceServer& server,
                     const NetServerOptions& opts)
    : server_(server), opts_(opts), admission_(opts.admission) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  SSMA_CHECK_MSG(listen_fd_ >= 0,
                 "socket() failed: " << std::strerror(errno));
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  SSMA_CHECK_MSG(
      ::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) == 1,
      "bad listen address: " << opts.host);
  SSMA_CHECK_MSG(::bind(listen_fd_,
                        reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind(" << opts.host << ":" << opts.port
                         << ") failed: " << std::strerror(errno));
  SSMA_CHECK_MSG(::listen(listen_fd_, opts.backlog) == 0,
                 "listen() failed: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  SSMA_CHECK(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&bound),
                           &blen) == 0);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SSMA_CHECK_MSG(epoll_fd_ >= 0,
                 "epoll_create1 failed: " << std::strerror(errno));
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  SSMA_CHECK_MSG(event_fd_ >= 0,
                 "eventfd failed: " << std::strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  SSMA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.u64 = kEventId;
  SSMA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) == 0);

  loop_ = std::thread([this] { loop_main(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::wake_loop() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore the result.
  (void)!::write(event_fd_, &one, sizeof(one));
}

void NetServer::stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  wake_loop();
  if (loop_.joinable()) loop_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = event_fd_ = epoll_fd_ = -1;
  stopped_ = true;
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::size_t NetServer::total_unflushed() const {
  std::size_t n = 0;
  for (const auto& kv : conns_) n += kv.second->wbuf.size() - kv.second->wpos;
  return n;
}

void NetServer::loop_main() {
  SSMA_TRACE_SET_THREAD("net-loop");
  epoll_event events[64];
  bool draining_logged = false;
  (void)draining_logged;
  for (;;) {
    // 100 ms safety tick: correctness only needs the eventfd, but a
    // bounded wait turns any missed wake into a brief stall instead of
    // a hang.
    const int n = ::epoll_wait(epoll_fd_, events, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens at teardown
    }
    const bool stopping = stopping_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        if (!stopping) accept_ready();
        continue;
      }
      if (id == kEventId) {
        std::uint64_t drained = 0;
        (void)!::read(event_fd_, &drained, sizeof(drained));
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(id, /*protocol_error=*/false);
        continue;
      }
      if ((events[i].events & EPOLLIN) && !stopping)
        conn_readable(id, c);
      if (conns_.count(id) && (events[i].events & EPOLLOUT))
        if (flush_writes(id, *conns_.at(id)))
          update_interest(id, *conns_.at(id));
    }

    drain_outbox();

    if (stopping) {
      // Reads are off; exit once every submitted request has pushed its
      // response through the outbox and every buffered byte flushed.
      for (auto& kv : conns_) update_interest(kv.first, *kv.second);
      std::size_t queued;
      {
        std::lock_guard<std::mutex> lock(out_mu_);
        queued = outbox_.size();
      }
      if (pending_.load(std::memory_order_acquire) == 0 && queued == 0 &&
          total_unflushed() == 0)
        break;
    }
  }
  // Loop exit: close every connection (peers see EOF after the final
  // response bytes, which flushed before the exit condition held).
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& kv : conns_) ids.push_back(kv.first);
  for (std::uint64_t id : ids) close_conn(id, /*protocol_error=*/false);
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error — epoll refires
    set_nodelay(fd);
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    conns_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.connections_accepted++;
  }
}

void NetServer::conn_readable(std::uint64_t id, Conn& c) {
  SSMA_TRACE_SPAN(kNetRead);
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_conn(id, /*protocol_error=*/false);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(id, /*protocol_error=*/false);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_read += static_cast<std::uint64_t>(n);
    }
    c.decoder.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    for (;;) {
      const FrameDecoder::Result r = c.decoder.next(&payload);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kBad) {
        // The byte stream is unrecoverable (framing lost); close.
        close_conn(id, /*protocol_error=*/true);
        return;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.frames_received++;
      }
      handle_frame(id, c, payload);
      if (!conns_.count(id)) return;  // handle_frame closed it
    }
    // Backpressure check between socket reads: stop pulling more bytes
    // once this connection is saturated.
    update_interest(id, c);
    if (c.read_paused) break;
  }
}

void NetServer::send_reject(Conn& c, std::uint64_t corr,
                            serve::RejectReason reason,
                            const std::string& msg) {
  RpcResponse resp;
  resp.correlation_id = corr;
  resp.status = status_of(reason);
  resp.message = msg;
  enqueue_response(c, resp.encode());
  server_.record_reject(reason);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.rejects[static_cast<std::size_t>(reason)]++;
}

void NetServer::handle_admin(Conn& c, const std::string& payload) {
  AdminRequest req;
  AdminResponse resp;
  if (!parse_admin_request(payload, &req)) {
    resp.status = 1;
    resp.body = "unparseable admin payload";
    enqueue_response(c, resp.encode());
    return;
  }
  resp.correlation_id = req.correlation_id;
  serve::rollout::RolloutManager* rollout =
      rollout_.load(std::memory_order_acquire);
  try {
    switch (req.op) {
      case 0: {  // rollout_status
        SSMA_CHECK_MSG(rollout, "no rollout manager attached");
        std::string body;
        if (req.target.empty()) {
          for (const serve::rollout::RolloutReport& r : rollout->reports())
            body += r.to_text() + "\n";
        } else {
          body = rollout->report(req.target).to_text();
        }
        resp.body = std::move(body);
        break;
      }
      case 1:  // rollout_promote
        SSMA_CHECK_MSG(rollout, "no rollout manager attached");
        rollout->force_promote(req.target);
        resp.body = rollout->report(req.target).to_text();
        break;
      case 2:  // rollout_rollback
        SSMA_CHECK_MSG(rollout, "no rollout manager attached");
        rollout->force_rollback(req.target);
        resp.body = rollout->report(req.target).to_text();
        break;
      case 3:  // compact_journal
        resp.arg = server_.compact_journal();
        break;
      default:
        resp.status = 1;
        resp.body = "unknown admin op";
        break;
    }
  } catch (const CheckError& e) {
    resp.status = 1;
    resp.arg = 0;
    resp.body = e.what();
  }
  enqueue_response(c, resp.encode());
}

void NetServer::handle_frame(std::uint64_t id, Conn& c,
                             const std::string& payload) {
  // Admin frames share the front door but never touch admission or the
  // inference queue; dispatch on the prelude type byte before
  // committing to the request parse.
  if (peek_msg_type(payload) ==
      static_cast<std::uint8_t>(MsgType::kAdminRequest)) {
    handle_admin(c, payload);
    return;
  }
  RpcRequest req;
  if (!parse_request(payload, &req)) {
    send_reject(c, req.correlation_id, serve::RejectReason::kMalformed,
                "unparseable request payload");
    return;
  }
  if (req.rows == 0 || req.rows > kMaxRequestRows) {
    send_reject(c, req.correlation_id, serve::RejectReason::kMalformed,
                "rows out of range");
    return;
  }

  engine::ModelRef model;
  try {
    model = server_.registry().resolve(req.model_ref);
  } catch (const CheckError& e) {
    send_reject(c, req.correlation_id, serve::RejectReason::kUnknownModel,
                e.what());
    return;
  }
  if (req.codes.size() !=
      static_cast<std::size_t>(req.rows) * model->cols()) {
    send_reject(c, req.correlation_id, serve::RejectReason::kMalformed,
                "payload size is not rows x model cols");
    return;
  }

  const serve::Clock::time_point now = serve::Clock::now();
  const serve::Clock::time_point deadline =
      req.deadline_ms == 0
          ? serve::Clock::time_point::max()
          : now + std::chrono::milliseconds(req.deadline_ms);
  const serve::AdmissionController::Outcome adm = admission_.admit(
      req.tenant, static_cast<std::size_t>(req.rows), now, deadline,
      server_.queue_depth(), server_.queue_capacity());
  if (!adm.admitted) {
    SSMA_TRACE_SPAN(kAdmitReject);
    send_reject(c, req.correlation_id, adm.reason,
                std::string("admission: ") +
                    serve::reject_reason_name(adm.reason));
    return;
  }

  // Effective class: the tenant's configured class is a ceiling; the
  // wire priority byte may only make the request *less* urgent.
  const auto wire_pri = static_cast<serve::Priority>(
      std::min<std::uint8_t>(req.priority,
                             static_cast<std::uint8_t>(
                                 serve::Priority::kLow)));
  serve::SubmitExtras extras;
  extras.priority = std::max(adm.priority, wire_pri);
  extras.deadline = deadline;
  extras.tenant = req.tenant;
  extras.nonblocking = true;  // never park the event loop in submit
  const std::uint64_t corr = req.correlation_id;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  extras.on_done = [this, id, corr](const serve::InferenceResult* res,
                                    const std::exception_ptr& err) {
    SSMA_TRACE_SPAN(kNetWrite);
    RpcResponse resp;
    resp.correlation_id = corr;
    if (res != nullptr) {
      resp.status = kStatusOk;
      resp.model = res->model;
      resp.model_version = res->model_version;
      resp.rows = res->rows;
      resp.outputs = res->outputs;
    } else {
      resp.status = kStatusInternalError;
      try {
        if (err) std::rethrow_exception(err);
      } catch (const serve::RejectedError& e) {
        resp.status = status_of(e.reason());
        resp.message = e.what();
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.rejects[static_cast<std::size_t>(e.reason())]++;
      } catch (const std::exception& e) {
        resp.message = e.what();
      }
    }
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      outbox_.push_back(Completion{id, resp.encode()});
    }
    // Order matters for graceful stop: the completion is visible in the
    // outbox before pending_ drops, so "pending == 0 and outbox empty"
    // proves every response reached a write buffer.
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    wake_loop();
  };

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests_admitted++;
  }
  c.inflight++;
  // The future is intentionally dropped: the on_done hook is the
  // delivery path, and it fires on every outcome (fulfill, shed,
  // shutdown, crash-fail) — no response can be lost.
  (void)server_.submit(std::move(model), std::move(req.codes),
                       static_cast<std::size_t>(req.rows),
                       std::move(extras));
}

void NetServer::enqueue_response(Conn& c, const std::string& bytes) {
  c.wbuf.append(bytes);
}

bool NetServer::flush_writes(std::uint64_t id, Conn& c) {
  SSMA_TRACE_SPAN(kNetWrite);
  while (c.wpos < c.wbuf.size()) {
    const ssize_t n =
        ::send(c.fd, c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(id, /*protocol_error=*/false);
      return false;
    }
    c.wpos += static_cast<std::size_t>(n);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_written += static_cast<std::uint64_t>(n);
  }
  if (c.wpos == c.wbuf.size()) {
    c.wbuf.clear();
    c.wpos = 0;
  } else if (c.wpos > 64 * 1024) {
    c.wbuf.erase(0, c.wpos);
    c.wpos = 0;
  }
  return true;
}

void NetServer::drain_outbox() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    done.swap(outbox_);
  }
  for (Completion& comp : done) {
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-flight
    Conn& c = *it->second;
    if (c.inflight > 0) c.inflight--;
    enqueue_response(c, comp.bytes);
  }
  // Flush and re-arm once per touched connection, not per completion.
  for (Completion& comp : done) {
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;
    if (flush_writes(comp.conn_id, *it->second))
      update_interest(comp.conn_id, *it->second);
  }
}

void NetServer::update_interest(std::uint64_t id, Conn& c) {
  const std::size_t unflushed = c.wbuf.size() - c.wpos;
  // Hysteresis: pause at the caps, resume at half — a connection
  // hovering at the boundary does not thrash epoll_ctl.
  bool paused = c.read_paused;
  if (!paused && (c.inflight >= opts_.max_inflight_per_conn ||
                  unflushed >= opts_.max_write_buffer_bytes)) {
    paused = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.read_pauses++;
  } else if (paused && c.inflight <= opts_.max_inflight_per_conn / 2 &&
             unflushed <= opts_.max_write_buffer_bytes / 2) {
    paused = false;
  }
  c.read_paused = paused;

  epoll_event ev{};
  ev.data.u64 = id;
  ev.events = EPOLLRDHUP;
  if (!paused && !stopping_.load(std::memory_order_acquire))
    ev.events |= EPOLLIN;
  if (unflushed > 0) ev.events |= EPOLLOUT;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void NetServer::close_conn(std::uint64_t id, bool protocol_error) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.connections_closed++;
  if (protocol_error) stats_.protocol_errors++;
}

// ---------------------------------------------------------------- client

NetClient::~NetClient() { close(); }

void NetClient::connect(const std::string& host, std::uint16_t port,
                        std::size_t max_frame_bytes) {
  SSMA_CHECK_MSG(fd_ < 0, "NetClient already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SSMA_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    SSMA_CHECK_MSG(false, "bad address: " << host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    SSMA_CHECK_MSG(false, "connect(" << host << ":" << port
                                     << ") failed: "
                                     << std::strerror(err));
  }
  set_nodelay(fd);
  decoder_ = std::make_unique<FrameDecoder>(max_frame_bytes);
  fd_ = fd;
}

void NetClient::connect_with_retry(const std::string& host,
                                   std::uint16_t port,
                                   std::size_t max_attempts,
                                   std::chrono::milliseconds backoff_base,
                                   std::chrono::milliseconds backoff_cap,
                                   std::uint64_t jitter_seed,
                                   std::size_t max_frame_bytes) {
  SSMA_CHECK_MSG(max_attempts >= 1, "need at least one connect attempt");
  Rng rng(jitter_seed);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      connect(host, port, max_frame_bytes);
      return;
    } catch (const CheckError&) {
      if (attempt + 1 >= max_attempts) throw;
    }
    // Capped exponential backoff; the seeded jitter (up to half the
    // step) decorrelates reconnect storms deterministically.
    const std::uint64_t base =
        static_cast<std::uint64_t>(backoff_base.count());
    const std::uint64_t cap =
        static_cast<std::uint64_t>(backoff_cap.count());
    std::uint64_t delay =
        std::min(cap, base << std::min<std::size_t>(attempt, 20));
    delay += rng.next_below(delay / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

void NetClient::send(const RpcRequest& req) { send_bytes(req.encode()); }

void NetClient::send_admin(const AdminRequest& req) {
  send_bytes(req.encode());
}

void NetClient::send_bytes(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  SSMA_CHECK_MSG(fd_ >= 0, "NetClient not connected");
  SSMA_CHECK_MSG(!broken_.load(std::memory_order_acquire),
                 "NetClient stream poisoned by an earlier partial "
                 "write; close() and reconnect");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const int err = errno;
      if (off > 0) {
        // Partial frame already on the wire: the server's decoder is
        // mid-frame, so any retried send would interleave a fresh
        // frame into the torn one and desync the whole stream. Poison
        // the connection (shutdown, not close — a concurrent
        // recv_response may still hold the fd) so every later op
        // fails loudly until the caller reconnects.
        broken_.store(true, std::memory_order_release);
        ::shutdown(fd_, SHUT_RDWR);
      }
      SSMA_CHECK_MSG(false, "send failed"
                                << (off > 0 ? " mid-frame (connection "
                                              "poisoned; reconnect)"
                                            : "")
                                << ": " << std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
}

bool NetClient::recv_payload(std::string* payload) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  SSMA_CHECK_MSG(fd_ >= 0, "NetClient not connected");
  SSMA_CHECK_MSG(!broken_.load(std::memory_order_acquire),
                 "NetClient stream poisoned by an earlier partial "
                 "write; close() and reconnect");
  char buf[64 * 1024];
  for (;;) {
    const FrameDecoder::Result r = decoder_->next(payload);
    if (r == FrameDecoder::Result::kFrame) return true;
    SSMA_CHECK_MSG(r != FrameDecoder::Result::kBad,
                   "corrupt response frame (CRC/length)");
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    SSMA_CHECK_MSG(n >= 0, "recv failed: " << std::strerror(errno));
    if (n == 0) {
      SSMA_CHECK_MSG(decoder_->buffered_bytes() == 0,
                     "server closed mid-frame");
      return false;  // clean close at a frame boundary
    }
    decoder_->feed(buf, static_cast<std::size_t>(n));
  }
}

bool NetClient::recv_response(RpcResponse* out) {
  std::string payload;
  if (!recv_payload(&payload)) return false;
  SSMA_CHECK_MSG(parse_response(payload, out),
                 "malformed response payload");
  return true;
}

bool NetClient::recv_admin(AdminResponse* out) {
  std::string payload;
  if (!recv_payload(&payload)) return false;
  SSMA_CHECK_MSG(parse_admin_response(payload, out),
                 "malformed admin response payload");
  return true;
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.reset();
  broken_.store(false, std::memory_order_release);
}

}  // namespace ssma::net
