// TCP front door for the serving runtime: a single-threaded
// epoll event loop that speaks the framed RPC of wire_protocol.hpp,
// feeds requests through an AdmissionController into
// InferenceServer::submit, and writes responses back as the worker
// pool completes them.
//
// Threading model — one loop thread owns every connection:
//   - the epoll thread does all socket reads/writes, frame decoding,
//     admission and submission; per-connection state is never touched
//     off-thread, so it needs no locks;
//   - worker threads (and submit's synchronous rejection paths) deliver
//     completions through InferenceRequest::on_done, which serializes
//     the response, pushes {conn id, bytes} into a mutex-guarded
//     outbox, and wakes the loop through an eventfd — the only
//     cross-thread hand-off in the layer.
//
// Backpressure is connection-scoped: when a connection has
// max_inflight_per_conn requests outstanding or its write buffer
// exceeds max_write_buffer_bytes, the loop stops polling it for reads
// (EPOLLIN off) until the pressure halves — TCP flow control then
// pushes back on the client. Admission-level overload (queue depth,
// tenant rate) is answered with typed rejections instead, so a shed
// client always gets an ack.
//
// stop() is graceful: accepting and reading stop immediately, but the
// loop keeps draining until every submitted request has delivered its
// response bytes to the socket — no lost acks — then closes.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire_protocol.hpp"
#include "serve/admission.hpp"
#include "serve/server.hpp"

namespace ssma::serve::rollout {
class RolloutManager;
}  // namespace ssma::serve::rollout

namespace ssma::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port() after start().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Frame-length bound; a longer length word is a protocol error.
  std::size_t max_frame_bytes = 16u << 20;
  /// Read backpressure: stop polling a connection that has this many
  /// requests in flight...
  std::size_t max_inflight_per_conn = 256;
  /// ...or this many unflushed response bytes buffered.
  std::size_t max_write_buffer_bytes = 4u << 20;
  serve::AdmissionOptions admission;
};

/// Monotonic counters, snapshotted under the stats lock.
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t requests_admitted = 0;
  /// Typed wire rejections sent, by reason (admission sheds plus
  /// submit-level refusals and malformed/unknown-model answers).
  std::array<std::uint64_t, serve::kNumRejectReasons> rejects{};
  /// Connections closed for unrecoverable framing (bad CRC/oversized).
  std::uint64_t protocol_errors = 0;
  /// Times read-side backpressure paused a connection.
  std::uint64_t read_pauses = 0;
};

class NetServer {
 public:
  /// `server` must outlive the NetServer. Construction binds and
  /// listens (throws CheckError on failure) and spawns the loop thread.
  NetServer(serve::InferenceServer& server, const NetServerOptions& opts);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (the ephemeral pick when options.port == 0).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting/reading, drain every in-flight
  /// response to its socket, close, join. Idempotent.
  void stop();

  NetServerStats stats() const;
  serve::AdmissionStats admission_stats() const {
    return admission_.stats();
  }

  /// Wires the operational admin plane (kAdminRequest frames) to a
  /// rollout manager. Borrowed; must outlive the NetServer or be
  /// detached with nullptr first. Without it, rollout admin ops answer
  /// a typed failure (compact_journal still works — it only needs the
  /// inference server).
  void set_rollout(serve::rollout::RolloutManager* rollout) {
    rollout_.store(rollout, std::memory_order_release);
  }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::string wbuf;       ///< unflushed response bytes
    std::size_t wpos = 0;   ///< flushed prefix of wbuf
    std::size_t inflight = 0;
    bool read_paused = false;
    explicit Conn(std::size_t max_frame) : decoder(max_frame) {}
  };

  void loop_main();
  void accept_ready();
  void conn_readable(std::uint64_t id, Conn& c);
  void handle_frame(std::uint64_t id, Conn& c, const std::string& payload);
  /// Admin-plane dispatch (rollout status/overrides, compaction). Runs
  /// synchronously on the loop thread — admin ops are rare and cheap
  /// relative to the inference path.
  void handle_admin(Conn& c, const std::string& payload);
  /// Serialize + enqueue a typed rejection on the loop thread.
  void send_reject(Conn& c, std::uint64_t corr,
                   serve::RejectReason reason, const std::string& msg);
  void enqueue_response(Conn& c, const std::string& bytes);
  bool flush_writes(std::uint64_t id, Conn& c);
  void drain_outbox();
  void update_interest(std::uint64_t id, Conn& c);
  void close_conn(std::uint64_t id, bool protocol_error);
  void wake_loop();
  std::size_t total_unflushed() const;

  serve::InferenceServer& server_;
  const NetServerOptions opts_;
  serve::AdmissionController admission_;
  std::atomic<serve::rollout::RolloutManager*> rollout_{nullptr};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::uint16_t port_ = 0;

  // Loop-thread-owned (no lock): live connections by id.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = eventfd

  // Cross-thread completion hand-off.
  struct Completion {
    std::uint64_t conn_id;
    std::string bytes;
  };
  std::mutex out_mu_;
  std::vector<Completion> outbox_;
  /// Requests submitted whose completion has not yet been moved out of
  /// the outbox. stop() drains until this is 0 and all wbufs flush.
  std::atomic<std::size_t> pending_{0};

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< stop() ran to completion (caller thread)
  std::thread loop_;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

/// Minimal blocking client for tests and benches. One socket; safe for
/// one sender thread plus one receiver thread concurrently (send and
/// recv take separate locks), which is how a pipelined load driver
/// runs.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Throws CheckError when the connection fails.
  void connect(const std::string& host, std::uint16_t port,
               std::size_t max_frame_bytes = 16u << 20);
  /// Like connect(), but retries up to `max_attempts` times with
  /// capped exponential backoff and deterministic seeded jitter —
  /// reconnect hardening for servers that restart (or followers that
  /// promote) underneath the client. Throws the last connect error
  /// once the attempts are exhausted.
  void connect_with_retry(const std::string& host, std::uint16_t port,
                          std::size_t max_attempts,
                          std::chrono::milliseconds backoff_base,
                          std::chrono::milliseconds backoff_cap,
                          std::uint64_t jitter_seed,
                          std::size_t max_frame_bytes = 16u << 20);
  /// Writes one encoded request; throws CheckError on a broken socket.
  /// A send that fails after a partial write poisons the connection
  /// (the peer's decoder is mid-frame, so retrying a fresh frame would
  /// desync the stream): the socket is shut down and every later
  /// send/recv throws until close() + reconnect.
  void send(const RpcRequest& req);
  /// Writes one admin-plane operation; same failure semantics as send().
  void send_admin(const AdminRequest& req);
  /// Blocks for the next response frame (responses may arrive out of
  /// submission order — match by correlation_id). Returns false on a
  /// clean peer close at a frame boundary; throws CheckError on a
  /// corrupt frame or mid-frame disconnect.
  bool recv_response(RpcResponse* out);
  /// Blocks for the next admin response frame.
  bool recv_admin(AdminResponse* out);
  void close();

  /// True when a partial-write failure poisoned the stream (see
  /// send()); the only way forward is close() + reconnect.
  bool broken() const { return broken_.load(std::memory_order_acquire); }

 private:
  void send_bytes(const std::string& bytes);
  /// Reads socket bytes into the decoder until one frame payload is
  /// complete; false on a clean close at a frame boundary.
  bool recv_payload(std::string* payload);

  int fd_ = -1;
  std::mutex send_mu_;
  std::mutex recv_mu_;
  std::unique_ptr<FrameDecoder> decoder_;
  std::atomic<bool> broken_{false};
};

}  // namespace ssma::net
