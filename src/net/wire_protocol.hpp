// Binary RPC protocol of the TCP front door. A message is one frame in
// the library's standard checksummed framing (maddness/framing.hpp,
// shared with the journal and checkpoints):
//
//   [u64 payload length][u32 CRC-32 of payload][payload bytes]
//
// written little-endian (util/wire.hpp helpers). The payload starts
// with a fixed prelude:
//
//   [u8 version][u8 msg type][u64 correlation id]
//
// followed by per-type fields (strings are u32 length + raw bytes,
// int16 arrays are little-endian byte pairs). Correlation ids are
// chosen by the client and echoed verbatim, so responses can complete
// out of order over one pipelined connection.
//
// Error handling has two tiers, split at the frame boundary:
//   - a bad frame (oversized length word, CRC mismatch) means the byte
//     stream itself can no longer be trusted — the server closes the
//     connection;
//   - a well-framed but malformed payload (bad version, truncated
//     fields) is answered with a typed kMalformed rejection and the
//     connection stays usable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request_queue.hpp"

namespace ssma::net {

inline constexpr std::uint8_t kWireVersion = 1;

enum class MsgType : std::uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,

  // --- replication stream (leader <-> follower), same framing ---
  kReplHello = 10,       ///< follower -> leader: resume handshake
  kReplRecord = 11,      ///< leader -> follower: one journal record
  kReplCheckpoint = 12,  ///< leader -> follower: one checkpoint file
  kReplAck = 13,         ///< follower -> leader: durable high-water mark
  kReplReject = 14,      ///< leader -> follower: typed refusal + close
  kReplBase = 15,        ///< leader -> follower: compaction base to
                         ///< adopt before the first streamed record

  // --- operational admin plane (rollout control, compaction) ---
  kAdminRequest = 20,
  kAdminResponse = 21,
};

/// Response status byte: 0 = ok, 1 + RejectReason for typed sheds,
/// 255 = internal server error.
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusInternalError = 255;
inline std::uint8_t status_of(serve::RejectReason r) {
  return static_cast<std::uint8_t>(1 + static_cast<std::uint8_t>(r));
}

struct RpcRequest {
  std::uint64_t correlation_id = 0;
  std::string tenant;     ///< admission identity; empty = anonymous
  std::string model_ref;  ///< "name", "name@latest", "name@N"
  /// Relative SLO deadline in milliseconds from server receipt;
  /// 0 = no deadline. Relative so client/server clock skew is moot.
  std::uint32_t deadline_ms = 0;
  std::uint8_t priority = 1;  ///< serve::Priority value (clamped)
  std::uint64_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x model cols, row-major

  /// Serializes prelude + fields into one framed message.
  std::string encode() const;
};

struct RpcResponse {
  std::uint64_t correlation_id = 0;
  std::uint8_t status = kStatusOk;
  std::string model;                ///< served model name (ok only)
  std::uint64_t model_version = 0;  ///< exact bank version (ok only)
  std::uint64_t rows = 0;
  std::vector<std::int16_t> outputs;  ///< rows x nout (ok only)
  std::string message;  ///< human-readable detail on non-ok

  std::string encode() const;
};

/// One message of the replication stream. The prelude's correlation-id
/// slot carries `arg`; `arg2` and `bytes` follow in the body. Field
/// meaning by type:
///   kReplHello:      arg = follower durable journal seq,
///                    arg2 = follower newest checkpoint version,
///                    bytes = u64 follower durable journal byte offset
///                    (optional; lets the leader seek the resume point)
///   kReplRecord:     arg = journal seq, bytes = raw record payload
///                    (the framed blob's contents, leader-byte-exact)
///   kReplCheckpoint: arg = checkpoint version, bytes = whole file
///   kReplAck:        arg = follower durable journal seq
///   kReplReject:     arg = serve::RejectReason value, bytes = detail
///   kReplBase:       arg = compaction base seq, arg2 = base virtual
///                    byte offset (fresh follower adopts both)
struct ReplMessage {
  MsgType type = MsgType::kReplHello;
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;
  std::string bytes;

  std::string encode() const;
};

/// One operation of the admin plane. Ops:
///   0 = rollout_status   (target = model name, "" = all)
///   1 = rollout_promote  (target = model name)
///   2 = rollout_rollback (target = model name)
///   3 = compact_journal  (target ignored)
struct AdminRequest {
  std::uint64_t correlation_id = 0;
  std::uint8_t op = 0;
  std::string target;

  std::string encode() const;
};

/// status: 0 = ok, nonzero = typed failure (body holds the detail).
/// `arg` is op-specific (compact_journal: records pruned).
struct AdminResponse {
  std::uint64_t correlation_id = 0;
  std::uint8_t status = 0;
  std::uint64_t arg = 0;
  std::string body;

  std::string encode() const;
};

/// Parse a frame payload (already CRC-validated). Returns false on any
/// malformation — wrong version, wrong type, truncated or oversized
/// fields — leaving *out in an unspecified state.
bool parse_request(const std::string& payload, RpcRequest* out);
bool parse_response(const std::string& payload, RpcResponse* out);
/// Accepts any kRepl* type; rejects infer request/response preludes.
bool parse_repl(const std::string& payload, ReplMessage* out);
bool parse_admin_request(const std::string& payload, AdminRequest* out);
bool parse_admin_response(const std::string& payload, AdminResponse* out);

/// The message type byte of a framed payload (the prelude's second
/// byte), or 0 when the payload is too short — lets a server dispatch
/// on type before committing to a full per-type parse.
inline std::uint8_t peek_msg_type(const std::string& payload) {
  return payload.size() >= 2 ? static_cast<std::uint8_t>(payload[1]) : 0;
}

/// Incremental frame splitter for a nonblocking socket: feed() raw
/// bytes as they arrive, then drain complete frames with next(). The
/// length word is bounded by `max_frame_bytes` so a corrupt or hostile
/// peer cannot make the server buffer unbounded memory.
class FrameDecoder {
 public:
  enum class Result {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *payload holds one CRC-validated payload
    kBad,       ///< oversized length or CRC mismatch — close the stream
  };

  explicit FrameDecoder(std::size_t max_frame_bytes);

  void feed(const void* data, std::size_t n);
  Result next(std::string* payload);

  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  const std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace ssma::net
