#include "net/wire_protocol.hpp"

#include <cstring>
#include <sstream>

#include "maddness/framing.hpp"
#include "util/wire.hpp"

namespace ssma::net {

namespace {

void put_string(std::ostream& os, const std::string& s) {
  wire::put_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Bounds-checked little-endian reader over a parsed payload. Every
/// getter returns false instead of reading past the end, so a malformed
/// message can never make the server index out of bounds.
class Cursor {
 public:
  Cursor(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool u8(std::uint8_t* v) {
    if (end_ - p_ < 1) return false;
    *v = static_cast<std::uint8_t>(*p_++);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (end_ - p_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(p_[i]))
            << (8 * i);
    p_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (end_ - p_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(p_[i]))
            << (8 * i);
    p_ += 8;
    return true;
  }
  bool str(std::string* v) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    v->assign(p_, n);
    p_ += n;
    return true;
  }
  bool bytes(std::vector<std::uint8_t>* v, std::uint64_t n) {
    if (static_cast<std::uint64_t>(end_ - p_) < n) return false;
    v->assign(reinterpret_cast<const std::uint8_t*>(p_),
              reinterpret_cast<const std::uint8_t*>(p_) + n);
    p_ += n;
    return true;
  }
  bool i16s(std::vector<std::int16_t>* v, std::uint64_t n) {
    if (static_cast<std::uint64_t>(end_ - p_) < n * 2) return false;
    v->resize(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto lo = static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(p_[2 * i]));
      const auto hi = static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(p_[2 * i + 1]));
      (*v)[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(lo | (hi << 8)));
    }
    p_ += static_cast<std::ptrdiff_t>(n * 2);
    return true;
  }
  bool done() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

bool parse_prelude(Cursor& c, MsgType want, std::uint64_t* corr) {
  std::uint8_t version = 0, type = 0;
  if (!c.u8(&version) || version != kWireVersion) return false;
  if (!c.u8(&type) || type != static_cast<std::uint8_t>(want))
    return false;
  return c.u64(corr);
}

std::string framed(const std::string& payload) {
  std::ostringstream os;
  maddness::write_framed_blob(os, payload);
  return os.str();
}

}  // namespace

std::string RpcRequest::encode() const {
  std::ostringstream os;
  wire::put_u8(os, kWireVersion);
  wire::put_u8(os, static_cast<std::uint8_t>(MsgType::kInferRequest));
  wire::put_u64(os, correlation_id);
  put_string(os, tenant);
  put_string(os, model_ref);
  wire::put_u32(os, deadline_ms);
  wire::put_u8(os, priority);
  wire::put_u64(os, rows);
  wire::put_u64(os, codes.size());
  os.write(reinterpret_cast<const char*>(codes.data()),
           static_cast<std::streamsize>(codes.size()));
  return framed(os.str());
}

std::string RpcResponse::encode() const {
  std::ostringstream os;
  wire::put_u8(os, kWireVersion);
  wire::put_u8(os, static_cast<std::uint8_t>(MsgType::kInferResponse));
  wire::put_u64(os, correlation_id);
  wire::put_u8(os, status);
  put_string(os, model);
  wire::put_u64(os, model_version);
  wire::put_u64(os, rows);
  wire::put_u64(os, outputs.size());
  for (std::int16_t o : outputs) {
    const auto u = static_cast<std::uint16_t>(o);
    wire::put_u8(os, static_cast<std::uint8_t>(u & 0xFF));
    wire::put_u8(os, static_cast<std::uint8_t>(u >> 8));
  }
  put_string(os, message);
  return framed(os.str());
}

std::string ReplMessage::encode() const {
  std::ostringstream os;
  wire::put_u8(os, kWireVersion);
  wire::put_u8(os, static_cast<std::uint8_t>(type));
  wire::put_u64(os, arg);
  wire::put_u64(os, arg2);
  wire::put_u64(os, bytes.size());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return framed(os.str());
}

bool parse_repl(const std::string& payload, ReplMessage* out) {
  Cursor c(payload);
  std::uint8_t version = 0, type = 0;
  if (!c.u8(&version) || version != kWireVersion) return false;
  if (!c.u8(&type) ||
      type < static_cast<std::uint8_t>(MsgType::kReplHello) ||
      type > static_cast<std::uint8_t>(MsgType::kReplBase))
    return false;
  out->type = static_cast<MsgType>(type);
  if (!c.u64(&out->arg)) return false;
  if (!c.u64(&out->arg2)) return false;
  std::uint64_t n = 0;
  if (!c.u64(&n)) return false;
  std::vector<std::uint8_t> body;
  if (!c.bytes(&body, n)) return false;
  out->bytes.assign(body.begin(), body.end());
  return c.done();
}

std::string AdminRequest::encode() const {
  std::ostringstream os;
  wire::put_u8(os, kWireVersion);
  wire::put_u8(os, static_cast<std::uint8_t>(MsgType::kAdminRequest));
  wire::put_u64(os, correlation_id);
  wire::put_u8(os, op);
  put_string(os, target);
  return framed(os.str());
}

std::string AdminResponse::encode() const {
  std::ostringstream os;
  wire::put_u8(os, kWireVersion);
  wire::put_u8(os, static_cast<std::uint8_t>(MsgType::kAdminResponse));
  wire::put_u64(os, correlation_id);
  wire::put_u8(os, status);
  wire::put_u64(os, arg);
  put_string(os, body);
  return framed(os.str());
}

bool parse_admin_request(const std::string& payload, AdminRequest* out) {
  Cursor c(payload);
  if (!parse_prelude(c, MsgType::kAdminRequest, &out->correlation_id))
    return false;
  if (!c.u8(&out->op)) return false;
  if (!c.str(&out->target)) return false;
  return c.done();
}

bool parse_admin_response(const std::string& payload,
                          AdminResponse* out) {
  Cursor c(payload);
  if (!parse_prelude(c, MsgType::kAdminResponse, &out->correlation_id))
    return false;
  if (!c.u8(&out->status)) return false;
  if (!c.u64(&out->arg)) return false;
  if (!c.str(&out->body)) return false;
  return c.done();
}

bool parse_request(const std::string& payload, RpcRequest* out) {
  Cursor c(payload);
  if (!parse_prelude(c, MsgType::kInferRequest, &out->correlation_id))
    return false;
  if (!c.str(&out->tenant)) return false;
  if (!c.str(&out->model_ref)) return false;
  if (!c.u32(&out->deadline_ms)) return false;
  if (!c.u8(&out->priority)) return false;
  if (!c.u64(&out->rows)) return false;
  std::uint64_t ncodes = 0;
  if (!c.u64(&ncodes)) return false;
  if (!c.bytes(&out->codes, ncodes)) return false;
  return c.done();
}

bool parse_response(const std::string& payload, RpcResponse* out) {
  Cursor c(payload);
  if (!parse_prelude(c, MsgType::kInferResponse, &out->correlation_id))
    return false;
  if (!c.u8(&out->status)) return false;
  if (!c.str(&out->model)) return false;
  if (!c.u64(&out->model_version)) return false;
  if (!c.u64(&out->rows)) return false;
  std::uint64_t nout = 0;
  if (!c.u64(&nout)) return false;
  if (!c.i16s(&out->outputs, nout)) return false;
  if (!c.str(&out->message)) return false;
  return c.done();
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::feed(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

FrameDecoder::Result FrameDecoder::next(std::string* payload) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 12) return Result::kNeedMore;  // len(8) + crc(4)
  const char* p = buf_.data() + pos_;
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
           << (8 * i);
  // An oversized length word means a desynchronized or hostile stream;
  // there is no way to resynchronize framing, so the caller must close.
  if (len > max_frame_bytes_) return Result::kBad;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[8 + i]))
           << (8 * i);
  if (avail < 12 + len) return Result::kNeedMore;
  if (maddness::crc32(p + 12, static_cast<std::size_t>(len)) != crc)
    return Result::kBad;
  payload->assign(p + 12, static_cast<std::size_t>(len));
  pos_ += 12 + static_cast<std::size_t>(len);
  return Result::kFrame;
}

}  // namespace ssma::net
