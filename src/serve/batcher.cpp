#include "serve/batcher.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::serve {

Batcher::Batcher(const BatcherOptions& opts) : opts_(opts) {
  SSMA_CHECK(opts.max_batch_tokens >= 1);
  SSMA_CHECK(opts.align_tokens >= 1);
  SSMA_CHECK(opts.max_wait.count() >= 0);
  budget_ = opts.max_batch_tokens / opts.align_tokens * opts.align_tokens;
  if (budget_ == 0) budget_ = opts.align_tokens;
}

namespace {

// Fail a request whose SLO deadline passed before it reached a device:
// typed rejection so the client (or wire layer) can tell "too late"
// from a crash, and no device time is spent on it.
void reject_expired(InferenceRequest&& req) {
  req.fail(std::make_exception_ptr(RejectedError(
      RejectReason::kDeadlineExpired,
      "request " + std::to_string(req.id) +
          " deadline expired before batch formation")));
}

}  // namespace

Batch Batcher::next_batch(RequestQueue& queue) const {
  Batch batch;

  // First request: wait indefinitely (an idle worker parks here).
  // Requests whose deadline already passed are dropped here with a
  // typed rejection rather than anchoring a doomed batch.
  InferenceRequest first;
  for (;;) {
    if (queue.pop_wait(&first) == PopStatus::kClosed) return batch;
    if (first.deadline <= Clock::now()) {
      reject_expired(std::move(first));
      ++batch.expired;
      continue;
    }
    break;
  }
  batch.tokens = first.rows;
  batch.requests.push_back(std::move(first));

#if defined(SSMA_TRACE_ENABLED)
  // The batch_form span starts here — after the first pop — so idle
  // queue-park time is not billed as formation work. Recorded manually
  // (not ScopedSpan) because the id range isn't known until the batch
  // closes.
  auto& trace = telemetry::TraceSession::instance();
  const std::uint64_t t_form = trace.enabled() ? trace.now_ns() : 0;
#endif

  // Coalesce only requests pinned to the same model handle (pulled
  // model-affine past other models' requests): a batch is one stitched
  // matrix through one bank, and mixing versions would break the
  // hot-swap bit-exactness contract (old in-flight requests finish on
  // the old bank).
  const void* model_key = batch.requests.front().model.get();
  const Clock::time_point start = Clock::now();
  // SLO-aware wait: a batch anchored by a deadline-bearing request
  // dispatches in time to meet it even if the token budget never fills.
  const Clock::time_point deadline =
      std::min(start + opts_.max_wait, batch.requests.front().deadline);
  while (batch.tokens < budget_) {
    InferenceRequest next;
    // Recompute the starvation bounds each pull: a request another
    // model enqueued during this batch's wait still gets the full
    // max_skip_age before it blocks coalescing. The deadline bound uses
    // the batch's own close time — skipping a request that must
    // dispatch before this batch closes would push it past its SLO.
    const Clock::time_point now = Clock::now();
    const PopStatus st = queue.pop_compatible(
        budget_ - batch.tokens, deadline, &next, model_key,
        /*no_skip_enqueued_before=*/now - opts_.max_skip_age,
        /*no_skip_deadline_before=*/deadline);
    if (st != PopStatus::kOk) break;  // full/timeout/closed/incompatible
    if (next.deadline <= now) {
      reject_expired(std::move(next));
      ++batch.expired;
      continue;
    }
    batch.tokens += next.rows;
    batch.requests.push_back(std::move(next));
  }

#if defined(SSMA_TRACE_ENABLED)
  if (trace.enabled()) {
    std::uint64_t lo = batch.requests.front().id;
    std::uint64_t hi = lo;
    for (const InferenceRequest& r : batch.requests) {
      lo = std::min(lo, r.id);
      hi = std::max(hi, r.id);
    }
    trace.record_span(telemetry::Stage::kBatchForm, t_form,
                      trace.now_ns(), lo, hi);
  }
#endif
  return batch;
}

}  // namespace ssma::serve
