#include "serve/batcher.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::serve {

Batcher::Batcher(const BatcherOptions& opts) : opts_(opts) {
  SSMA_CHECK(opts.max_batch_tokens >= 1);
  SSMA_CHECK(opts.align_tokens >= 1);
  SSMA_CHECK(opts.max_wait.count() >= 0);
  budget_ = opts.max_batch_tokens / opts.align_tokens * opts.align_tokens;
  if (budget_ == 0) budget_ = opts.align_tokens;
}

Batch Batcher::next_batch(RequestQueue& queue) const {
  Batch batch;

  // First request: wait indefinitely (an idle worker parks here).
  InferenceRequest first;
  if (queue.pop_wait(&first) == PopStatus::kClosed) return batch;
  batch.tokens = first.rows;
  batch.requests.push_back(std::move(first));

#if defined(SSMA_TRACE_ENABLED)
  // The batch_form span starts here — after the first pop — so idle
  // queue-park time is not billed as formation work. Recorded manually
  // (not ScopedSpan) because the id range isn't known until the batch
  // closes.
  auto& trace = telemetry::TraceSession::instance();
  const std::uint64_t t_form = trace.enabled() ? trace.now_ns() : 0;
#endif

  // Coalesce only requests pinned to the same model handle (pulled
  // model-affine past other models' requests): a batch is one stitched
  // matrix through one bank, and mixing versions would break the
  // hot-swap bit-exactness contract (old in-flight requests finish on
  // the old bank).
  const void* model_key = batch.requests.front().model.get();
  const Clock::time_point deadline = Clock::now() + opts_.max_wait;
  while (batch.tokens < budget_) {
    InferenceRequest next;
    const PopStatus st = queue.pop_compatible(budget_ - batch.tokens,
                                              deadline, &next, model_key);
    if (st != PopStatus::kOk) break;  // full/timeout/closed/incompatible
    batch.tokens += next.rows;
    batch.requests.push_back(std::move(next));
  }

#if defined(SSMA_TRACE_ENABLED)
  if (trace.enabled()) {
    std::uint64_t lo = batch.requests.front().id;
    std::uint64_t hi = lo;
    for (const InferenceRequest& r : batch.requests) {
      lo = std::min(lo, r.id);
      hi = std::max(hi, r.id);
    }
    trace.record_span(telemetry::Stage::kBatchForm, t_form,
                      trace.now_ns(), lo, hi);
  }
#endif
  return batch;
}

}  // namespace ssma::serve
