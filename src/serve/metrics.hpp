// Serving-side observability: thread-safe counters plus log-bucketed
// latency histograms with percentile queries (p50/p95/p99), snapshotted
// into a plain struct that renders as a text table or machine-readable
// JSON for the bench sweeps, or as a Prometheus-style text exposition
// for scraping.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request_queue.hpp"

namespace ssma::serve {

/// Geometric-bucket latency histogram: buckets grow by a fixed ratio from
/// 100 ns, so percentile error is bounded by the ratio (~6%) across nine
/// decades without storing samples. Tracked min/max clamp the percentile
/// estimate, making single-sample, p=0 and p=100 queries exact. Not
/// thread-safe on its own; Metrics serializes access.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void add(double ns);
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  double sum_ns() const { return sum_ns_; }
  double mean_ns() const;
  double min_ns() const { return count_ ? min_ns_ : 0.0; }
  double max_ns() const { return count_ ? max_ns_ : 0.0; }
  /// Nearest-rank percentile (p in [0,100]): geometric bucket midpoint,
  /// clamped to the observed [min, max]. p=0 is the minimum sample,
  /// p=100 the maximum; mid-range error is bounded by the bucket ratio
  /// (~6%).
  double percentile_ns(double p) const;

  /// Bucket internals, for cumulative (Prometheus) export.
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }
  /// Upper bound of bucket i in ns (+inf for the last, clamp bucket).
  static double bucket_upper_ns(std::size_t i);

 private:
  std::size_t bucket_of(double ns) const;

  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ns_ = 0.0;
  double min_ns_ = 0.0;
  double max_ns_ = 0.0;
};

/// Per-model slice of the serving counters (keyed by model name; all
/// versions of a name aggregate into one row).
struct ModelMetricsSnapshot {
  std::string model;
  std::size_t requests = 0;
  std::size_t tokens = 0;
  std::size_t batches = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  // Queue wait vs. service (total minus queue) split, per request.
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  double service_p50_us = 0.0;
  double service_p99_us = 0.0;
};

/// Per-model shadow-execution slice: rows mirrored through a staged
/// candidate bank, drift vs the live bank, and the live/shadow latency
/// split. Exact counters only (no histograms), so a slice round-trips
/// through checkpoint restore losslessly.
struct ShadowSlice {
  std::string model;
  std::size_t rows = 0;
  std::size_t batches = 0;
  std::size_t drift_rows = 0;  ///< rows whose outputs diverged
  std::int64_t max_abs_drift = 0;  ///< worst per-element |live - shadow|
  double live_ns_sum = 0.0;    ///< live-bank service time, mirrored rows
  double shadow_ns_sum = 0.0;  ///< candidate-bank service time
};

/// Point-in-time view of the server's counters and distributions.
struct MetricsSnapshot {
  std::size_t requests = 0;
  std::size_t tokens = 0;
  std::size_t batches = 0;
  double wall_seconds = 0.0;

  double requests_per_sec = 0.0;
  double tokens_per_sec = 0.0;
  double mean_batch_tokens = 0.0;

  // End-to-end (enqueue -> fulfilled) latency.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  // Time spent waiting in the queue before a worker picked the batch up.
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  // Write-ahead journal append (accepted + completed records).
  std::size_t journal_appends = 0;
  double journal_p50_us = 0.0;
  double journal_p99_us = 0.0;
  /// Typed load-shed/refusal counts, indexed by RejectReason.
  std::array<std::size_t, kNumRejectReasons> rejects{};
  std::size_t total_rejects() const;

  /// One row per served model name, sorted by name. Empty when the
  /// server has served nothing yet.
  std::vector<ModelMetricsSnapshot> per_model;

  /// One row per shadowed model name, sorted by name. Empty unless a
  /// rollout has mirrored traffic through a staged candidate.
  std::vector<ShadowSlice> shadow;

  /// The row for `model` (nullptr when that model served nothing).
  const ModelMetricsSnapshot* for_model(const std::string& model) const;

  std::string render() const;
  std::string json() const;
};

/// Live values owned by the server, not the metrics sink, sampled at
/// scrape time for the Prometheus exposition.
struct PromGauges {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  std::size_t worker_respawns = 0;
  bool trace_enabled = false;
  /// Replication block, rendered only when repl_role != 0 (the role is
  /// structural server config, not runtime data, so golden expositions
  /// of non-replicated servers keep their shape). 1 = streaming
  /// leader, 2 = promoted follower.
  int repl_role = 0;
  std::uint64_t repl_leader_seq = 0;
  std::uint64_t repl_replicated_seq = 0;
  std::size_t repl_followers = 0;
  std::uint64_t repl_lag_records = 0;
  std::uint64_t repl_lag_bytes = 0;
  double repl_lag_seconds = 0.0;
  std::uint64_t repl_checkpoints_shipped = 0;
  std::uint64_t repl_sync_degraded = 0;
  std::uint64_t repl_applied_records = 0;  ///< promoted follower only
  double repl_apply_rate_hz = 0.0;         ///< promoted follower only
};

/// Shared metrics sink. Workers record whole batches at a time, so the
/// mutex is taken at batch granularity, not per token.
class Metrics {
 public:
  /// Batch-occupancy buckets: power-of-two token counts 1..1024, +Inf.
  static constexpr std::size_t kOccupancyBuckets = 12;

  /// (Re)starts the wall clock; snapshot throughput is measured from here.
  void mark_start();
  /// Freezes the wall clock (e.g. at shutdown); idempotent.
  void mark_stop();

  /// One drained batch: per-request queue/total latencies in ns.
  /// `model` attributes the batch to a per-model slice (a batch is
  /// always single-model; empty = unattributed, aggregate only).
  void record_batch(const std::string& model, std::size_t tokens,
                    const std::vector<double>& queue_ns,
                    const std::vector<double>& total_ns);

  /// One write-ahead journal append (accepted or completed record).
  void record_journal_append(double ns);

  /// `n` requests refused with the given typed reason (admission shed,
  /// shutdown, expired deadline, ...).
  void record_reject(RejectReason reason, std::size_t n = 1);

  /// The batcher's token budget, for occupancy-fraction reporting.
  void set_batch_budget(std::size_t tokens);

  /// One shadow-mirrored comparison batch for `model`: `rows` mirrored,
  /// `drift_rows` of them diverged, `max_abs_drift` the worst
  /// per-element |live - shadow| seen in the batch, plus the live and
  /// shadow service times of the compared rows.
  void record_shadow(const std::string& model, std::size_t rows,
                     std::size_t drift_rows, std::int64_t max_abs_drift,
                     double live_ns, double shadow_ns);

  /// Seeds the lifetime counters from a recovered checkpoint so a
  /// restarted server's totals continue where the crashed run's
  /// snapshot left off. Latency histograms AND the per-model slices
  /// restart empty — both describe this incarnation only, so after a
  /// restore the per-model rows sum to less than the restored
  /// aggregate counters until new traffic arrives.
  void restore(std::size_t requests, std::size_t tokens,
               std::size_t batches);
  /// As above, additionally reseeding the per-model shadow slices —
  /// they are exact counters, so unlike the latency histograms they
  /// survive a restore losslessly.
  void restore(std::size_t requests, std::size_t tokens,
               std::size_t batches,
               const std::vector<ShadowSlice>& shadow);

  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition (version 0.0.4): the counters and
  /// histograms above plus the live gauges and the per-tier kernel
  /// dispatch counters from telemetry. Deliberately excludes anything
  /// wall-clock-derived (rates, uptime) so identical recorded traffic
  /// renders byte-identical output — golden-file testable.
  std::string render_prometheus(const PromGauges& gauges) const;

 private:
  struct PerModel {
    std::size_t requests = 0;
    std::size_t tokens = 0;
    std::size_t batches = 0;
    LatencyHistogram total_latency;
    LatencyHistogram queue_latency;
    LatencyHistogram service_latency;
  };

  mutable std::mutex mu_;
  std::size_t requests_ = 0;
  std::size_t tokens_ = 0;
  std::size_t batches_ = 0;
  LatencyHistogram total_latency_;
  LatencyHistogram queue_latency_;
  LatencyHistogram journal_latency_;
  std::array<std::uint64_t, kNumRejectReasons> rejects_{};
  std::array<std::uint64_t, kOccupancyBuckets> occupancy_buckets_{};
  std::size_t batch_budget_tokens_ = 0;
  std::map<std::string, PerModel> per_model_;
  std::map<std::string, ShadowSlice> shadow_;
  Clock::time_point start_{};
  Clock::time_point stop_{};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ssma::serve
