// Deterministic, seed-driven fault injection for the serving runtime.
//
// The server, queue, worker pool and checkpoint manager each poll the
// injector at named pipeline sites; an armed FaultPlan fires on the Nth
// poll of its site (optionally on a specific worker shard) and tells
// the caller to crash the shard, delay, drop the batch before acking,
// or tear the checkpoint mid-write. Because plans fire on deterministic
// poll counts — never wall-clock time — a failing run reproduces
// exactly from its seed and arm sequence, which the tests print on
// failure.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ssma::serve::recovery {

/// Where in the serving pipeline a fault can fire.
enum class FaultSite {
  kEnqueue,          ///< server admission, after the WAL accept record
  kQueuePush,        ///< inside RequestQueue::push (delay shaping)
  kBatchFormed,      ///< worker: batch assembled, before execution
  kExecute,          ///< worker: outputs computed, before the ack stage
  kAck,              ///< worker: entering the (atomic) ack stage
  kCheckpointWrite,  ///< CheckpointManager::write
  kReplSend,         ///< leader: replication message about to be sent
  kReplRecv,         ///< follower: replication record received,
                     ///< before it is persisted
  kShadowCompare,    ///< rollout: candidate-vs-live drift comparison
};
inline constexpr std::size_t kNumFaultSites = 9;

/// What happens when a plan fires.
enum class FaultKind {
  kNone,
  kKillShard,      ///< worker exits as if the shard crashed
  kDelay,          ///< sleep for the plan's delay, then continue
  kDropBeforeAck,  ///< discard the computed batch unacked (worker
                   ///< survives; the batch is requeued and re-executed)
  kTornCheckpoint, ///< checkpoint file truncated mid-payload
  kDropMessage,    ///< network: message silently not delivered
  kTornMessage,    ///< network: half a frame sent, then the connection
                   ///< cut (mid-record stream tear)
  kDupMessage,     ///< network: message delivered twice
  kKillProcess,    ///< whole-process crash (std::_Exit) — the
                   ///< cross-process failover matrix kills leaders with
                   ///< this at any site; poll() itself executes it
};

const char* to_string(FaultSite site);
const char* to_string(FaultKind kind);

/// One armed fault. `fire_at` counts polls of `site` (1-based);
/// `worker_id` restricts matching to one shard (-1 = any). Non-matching
/// polls still advance the site counter, so fire points are stable
/// under replanning.
struct FaultPlan {
  FaultSite site = FaultSite::kExecute;
  FaultKind kind = FaultKind::kKillShard;
  std::uint64_t fire_at = 1;
  int worker_id = -1;
  std::chrono::microseconds delay{200};  ///< kDelay only
  bool repeat = false;  ///< refire every `fire_at` polls of the site
};

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  std::chrono::microseconds delay{0};
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arms a plan; plans are checked in arm order and consumed when they
  /// fire (unless `repeat`). Thread-safe.
  void arm(const FaultPlan& plan);

  /// Arms `count` delay faults at seed-derived poll counts in
  /// [1, max_fire_at] across the queue-push and batch-formed sites —
  /// deterministic timing chaos for the stress tests.
  void arm_random_delays(std::size_t count, std::uint64_t max_fire_at,
                         std::chrono::microseconds max_delay);

  /// Arms one of the named network fault sites the replication chaos
  /// tests use ("repl_send_drop", "repl_recv_torn", "repl_delay",
  /// "repl_dup") at the `fire_at`-th poll. Throws CheckError on an
  /// unknown name. Same deterministic poll-count semantics as arm().
  void arm_named(const std::string& name, std::uint64_t fire_at,
                 bool repeat = false);

  /// Arms `count` seed-derived faults across the named network sites —
  /// reproducible replication chaos from SSMA_TEST_SEED.
  void arm_network_chaos(std::size_t count, std::uint64_t max_fire_at);

  /// Advances the site counter and returns the action to apply now
  /// (kNone almost always). Thread-safe; deterministic in the sequence
  /// of polls.
  FaultAction poll(FaultSite site, int worker_id = -1);

  std::uint64_t seed() const { return seed_; }
  /// Total polls observed at `site`.
  std::uint64_t polls(FaultSite site) const;
  /// Total plans fired so far.
  std::uint64_t fired() const;
  /// Human-readable record of every fired fault, for failure logs.
  std::vector<std::string> fired_log() const;

 private:
  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<FaultPlan> plans_;
  std::vector<bool> consumed_;
  std::uint64_t site_polls_[kNumFaultSites] = {};
  std::uint64_t fired_ = 0;
  std::vector<std::string> fired_log_;
};

}  // namespace ssma::serve::recovery
