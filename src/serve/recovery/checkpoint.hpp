// Versioned, CRC-validated on-disk checkpoints of serving state.
//
// A checkpoint snapshots everything a restarted server needs that is
// not in the request journal: the serialized model registry (every
// registered (name, version) bank — the restored server resolves
// journal records against exactly these bytes), the request-id
// watermark, and the lifetime metrics counters. Two record formats
// coexist:
//
//   SSMACKP1 (v1) — a single anonymous Amm blob. Still loads; the
//                   restore path adopts it as the implicitly-named
//                   "default" model, version 1.
//   SSMACKP2 (v2) — the registry section (multi-model, multi-version)
//                   produced by ModelRegistry::save. Written whenever
//                   `registry_blob` is non-empty.
//
// Writes are atomic —
// payload to `checkpoint-NNNNNN.tmp`, then rename — so a crash during
// a write never shadows the previous good version; the CRC frame in
// the header catches torn files produced by non-atomic filesystems (or
// the injected torn-checkpoint fault), and load_latest() falls back to
// the newest version that validates.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ssma::serve::recovery {

class FaultInjector;

/// What one checkpoint captures. Exactly one of `amm_blob` (v1 record)
/// and `registry_blob` (v2 record) is non-empty; encode() picks the
/// record format from which one is set, so v1 states re-encode
/// byte-identically (golden-format guarantee).
struct CheckpointState {
  std::string amm_blob;  ///< v1: Amm::save bytes (self-validating frame)
  /// v2: ModelRegistry::save bytes — every registered (name, version)
  /// bank plus the latest pointers.
  std::string registry_blob;
  std::uint64_t next_request_id = 0;  ///< admission id watermark
  std::uint64_t accepted_requests = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t tokens = 0;
  std::uint64_t batches = 0;

  bool is_v1() const { return registry_blob.empty(); }
};

class CheckpointManager {
 public:
  /// `dir` is created if missing; existing checkpoint files in it are
  /// adopted (versioning continues after the highest). The injector, if
  /// given, is polled at kCheckpointWrite. Neither is owned.
  explicit CheckpointManager(std::string dir,
                             FaultInjector* fault = nullptr);

  /// Atomically persists `st` as the next version; returns it.
  /// Thread-safe.
  std::uint64_t write(const CheckpointState& st);

  /// Newest checkpoint that passes CRC validation (torn/corrupt files
  /// are skipped, not errors). nullopt when none validates.
  std::optional<CheckpointState> load_latest(
      std::uint64_t* version = nullptr) const;

  /// Strict single-file load; throws CheckError on a torn or corrupt
  /// checkpoint.
  static CheckpointState load_file(const std::string& path);

  /// Deterministic encoder used by write(): same version + state
  /// always produce byte-identical files (the golden-format test
  /// relies on this).
  static void write_file(const std::string& path, std::uint64_t version,
                         const CheckpointState& st);

  /// Versions present on disk (valid or not), ascending.
  std::vector<std::uint64_t> versions() const;
  std::string path_of(std::uint64_t version) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  FaultInjector* fault_;
  mutable std::mutex mu_;
  std::uint64_t next_version_ = 1;
};

}  // namespace ssma::serve::recovery
