#include "serve/recovery/recovery.hpp"

#include <algorithm>

namespace ssma::serve::recovery {

RecoveredState recover_state(const CheckpointManager& checkpoints,
                             const std::string& journal_path) {
  RecoveredState rs;
  std::uint64_t version = 0;
  if (auto st = checkpoints.load_latest(&version)) {
    rs.checkpoint = std::move(*st);
    rs.checkpoint_version = version;
  }
  rs.journal = RequestJournal::read(journal_path);
  rs.next_request_id = rs.checkpoint.next_request_id;
  if (rs.journal.accepted > 0 || rs.journal.completed > 0)
    rs.next_request_id =
        std::max(rs.next_request_id, rs.journal.max_id + 1);
  return rs;
}

}  // namespace ssma::serve::recovery
