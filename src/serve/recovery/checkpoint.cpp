#include "serve/recovery/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "maddness/framing.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::serve::recovery {

namespace fs = std::filesystem;

namespace {

constexpr char kMagicV1[8] = {'S', 'S', 'M', 'A', 'C', 'K', 'P', '1'};
constexpr char kMagicV2[8] = {'S', 'S', 'M', 'A', 'C', 'K', 'P', '2'};
constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".ssck";

std::string file_name(std::uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kPrefix,
                static_cast<unsigned long long>(version), kSuffix);
  return buf;
}

/// checkpoint-NNNNNN.ssck -> NNNNNN, or 0 when the name doesn't match.
std::uint64_t parse_version(const std::string& name) {
  const std::size_t plen = sizeof(kPrefix) - 1;
  const std::size_t slen = sizeof(kSuffix) - 1;
  if (name.size() <= plen + slen) return 0;
  if (name.compare(0, plen, kPrefix) != 0) return 0;
  if (name.compare(name.size() - slen, slen, kSuffix) != 0) return 0;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return 0;
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string encode(std::uint64_t version, const CheckpointState& st) {
  // The record format follows the state: a v1 state (no registry
  // section) re-encodes as the byte-identical v1 record, so golden v1
  // fixtures survive the v2 bump.
  const bool v1 = st.is_v1();
  const std::string& blob = v1 ? st.amm_blob : st.registry_blob;
  std::ostringstream payload;
  wire::put_u64(payload, st.next_request_id);
  wire::put_u64(payload, st.accepted_requests);
  wire::put_u64(payload, st.completed_requests);
  wire::put_u64(payload, st.tokens);
  wire::put_u64(payload, st.batches);
  wire::put_u64(payload, blob.size());
  payload.write(blob.data(), static_cast<std::streamsize>(blob.size()));

  std::ostringstream file;
  file.write(v1 ? kMagicV1 : kMagicV2, 8);
  wire::put_u64(file, version);
  maddness::write_framed_blob(file, payload.str());
  return file.str();
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, FaultInjector* fault)
    : dir_(std::move(dir)), fault_(fault) {
  fs::create_directories(dir_);
  for (const std::uint64_t v : versions())
    next_version_ = std::max(next_version_, v + 1);
}

std::string CheckpointManager::path_of(std::uint64_t version) const {
  return (fs::path(dir_) / file_name(version)).string();
}

std::vector<std::uint64_t> CheckpointManager::versions() const {
  std::vector<std::uint64_t> out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::uint64_t v = parse_version(entry.path().filename().string());
    if (v > 0) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t CheckpointManager::write(const CheckpointState& st) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t version = next_version_++;
  const std::string final_path = path_of(version);

  if (fault_) {
    const FaultAction act = fault_->poll(FaultSite::kCheckpointWrite);
    if (act.kind == FaultKind::kTornCheckpoint) {
      // Simulated crash on a non-atomic filesystem: the final name
      // exists but holds only half the bytes. load_latest() must skip
      // it via the CRC frame.
      const std::string bytes = encode(version, st);
      std::ofstream os(final_path, std::ios::binary);
      SSMA_CHECK_MSG(os.is_open(), "cannot open " << final_path);
      os.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
      return version;
    }
  }

  const std::string tmp_path = final_path + ".tmp";
  write_file(tmp_path, version, st);
  fs::rename(tmp_path, final_path);
  return version;
}

void CheckpointManager::write_file(const std::string& path,
                                   std::uint64_t version,
                                   const CheckpointState& st) {
  const std::string bytes = encode(version, st);
  std::ofstream os(path, std::ios::binary);
  SSMA_CHECK_MSG(os.is_open(), "cannot open " << path);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SSMA_CHECK_MSG(os.good(), "checkpoint write failure: " << path);
}

CheckpointState CheckpointManager::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SSMA_CHECK_MSG(is.is_open(), "cannot open checkpoint " << path);
  char magic[8];
  is.read(magic, sizeof(magic));
  const bool v1 =
      is.gcount() == 8 && std::equal(magic, magic + 8, kMagicV1);
  const bool v2 =
      is.gcount() == 8 && std::equal(magic, magic + 8, kMagicV2);
  SSMA_CHECK_MSG(v1 || v2, "not an SSMA checkpoint: " << path);
  wire::get_u64(is);  // version echo; the filename is authoritative
  std::istringstream payload(maddness::read_framed_blob(is));

  CheckpointState st;
  st.next_request_id = wire::get_u64(payload);
  st.accepted_requests = wire::get_u64(payload);
  st.completed_requests = wire::get_u64(payload);
  st.tokens = wire::get_u64(payload);
  st.batches = wire::get_u64(payload);
  std::string& blob = v1 ? st.amm_blob : st.registry_blob;
  blob.resize(static_cast<std::size_t>(wire::get_u64(payload)));
  payload.read(blob.data(), static_cast<std::streamsize>(blob.size()));
  SSMA_CHECK_MSG(payload.gcount() ==
                     static_cast<std::streamsize>(blob.size()),
                 "checkpoint payload underflow: " << path);
  return st;
}

std::optional<CheckpointState> CheckpointManager::load_latest(
    std::uint64_t* version) const {
  std::vector<std::uint64_t> vs = versions();
  for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
    try {
      CheckpointState st = load_file(path_of(*it));
      if (version) *version = *it;
      return st;
    } catch (const CheckError&) {
      // Torn or corrupt version: fall back to the one before it.
    }
  }
  return std::nullopt;
}

}  // namespace ssma::serve::recovery
