#include "serve/recovery/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "maddness/framing.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::serve::recovery {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'M', 'A', 'J', 'N', 'L', '1'};
constexpr std::uint8_t kAccepted = 1;
constexpr std::uint8_t kCompleted = 2;
constexpr std::uint8_t kAcceptedV2 = 3;  ///< model-tagged accept
/// Compaction marker: the first frame of a compacted file, carrying the
/// (base_seq, base_bytes) the pruned prefix occupied. Not a record — it
/// has no sequence number and is skipped by read().
constexpr std::uint8_t kCompacted = 4;

/// Marker payload: type byte + base_seq + base_bytes.
std::string encode_marker(std::uint64_t base_seq,
                          std::uint64_t base_bytes) {
  std::ostringstream payload;
  wire::put_u8(payload, kCompacted);
  wire::put_u64(payload, base_seq);
  wire::put_u64(payload, base_bytes);
  return payload.str();
}

bool parse_marker(const std::string& payload, std::uint64_t* base_seq,
                  std::uint64_t* base_bytes) {
  if (payload.size() != 17 ||
      static_cast<std::uint8_t>(payload[0]) != kCompacted)
    return false;
  std::istringstream body(payload);
  wire::get_u8(body);
  *base_seq = wire::get_u64(body);
  *base_bytes = wire::get_u64(body);
  return true;
}

}  // namespace

RequestJournal::RequestJournal(const std::string& path) : path_(path) {
  // Append mode keeps an existing journal's history (a recovered server
  // keeps journaling into the same log); a fresh file gets the magic.
  // A file torn inside the magic itself (crash during creation — no
  // record can precede it) is rewritten from scratch; a full 8 bytes of
  // something else is a foreign file we refuse to clobber.
  char probe_magic[8];
  std::streamsize have = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.is_open()) {
      probe.read(probe_magic, sizeof(probe_magic));
      have = probe.gcount();
    }
  }
  const bool prefix_ok =
      std::equal(probe_magic, probe_magic + have, kMagic);
  SSMA_CHECK_MSG(prefix_ok || have < 8,
                 "not an SSMA journal: " << path);
  const bool fresh = have < 8;
  if (!fresh) {
    // Seed the sequence counter from the existing records so a
    // recovered leader keeps handing out file positions a resuming
    // follower can trust. A torn tail — the half-written record of the
    // crash itself — is not a record: truncate the file back to the
    // last whole frame before reopening for append. (Append mode would
    // otherwise write new records AFTER the torn bytes; readers stop at
    // the first bad frame, so every post-restart record would be
    // invisible to recovery and a resuming follower could never stream
    // past the tear.)
    std::streampos last_good;
    std::streampos end;
    {
      std::ifstream is(path, std::ios::binary);
      is.ignore(8);
      std::string payload;
      last_good = is.tellg();
      bool first = true;
      while (maddness::try_read_framed_blob(is, &payload)) {
        if (first) {
          first = false;
          std::uint64_t bs = 0, bb = 0;
          // A compacted file leads with its marker frame: adopt the
          // base so sequence numbers and virtual offsets continue the
          // pre-compaction addressing.
          if (parse_marker(payload, &bs, &bb)) {
            base_seq_ = bs;
            base_bytes_ = bb;
            seq_ = bs;
            header_bytes_ = static_cast<std::uint64_t>(is.tellg());
            generation_ = 1;
            last_good = is.tellg();
            continue;
          }
        }
        ++seq_;
        last_good = is.tellg();
      }
      is.clear();
      is.seekg(0, std::ios::end);
      end = is.tellg();
    }
    if (end > last_good)
      std::filesystem::resize_file(
          path, static_cast<std::uintmax_t>(
                    static_cast<std::streamoff>(last_good)));
    bytes_ = base_bytes_ +
             (static_cast<std::uint64_t>(last_good) - header_bytes_);
  }
  os_.open(path, fresh ? std::ios::binary | std::ios::trunc
                       : std::ios::binary | std::ios::app);
  SSMA_CHECK_MSG(os_.is_open(), "cannot open journal " << path);
  if (fresh) {
    os_.write(kMagic, sizeof(kMagic));
    os_.flush();
    bytes_ = 8;
  }
}

std::uint64_t RequestJournal::append_record(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  maddness::write_framed_blob(os_, payload);
  // Flush every record: the journal is only useful if it survives the
  // crash it exists to cover. (OS-level fsync durability is out of
  // scope for the in-process model; flush makes records visible to a
  // same-host reader immediately.)
  os_.flush();
  SSMA_CHECK_MSG(os_.good(), "journal append failure on " << path_);
  const std::uint64_t seq = ++seq_;
  bytes_ += 12 + payload.size();  // frame = len(8) + crc(4) + payload
  if (hook_) hook_(seq, bytes_);
  return seq;
}

std::uint64_t RequestJournal::append_raw(const std::string& payload) {
  return append_record(payload);
}

std::uint64_t RequestJournal::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::uint64_t RequestJournal::durable_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

RequestJournal::CompactionInfo RequestJournal::compaction_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {base_seq_, base_bytes_, header_bytes_, generation_};
}

std::uint64_t RequestJournal::compact(std::uint64_t max_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t bound = std::min(max_seq, seq_);
  if (bound <= base_seq_) return 0;
  os_.flush();

  // Scan the live file: one payload per surviving record, plus the set
  // of ids with a completion record ANYWHERE in the journal (a prefix
  // record's ack may live past the prune point; pruning the accept but
  // keeping the ack is fine — read() tolerates an ack with no accept).
  std::vector<std::string> payloads;
  std::unordered_map<std::uint64_t, bool> completed;
  {
    std::ifstream is(path_, std::ios::binary);
    SSMA_CHECK_MSG(is.is_open(), "cannot reopen journal " << path_);
    is.ignore(static_cast<std::streamsize>(header_bytes_));
    std::string payload;
    while (maddness::try_read_framed_blob(is, &payload))
      payloads.push_back(payload);
  }
  SSMA_CHECK_MSG(payloads.size() == seq_ - base_seq_,
                 "journal " << path_ << " holds " << payloads.size()
                            << " records, expected " << seq_ - base_seq_);
  for (const std::string& p : payloads) {
    ParsedRecord rec;
    if (parse_record(p, &rec) && !rec.is_accepted)
      completed[rec.completed_id] = true;
  }

  // Longest fully-acknowledged prefix ending at or before the bound.
  std::uint64_t new_base = base_seq_;
  std::uint64_t new_base_bytes = base_bytes_;
  for (std::uint64_t s = base_seq_ + 1; s <= bound; ++s) {
    const std::string& p = payloads[s - base_seq_ - 1];
    ParsedRecord rec;
    SSMA_CHECK_MSG(parse_record(p, &rec),
                   "unparsable journal record " << s << " in " << path_);
    if (rec.is_accepted && !completed.count(rec.accepted.id)) break;
    new_base = s;
    new_base_bytes += 12 + p.size();
  }
  if (new_base <= base_seq_) return 0;
  const std::uint64_t pruned = new_base - base_seq_;

  // Atomic rewrite: magic + marker + surviving frames into a temp file,
  // rename over the original. A crash leaves old or new, never a mix.
  const std::string marker = encode_marker(new_base, new_base_bytes);
  const std::string tmp = path_ + ".compact";
  {
    std::ofstream ns(tmp, std::ios::binary | std::ios::trunc);
    SSMA_CHECK_MSG(ns.is_open(), "cannot open " << tmp);
    ns.write(kMagic, sizeof(kMagic));
    maddness::write_framed_blob(ns, marker);
    for (std::uint64_t s = new_base + 1; s <= seq_; ++s)
      maddness::write_framed_blob(ns, payloads[s - base_seq_ - 1]);
    ns.flush();
    SSMA_CHECK_MSG(ns.good(), "compaction write failure on " << tmp);
  }
  os_.close();
  std::filesystem::rename(tmp, path_);
  os_.open(path_, std::ios::binary | std::ios::app);
  SSMA_CHECK_MSG(os_.is_open(), "cannot reopen journal " << path_);
  base_seq_ = new_base;
  base_bytes_ = new_base_bytes;
  header_bytes_ = 8 + 12 + marker.size();
  ++generation_;
  // seq_/bytes_ are virtual and unchanged: appends, the commit hook and
  // the replication handshake keep their pre-compaction addressing.
  return pruned;
}

void RequestJournal::adopt_base(std::uint64_t base_seq,
                                std::uint64_t base_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  SSMA_CHECK_MSG(seq_ == 0 && base_seq_ == 0,
                 "adopt_base on non-empty journal " << path_
                                                    << " (durable seq "
                                                    << seq_ << ")");
  SSMA_CHECK(base_seq >= 1 && base_bytes >= 8);
  const std::string marker = encode_marker(base_seq, base_bytes);
  maddness::write_framed_blob(os_, marker);
  os_.flush();
  SSMA_CHECK_MSG(os_.good(), "journal append failure on " << path_);
  base_seq_ = base_seq;
  base_bytes_ = base_bytes;
  seq_ = base_seq;
  bytes_ = base_bytes;
  header_bytes_ = 8 + 12 + marker.size();
  ++generation_;
}

void RequestJournal::set_commit_hook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

std::uint64_t RequestJournal::append_accepted(
    std::uint64_t id, std::size_t rows,
    const std::vector<std::uint8_t>& codes) {
  std::ostringstream payload;
  wire::put_u8(payload, kAccepted);
  wire::put_u64(payload, id);
  wire::put_u64(payload, rows);
  wire::put_u64(payload, codes.size());
  payload.write(reinterpret_cast<const char*>(codes.data()),
                static_cast<std::streamsize>(codes.size()));
  return append_record(payload.str());
}

std::uint64_t RequestJournal::append_accepted(
    std::uint64_t id, const std::string& model,
    std::uint64_t model_version, std::size_t rows,
    const std::vector<std::uint8_t>& codes) {
  std::ostringstream payload;
  wire::put_u8(payload, kAcceptedV2);
  wire::put_u64(payload, id);
  wire::put_u64(payload, model.size());
  payload.write(model.data(),
                static_cast<std::streamsize>(model.size()));
  wire::put_u64(payload, model_version);
  wire::put_u64(payload, rows);
  wire::put_u64(payload, codes.size());
  payload.write(reinterpret_cast<const char*>(codes.data()),
                static_cast<std::streamsize>(codes.size()));
  return append_record(payload.str());
}

std::uint64_t RequestJournal::append_completed(std::uint64_t id,
                                               int worker_id,
                                               std::uint32_t output_crc) {
  std::ostringstream payload;
  wire::put_u8(payload, kCompleted);
  wire::put_u64(payload, id);
  wire::put_u32(payload, static_cast<std::uint32_t>(worker_id));
  wire::put_u32(payload, output_crc);
  return append_record(payload.str());
}

bool RequestJournal::parse_record(const std::string& payload,
                                  ParsedRecord* out) {
  std::istringstream body(payload);
  std::uint8_t type = 0;
  try {
    type = wire::get_u8(body);
    if (type == kAccepted || type == kAcceptedV2) {
      out->is_accepted = true;
      AcceptedRecord& rec = out->accepted;
      rec.id = wire::get_u64(body);
      if (type == kAcceptedV2) {
        rec.model.resize(static_cast<std::size_t>(wire::get_u64(body)));
        body.read(rec.model.data(),
                  static_cast<std::streamsize>(rec.model.size()));
        if (body.gcount() !=
            static_cast<std::streamsize>(rec.model.size()))
          return false;
        rec.model_version = wire::get_u64(body);
      }
      rec.rows = static_cast<std::size_t>(wire::get_u64(body));
      rec.codes.resize(static_cast<std::size_t>(wire::get_u64(body)));
      body.read(reinterpret_cast<char*>(rec.codes.data()),
                static_cast<std::streamsize>(rec.codes.size()));
      return body.gcount() ==
             static_cast<std::streamsize>(rec.codes.size());
    }
    if (type == kCompleted) {
      out->is_accepted = false;
      out->completed_id = wire::get_u64(body);
      wire::get_u32(body);  // worker id: informational only
      out->completed_crc = wire::get_u32(body);
      return body.good() || body.eof();
    }
  } catch (const std::exception&) {
    return false;  // wire::get_* underflow on a truncated payload
  }
  return false;  // unknown record type
}

JournalReplay RequestJournal::read(const std::string& path) {
  JournalReplay replay;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return replay;
  char magic[8];
  is.read(magic, sizeof(magic));
  if (is.gcount() == 0) return replay;  // empty file
  SSMA_CHECK_MSG(is.gcount() == 8 && std::equal(magic, magic + 8, kMagic),
                 "not an SSMA journal: " << path);

  std::vector<AcceptedRecord> accepted;
  std::string payload;
  bool first = true;
  for (;;) {
    const std::streampos frame_start = is.tellg();
    if (!maddness::try_read_framed_blob(is, &payload)) {
      // Distinguish clean EOF from a torn tail: bytes existed past the
      // last whole record but didn't parse as a valid frame.
      is.clear();
      is.seekg(0, std::ios::end);
      replay.torn_tail = frame_start >= 0 && is.tellg() > frame_start;
      break;
    }
    if (first) {
      first = false;
      std::uint64_t bs = 0, bb = 0;
      if (parse_marker(payload, &bs, &bb)) {
        replay.compacted_through = bs;
        continue;
      }
    }
    std::istringstream body(payload);
    const std::uint8_t type = wire::get_u8(body);
    if (type == kAccepted || type == kAcceptedV2) {
      AcceptedRecord rec;
      rec.id = wire::get_u64(body);
      if (type == kAcceptedV2) {
        rec.model.resize(static_cast<std::size_t>(wire::get_u64(body)));
        body.read(rec.model.data(),
                  static_cast<std::streamsize>(rec.model.size()));
        SSMA_CHECK_MSG(body.gcount() == static_cast<std::streamsize>(
                                            rec.model.size()),
                       "journal accepted record underflow");
        rec.model_version = wire::get_u64(body);
      }
      rec.rows = static_cast<std::size_t>(wire::get_u64(body));
      rec.codes.resize(static_cast<std::size_t>(wire::get_u64(body)));
      body.read(reinterpret_cast<char*>(rec.codes.data()),
                static_cast<std::streamsize>(rec.codes.size()));
      SSMA_CHECK_MSG(body.gcount() ==
                         static_cast<std::streamsize>(rec.codes.size()),
                     "journal accepted record underflow");
      replay.accepted++;
      replay.max_id = std::max(replay.max_id, rec.id);
      accepted.push_back(std::move(rec));
    } else if (type == kCompleted) {
      const std::uint64_t id = wire::get_u64(body);
      wire::get_u32(body);  // worker id: informational only
      const std::uint32_t crc = wire::get_u32(body);
      replay.completed++;
      replay.max_id = std::max(replay.max_id, id);
      replay.completed_crc[id] = crc;
    } else {
      SSMA_CHECK_MSG(false, "unknown journal record type "
                                << static_cast<int>(type));
    }
  }

  for (AcceptedRecord& rec : accepted)
    if (replay.completed_crc.find(rec.id) == replay.completed_crc.end())
      replay.unacknowledged.push_back(std::move(rec));
  return replay;
}

}  // namespace ssma::serve::recovery
