#include "serve/recovery/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "maddness/framing.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::serve::recovery {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'M', 'A', 'J', 'N', 'L', '1'};
constexpr std::uint8_t kAccepted = 1;
constexpr std::uint8_t kCompleted = 2;
constexpr std::uint8_t kAcceptedV2 = 3;  ///< model-tagged accept

}  // namespace

RequestJournal::RequestJournal(const std::string& path) : path_(path) {
  // Append mode keeps an existing journal's history (a recovered server
  // keeps journaling into the same log); a fresh file gets the magic.
  // A file torn inside the magic itself (crash during creation — no
  // record can precede it) is rewritten from scratch; a full 8 bytes of
  // something else is a foreign file we refuse to clobber.
  char probe_magic[8];
  std::streamsize have = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.is_open()) {
      probe.read(probe_magic, sizeof(probe_magic));
      have = probe.gcount();
    }
  }
  const bool prefix_ok =
      std::equal(probe_magic, probe_magic + have, kMagic);
  SSMA_CHECK_MSG(prefix_ok || have < 8,
                 "not an SSMA journal: " << path);
  const bool fresh = have < 8;
  if (!fresh) {
    // Seed the sequence counter from the existing records so a
    // recovered leader keeps handing out file positions a resuming
    // follower can trust. A torn tail — the half-written record of the
    // crash itself — is not a record: truncate the file back to the
    // last whole frame before reopening for append. (Append mode would
    // otherwise write new records AFTER the torn bytes; readers stop at
    // the first bad frame, so every post-restart record would be
    // invisible to recovery and a resuming follower could never stream
    // past the tear.)
    std::streampos last_good;
    std::streampos end;
    {
      std::ifstream is(path, std::ios::binary);
      is.ignore(8);
      std::string payload;
      last_good = is.tellg();
      while (maddness::try_read_framed_blob(is, &payload)) {
        ++seq_;
        last_good = is.tellg();
      }
      is.clear();
      is.seekg(0, std::ios::end);
      end = is.tellg();
    }
    if (end > last_good)
      std::filesystem::resize_file(
          path, static_cast<std::uintmax_t>(
                    static_cast<std::streamoff>(last_good)));
    bytes_ = static_cast<std::uint64_t>(last_good);
  }
  os_.open(path, fresh ? std::ios::binary | std::ios::trunc
                       : std::ios::binary | std::ios::app);
  SSMA_CHECK_MSG(os_.is_open(), "cannot open journal " << path);
  if (fresh) {
    os_.write(kMagic, sizeof(kMagic));
    os_.flush();
    bytes_ = 8;
  }
}

std::uint64_t RequestJournal::append_record(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  maddness::write_framed_blob(os_, payload);
  // Flush every record: the journal is only useful if it survives the
  // crash it exists to cover. (OS-level fsync durability is out of
  // scope for the in-process model; flush makes records visible to a
  // same-host reader immediately.)
  os_.flush();
  SSMA_CHECK_MSG(os_.good(), "journal append failure on " << path_);
  const std::uint64_t seq = ++seq_;
  bytes_ += 12 + payload.size();  // frame = len(8) + crc(4) + payload
  if (hook_) hook_(seq, bytes_);
  return seq;
}

std::uint64_t RequestJournal::append_raw(const std::string& payload) {
  return append_record(payload);
}

std::uint64_t RequestJournal::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::uint64_t RequestJournal::durable_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void RequestJournal::set_commit_hook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

std::uint64_t RequestJournal::append_accepted(
    std::uint64_t id, std::size_t rows,
    const std::vector<std::uint8_t>& codes) {
  std::ostringstream payload;
  wire::put_u8(payload, kAccepted);
  wire::put_u64(payload, id);
  wire::put_u64(payload, rows);
  wire::put_u64(payload, codes.size());
  payload.write(reinterpret_cast<const char*>(codes.data()),
                static_cast<std::streamsize>(codes.size()));
  return append_record(payload.str());
}

std::uint64_t RequestJournal::append_accepted(
    std::uint64_t id, const std::string& model,
    std::uint64_t model_version, std::size_t rows,
    const std::vector<std::uint8_t>& codes) {
  std::ostringstream payload;
  wire::put_u8(payload, kAcceptedV2);
  wire::put_u64(payload, id);
  wire::put_u64(payload, model.size());
  payload.write(model.data(),
                static_cast<std::streamsize>(model.size()));
  wire::put_u64(payload, model_version);
  wire::put_u64(payload, rows);
  wire::put_u64(payload, codes.size());
  payload.write(reinterpret_cast<const char*>(codes.data()),
                static_cast<std::streamsize>(codes.size()));
  return append_record(payload.str());
}

std::uint64_t RequestJournal::append_completed(std::uint64_t id,
                                               int worker_id,
                                               std::uint32_t output_crc) {
  std::ostringstream payload;
  wire::put_u8(payload, kCompleted);
  wire::put_u64(payload, id);
  wire::put_u32(payload, static_cast<std::uint32_t>(worker_id));
  wire::put_u32(payload, output_crc);
  return append_record(payload.str());
}

bool RequestJournal::parse_record(const std::string& payload,
                                  ParsedRecord* out) {
  std::istringstream body(payload);
  std::uint8_t type = 0;
  try {
    type = wire::get_u8(body);
    if (type == kAccepted || type == kAcceptedV2) {
      out->is_accepted = true;
      AcceptedRecord& rec = out->accepted;
      rec.id = wire::get_u64(body);
      if (type == kAcceptedV2) {
        rec.model.resize(static_cast<std::size_t>(wire::get_u64(body)));
        body.read(rec.model.data(),
                  static_cast<std::streamsize>(rec.model.size()));
        if (body.gcount() !=
            static_cast<std::streamsize>(rec.model.size()))
          return false;
        rec.model_version = wire::get_u64(body);
      }
      rec.rows = static_cast<std::size_t>(wire::get_u64(body));
      rec.codes.resize(static_cast<std::size_t>(wire::get_u64(body)));
      body.read(reinterpret_cast<char*>(rec.codes.data()),
                static_cast<std::streamsize>(rec.codes.size()));
      return body.gcount() ==
             static_cast<std::streamsize>(rec.codes.size());
    }
    if (type == kCompleted) {
      out->is_accepted = false;
      out->completed_id = wire::get_u64(body);
      wire::get_u32(body);  // worker id: informational only
      out->completed_crc = wire::get_u32(body);
      return body.good() || body.eof();
    }
  } catch (const std::exception&) {
    return false;  // wire::get_* underflow on a truncated payload
  }
  return false;  // unknown record type
}

JournalReplay RequestJournal::read(const std::string& path) {
  JournalReplay replay;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return replay;
  char magic[8];
  is.read(magic, sizeof(magic));
  if (is.gcount() == 0) return replay;  // empty file
  SSMA_CHECK_MSG(is.gcount() == 8 && std::equal(magic, magic + 8, kMagic),
                 "not an SSMA journal: " << path);

  std::vector<AcceptedRecord> accepted;
  std::string payload;
  for (;;) {
    const std::streampos frame_start = is.tellg();
    if (!maddness::try_read_framed_blob(is, &payload)) {
      // Distinguish clean EOF from a torn tail: bytes existed past the
      // last whole record but didn't parse as a valid frame.
      is.clear();
      is.seekg(0, std::ios::end);
      replay.torn_tail = frame_start >= 0 && is.tellg() > frame_start;
      break;
    }
    std::istringstream body(payload);
    const std::uint8_t type = wire::get_u8(body);
    if (type == kAccepted || type == kAcceptedV2) {
      AcceptedRecord rec;
      rec.id = wire::get_u64(body);
      if (type == kAcceptedV2) {
        rec.model.resize(static_cast<std::size_t>(wire::get_u64(body)));
        body.read(rec.model.data(),
                  static_cast<std::streamsize>(rec.model.size()));
        SSMA_CHECK_MSG(body.gcount() == static_cast<std::streamsize>(
                                            rec.model.size()),
                       "journal accepted record underflow");
        rec.model_version = wire::get_u64(body);
      }
      rec.rows = static_cast<std::size_t>(wire::get_u64(body));
      rec.codes.resize(static_cast<std::size_t>(wire::get_u64(body)));
      body.read(reinterpret_cast<char*>(rec.codes.data()),
                static_cast<std::streamsize>(rec.codes.size()));
      SSMA_CHECK_MSG(body.gcount() ==
                         static_cast<std::streamsize>(rec.codes.size()),
                     "journal accepted record underflow");
      replay.accepted++;
      replay.max_id = std::max(replay.max_id, rec.id);
      accepted.push_back(std::move(rec));
    } else if (type == kCompleted) {
      const std::uint64_t id = wire::get_u64(body);
      wire::get_u32(body);  // worker id: informational only
      const std::uint32_t crc = wire::get_u32(body);
      replay.completed++;
      replay.max_id = std::max(replay.max_id, id);
      replay.completed_crc[id] = crc;
    } else {
      SSMA_CHECK_MSG(false, "unknown journal record type "
                                << static_cast<int>(type));
    }
  }

  for (AcceptedRecord& rec : accepted)
    if (replay.completed_crc.find(rec.id) == replay.completed_crc.end())
      replay.unacknowledged.push_back(std::move(rec));
  return replay;
}

}  // namespace ssma::serve::recovery
