#include "serve/recovery/fault_injector.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::serve::recovery {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kEnqueue: return "enqueue";
    case FaultSite::kQueuePush: return "queue_push";
    case FaultSite::kBatchFormed: return "batch_formed";
    case FaultSite::kExecute: return "execute";
    case FaultSite::kAck: return "ack";
    case FaultSite::kCheckpointWrite: return "checkpoint_write";
    case FaultSite::kReplSend: return "repl_send";
    case FaultSite::kReplRecv: return "repl_recv";
    case FaultSite::kShadowCompare: return "shadow_compare";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kKillShard: return "kill_shard";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDropBeforeAck: return "drop_before_ack";
    case FaultKind::kTornCheckpoint: return "torn_checkpoint";
    case FaultKind::kDropMessage: return "drop_message";
    case FaultKind::kTornMessage: return "torn_message";
    case FaultKind::kDupMessage: return "dup_message";
    case FaultKind::kKillProcess: return "kill_process";
  }
  return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void FaultInjector::arm(const FaultPlan& plan) {
  SSMA_CHECK(plan.fire_at >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  plans_.push_back(plan);
  consumed_.push_back(false);
}

void FaultInjector::arm_random_delays(std::size_t count,
                                      std::uint64_t max_fire_at,
                                      std::chrono::microseconds max_delay) {
  SSMA_CHECK(max_fire_at >= 1 && max_delay.count() >= 1);
  Rng rng(seed_);
  for (std::size_t i = 0; i < count; ++i) {
    FaultPlan plan;
    plan.site = rng.next_bool() ? FaultSite::kQueuePush
                                : FaultSite::kBatchFormed;
    plan.kind = FaultKind::kDelay;
    plan.fire_at = 1 + rng.next_below(max_fire_at);
    plan.delay = std::chrono::microseconds(
        1 + static_cast<long>(rng.next_below(
                static_cast<std::uint64_t>(max_delay.count()))));
    arm(plan);
  }
}

void FaultInjector::arm_named(const std::string& name,
                              std::uint64_t fire_at, bool repeat) {
  FaultPlan plan;
  plan.fire_at = fire_at;
  plan.repeat = repeat;
  if (name == "repl_send_drop") {
    plan.site = FaultSite::kReplSend;
    plan.kind = FaultKind::kDropMessage;
  } else if (name == "repl_recv_torn") {
    // A torn record is simulated where it is produced: the leader sends
    // half a frame and cuts the connection, so the follower's decoder
    // observes the mid-record tear.
    plan.site = FaultSite::kReplSend;
    plan.kind = FaultKind::kTornMessage;
  } else if (name == "repl_delay") {
    plan.site = FaultSite::kReplSend;
    plan.kind = FaultKind::kDelay;
    plan.delay = std::chrono::microseconds(500);
  } else if (name == "repl_dup") {
    plan.site = FaultSite::kReplSend;
    plan.kind = FaultKind::kDupMessage;
  } else if (name == "shadow_drift") {
    // Injected model-quality regression: the rollout controller counts
    // every row of a faulted comparison as drifted, driving the error
    // budget over and forcing an auto-rollback.
    plan.site = FaultSite::kShadowCompare;
    plan.kind = FaultKind::kDropMessage;
  } else {
    SSMA_CHECK_MSG(false, "unknown named fault site: " << name);
  }
  arm(plan);
}

void FaultInjector::arm_network_chaos(std::size_t count,
                                      std::uint64_t max_fire_at) {
  SSMA_CHECK(max_fire_at >= 1);
  static const char* const kNames[] = {"repl_send_drop", "repl_recv_torn",
                                       "repl_delay", "repl_dup"};
  // Offset the stream from arm_random_delays so arming both kinds of
  // chaos from one seed does not correlate their fire points.
  Rng rng(seed_ ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < count; ++i)
    arm_named(kNames[rng.next_below(4)], 1 + rng.next_below(max_fire_at));
}

FaultAction FaultInjector::poll(FaultSite site, int worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t n = ++site_polls_[s];
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    const FaultPlan& p = plans_[i];
    if (p.site != site || consumed_[i]) continue;
    if (p.worker_id >= 0 && p.worker_id != worker_id) continue;
    const bool hit = p.repeat ? (n % p.fire_at == 0) : (n == p.fire_at);
    if (!hit) continue;
    if (!p.repeat) consumed_[i] = true;
    fired_++;
    std::ostringstream oss;
    oss << to_string(p.kind) << "@" << to_string(site) << " poll#" << n
        << " worker=" << worker_id;
    fired_log_.push_back(oss.str());
    if (p.kind == FaultKind::kKillProcess) {
      // Executed here, not by the caller: every existing poll site
      // supports a whole-process crash with zero per-site changes —
      // the cross-process failover matrix relies on that coverage.
      lock.unlock();
      std::_Exit(9);
    }
    return {p.kind, p.delay};
  }
  return {};
}

std::uint64_t FaultInjector::polls(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_polls_[static_cast<std::size_t>(site)];
}

std::uint64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::vector<std::string> FaultInjector::fired_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_log_;
}

}  // namespace ssma::serve::recovery
