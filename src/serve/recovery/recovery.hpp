// Recovery glue: folds the newest valid checkpoint and the request
// journal into one RecoveredState that InferenceServer::restore()
// consumes. See README "Checkpoint / recovery" for the full protocol
// and its guarantees.
#pragma once

#include <cstdint>
#include <string>

#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/journal.hpp"

namespace ssma::serve::recovery {

struct RecoveredState {
  /// Newest valid checkpoint (default-initialized when none found).
  CheckpointState checkpoint;
  std::uint64_t checkpoint_version = 0;  ///< 0 = no valid checkpoint
  /// Journal view: unacknowledged requests to replay + ack CRCs.
  JournalReplay journal;
  /// Safe admission watermark for the restarted server: one past every
  /// id any record or checkpoint has seen.
  std::uint64_t next_request_id = 0;

  bool has_checkpoint() const { return checkpoint_version > 0; }
};

/// Reads both persistence stores. Never throws on torn/corrupt
/// checkpoint versions (they are skipped); throws CheckError only when
/// the journal file itself is not a journal.
RecoveredState recover_state(const CheckpointManager& checkpoints,
                             const std::string& journal_path);

}  // namespace ssma::serve::recovery
