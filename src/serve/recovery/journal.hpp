// Write-ahead request journal for the serving runtime.
//
// The server appends an `accepted` record (id + payload) before a
// request enters the queue, and the worker that serves it appends a
// `completed` record (id + CRC-32 of the int16 outputs) after the
// response future is fulfilled. After a crash, replaying the journal
// yields every accepted-but-unacknowledged request; because the kernel
// is deterministic and bit-exact, re-executing them on a restored
// server reproduces the exact bits the lost run would have produced,
// and the completed CRCs let an auditor verify already-acknowledged
// responses to the bit.
//
// Records are individually CRC-framed (maddness/framing.hpp); a torn
// tail — the half-written record of the crash itself — is detected and
// dropped, never misparsed. Guarantees are at-least-once across
// restarts: a crash between fulfilling a response and journaling its
// completion re-executes that request on recovery.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssma::serve::recovery {

/// One accepted request reconstructed from the log.
struct AcceptedRecord {
  std::uint64_t id = 0;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x cols, row-major uint8
  /// Model the request resolved to at admission. Empty on v1-era
  /// records (pre-registry journals): replay maps those onto the
  /// implicitly-named default model.
  std::string model;
  /// Exact bank version pinned at admission (0 on v1-era records).
  /// Replay resolves this exact version, so a replayed request is
  /// bit-exact even when the crash straddled a hot-swap: requests
  /// admitted before the swap re-execute on the old bank, after it on
  /// the new one.
  std::uint64_t model_version = 0;
};

/// Everything a restarted server needs from the journal.
struct JournalReplay {
  /// Accepted but never acknowledged, in original admission order.
  std::vector<AcceptedRecord> unacknowledged;
  /// id -> CRC-32 of the acknowledged response's int16 output bytes.
  std::unordered_map<std::uint64_t, std::uint32_t> completed_crc;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  /// Highest request id seen in any record (valid when accepted > 0).
  std::uint64_t max_id = 0;
  /// True when the file ended in a half-written record (crash tail).
  bool torn_tail = false;
};

class RequestJournal {
 public:
  /// Opens (creating if needed) the journal at `path` for appending.
  explicit RequestJournal(const std::string& path);

  /// WAL accept record — call before the request is enqueued. The
  /// 3-argument form writes the v1 (model-less) record kept for
  /// pre-registry compatibility.
  void append_accepted(std::uint64_t id, std::size_t rows,
                       const std::vector<std::uint8_t>& codes);
  /// Model-tagged accept record (v2): persists the (name, version) the
  /// request pinned at admission.
  void append_accepted(std::uint64_t id, const std::string& model,
                       std::uint64_t model_version, std::size_t rows,
                       const std::vector<std::uint8_t>& codes);
  /// Ack record — call after the response future is fulfilled.
  void append_completed(std::uint64_t id, int worker_id,
                        std::uint32_t output_crc);

  const std::string& path() const { return path_; }

  /// Parses a journal file, tolerating a torn tail. A missing file
  /// yields an empty replay.
  static JournalReplay read(const std::string& path);

 private:
  void append_record(const std::string& payload);

  std::string path_;
  std::mutex mu_;
  std::ofstream os_;
};

}  // namespace ssma::serve::recovery
