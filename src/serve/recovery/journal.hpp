// Write-ahead request journal for the serving runtime.
//
// The server appends an `accepted` record (id + payload) before a
// request enters the queue, and the worker that serves it appends a
// `completed` record (id + CRC-32 of the int16 outputs) after the
// response future is fulfilled. After a crash, replaying the journal
// yields every accepted-but-unacknowledged request; because the kernel
// is deterministic and bit-exact, re-executing them on a restored
// server reproduces the exact bits the lost run would have produced,
// and the completed CRCs let an auditor verify already-acknowledged
// responses to the bit.
//
// Records are individually CRC-framed (maddness/framing.hpp); a torn
// tail — the half-written record of the crash itself — is detected and
// dropped, never misparsed: read() stops at the last whole frame, and
// reopening truncates the file back to it so subsequent appends extend
// a clean byte stream. Guarantees are at-least-once across
// restarts: a crash between fulfilling a response and journaling its
// completion re-executes that request on recovery.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssma::serve::recovery {

/// One accepted request reconstructed from the log.
struct AcceptedRecord {
  std::uint64_t id = 0;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x cols, row-major uint8
  /// Model the request resolved to at admission. Empty on v1-era
  /// records (pre-registry journals): replay maps those onto the
  /// implicitly-named default model.
  std::string model;
  /// Exact bank version pinned at admission (0 on v1-era records).
  /// Replay resolves this exact version, so a replayed request is
  /// bit-exact even when the crash straddled a hot-swap: requests
  /// admitted before the swap re-execute on the old bank, after it on
  /// the new one.
  std::uint64_t model_version = 0;
};

/// Everything a restarted server needs from the journal.
struct JournalReplay {
  /// Accepted but never acknowledged, in original admission order.
  std::vector<AcceptedRecord> unacknowledged;
  /// id -> CRC-32 of the acknowledged response's int16 output bytes.
  std::unordered_map<std::uint64_t, std::uint32_t> completed_crc;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  /// Highest request id seen in any record (valid when accepted > 0).
  std::uint64_t max_id = 0;
  /// True when the file ended in a half-written record (crash tail).
  bool torn_tail = false;
  /// Records pruned by compaction: the file's first surviving record
  /// has sequence number compacted_through + 1 (0 = never compacted).
  std::uint64_t compacted_through = 0;
};

/// One record decoded in isolation — what a replication follower needs
/// to interpret a streamed record payload without re-reading the file.
struct ParsedRecord {
  bool is_accepted = false;  ///< accepted (v1 or v2) vs completed
  AcceptedRecord accepted;   ///< valid when is_accepted
  std::uint64_t completed_id = 0;    ///< valid when !is_accepted
  std::uint32_t completed_crc = 0;   ///< valid when !is_accepted
};

class RequestJournal {
 public:
  /// Notified after every record becomes durable (post-flush, while the
  /// append lock is held): (seq, file_bytes). Replication's sender tails
  /// the file on this signal. Keep the hook cheap and non-reentrant.
  using CommitHook =
      std::function<void(std::uint64_t seq, std::uint64_t file_bytes)>;

  /// Opens (creating if needed) the journal at `path` for appending.
  /// Scans any existing records so durable_seq() continues the file's
  /// 1-based record count.
  explicit RequestJournal(const std::string& path);

  /// WAL accept record — call before the request is enqueued. The
  /// 3-argument form writes the v1 (model-less) record kept for
  /// pre-registry compatibility. Returns the record's sequence number
  /// (1-based position in the file), the unit of replication acking.
  std::uint64_t append_accepted(std::uint64_t id, std::size_t rows,
                                const std::vector<std::uint8_t>& codes);
  /// Model-tagged accept record (v2): persists the (name, version) the
  /// request pinned at admission.
  std::uint64_t append_accepted(std::uint64_t id, const std::string& model,
                                std::uint64_t model_version,
                                std::size_t rows,
                                const std::vector<std::uint8_t>& codes);
  /// Ack record — call after the response future is fulfilled.
  std::uint64_t append_completed(std::uint64_t id, int worker_id,
                                 std::uint32_t output_crc);
  /// Appends an already-serialized record payload verbatim — the
  /// replication follower persists streamed leader records through
  /// here, keeping its file a byte-prefix of the leader's.
  std::uint64_t append_raw(const std::string& payload);

  /// Sequence number of the newest durable record (0 = none yet).
  std::uint64_t durable_seq() const;
  /// Virtual size in bytes after the newest durable record. "Virtual"
  /// means as-if-never-compacted: compaction prunes leading records
  /// from the physical file but leaves this addressing untouched, so
  /// sequence numbers and byte offsets stay stable across compactions
  /// (the replication handshake depends on that).
  std::uint64_t durable_bytes() const;

  /// Compaction view: the pruned prefix and the virtual->physical
  /// mapping of the current file incarnation. `generation` bumps every
  /// time the physical file is rewritten, so a tailing reader knows to
  /// reopen its stream.
  struct CompactionInfo {
    std::uint64_t base_seq = 0;      ///< records pruned from the front
    std::uint64_t base_bytes = 8;    ///< virtual offset of the first
                                     ///< surviving byte
    std::uint64_t header_bytes = 8;  ///< physical offset of that byte
    std::uint64_t generation = 0;    ///< physical-rewrite counter
  };
  CompactionInfo compaction_info() const;

  /// Prunes the longest journal prefix that (a) ends at or before
  /// `max_seq` and (b) contains only acknowledged work — every accepted
  /// record in it has a completion record somewhere in the journal.
  /// Callers derive `max_seq` from their durability horizon (slowest
  /// follower ack / newest durable checkpoint). The file is atomically
  /// rewritten (temp + rename) with a marker frame carrying the new
  /// base, so a crash mid-compaction leaves either the old or the new
  /// file, never a hybrid. Returns the number of records pruned.
  std::uint64_t compact(std::uint64_t max_seq);

  /// Seeds an EMPTY journal with a compaction base shipped by a leader:
  /// the file becomes byte-identical to the leader's compacted header,
  /// and subsequent append_raw records keep it a byte-suffix match.
  /// Throws CheckError when this journal already holds records.
  void adopt_base(std::uint64_t base_seq, std::uint64_t base_bytes);

  /// Installs (or clears, with nullptr) the post-append notification.
  void set_commit_hook(CommitHook hook);

  const std::string& path() const { return path_; }

  /// Parses a journal file, tolerating a torn tail. A missing file
  /// yields an empty replay.
  static JournalReplay read(const std::string& path);

  /// Decodes one record payload (the framed blob's contents). Returns
  /// false on an unknown type or truncated fields.
  static bool parse_record(const std::string& payload, ParsedRecord* out);

 private:
  std::uint64_t append_record(const std::string& payload);

  std::string path_;
  mutable std::mutex mu_;
  std::ofstream os_;
  std::uint64_t seq_ = 0;    ///< records durable so far (incl. pruned)
  std::uint64_t bytes_ = 0;  ///< VIRTUAL size after the last record
  std::uint64_t base_seq_ = 0;      ///< see CompactionInfo
  std::uint64_t base_bytes_ = 8;
  std::uint64_t header_bytes_ = 8;
  std::uint64_t generation_ = 0;
  CommitHook hook_;
};

}  // namespace ssma::serve::recovery
