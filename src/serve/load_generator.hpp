// Load generation against an InferenceServer, the two classic arrival
// models: open-loop Poisson (requests arrive at a fixed offered rate
// whether or not the server keeps up — latency includes queueing and
// admission backpressure) and closed-loop (a fixed number of synchronous
// clients, each submitting its next request when the previous returns).
// Payloads are drawn deterministically from a quantized activation pool,
// so every run is bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "maddness/quantize.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"

namespace ssma::serve {

struct LoadSpec {
  std::size_t total_requests = 1000;
  std::size_t rows_per_request = 1;
  /// Model refs the stream round-robins over by request id (request i
  /// targets model_refs[i % size]) — the multi-model interleave the
  /// registry-dispatch bench uses. Empty = the v1 single-model path
  /// ("default@latest").
  std::vector<std::string> model_refs;
  /// Drives the Poisson arrival stream — and, when a run injects
  /// faults, the same seed should be handed to the FaultInjector so
  /// one number reproduces the whole scenario from a failure log.
  std::uint64_t seed = 0x5eed5e12;
};

/// Client-side view of a finished load run.
struct LoadReport {
  std::uint64_t seed = 0;  ///< echoed from LoadSpec; lands in the JSON
  std::size_t completed = 0;
  std::size_t tokens = 0;
  double wall_seconds = 0.0;
  /// True for open-loop runs; closed-loop runs have no offered rate, and
  /// json() emits `"offered_rps": null` for them instead of a bogus 0.
  bool open_loop = false;
  double offered_rps = 0.0;  ///< open-loop target; meaningless otherwise
  double achieved_rps = 0.0;
  double tokens_per_sec = 0.0;
  // Client-observed end-to-end latency (intended arrival / submit time
  // -> result fulfilled), in milliseconds.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  std::string json() const;
};

class LoadGenerator {
 public:
  /// `pool` must outlive the generator; request payloads are row slices
  /// of it (wrapping around), so pool.cols must equal server.cols().
  LoadGenerator(const maddness::QuantizedActivations& pool,
                const LoadSpec& spec);

  /// Deterministic payload of request `id` (tests recompute expected
  /// outputs from this).
  std::vector<std::uint8_t> request_codes(std::uint64_t id) const;
  /// First pool row used by request `id`.
  std::size_t first_row(std::uint64_t id) const;
  /// Model ref request `id` targets (empty = the v1 default path).
  const std::string& model_ref(std::uint64_t id) const;

  const LoadSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return spec_.seed; }

  /// Open-loop: Poisson arrivals at `requests_per_sec`. Latency is
  /// measured from each request's *intended* arrival instant, so time
  /// spent blocked on a full queue is charged to the server.
  LoadReport run_open_loop(InferenceServer& server,
                           double requests_per_sec);

  /// Closed-loop: `concurrency` clients submitting back-to-back.
  LoadReport run_closed_loop(InferenceServer& server, int concurrency);

 private:
  const maddness::QuantizedActivations& pool_;
  LoadSpec spec_;
};

}  // namespace ssma::serve
