#include "serve/worker_pool.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "maddness/framing.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/replication/replication.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::serve {

using recovery::FaultAction;
using recovery::FaultKind;
using recovery::FaultSite;

WorkerPool::WorkerPool(RequestQueue& queue, Metrics& metrics,
                       const WorkerPoolOptions& opts)
    : queue_(queue), metrics_(metrics), opts_(opts) {
  journal_.store(opts.journal, std::memory_order_relaxed);
  replication_.store(opts.replication, std::memory_order_relaxed);
  SSMA_CHECK(opts.num_workers >= 1);
  SSMA_CHECK(opts.max_respawns_per_shard >= 0);
  shard_reports_.resize(static_cast<std::size_t>(opts.num_workers));
  shard_tokens_.assign(static_cast<std::size_t>(opts.num_workers), 0);
  metrics_.set_batch_budget(Batcher(opts.batcher).budget_tokens());
  slots_.reserve(static_cast<std::size_t>(opts.num_workers));
  for (int w = 0; w < opts.num_workers; ++w)
    slots_.push_back(std::make_unique<ShardSlot>());
}

WorkerPool::~WorkerPool() {
  if (started_ && !joined_) {
    queue_.close();
    join();
  }
}

void WorkerPool::start() {
  SSMA_CHECK_MSG(!started_, "WorkerPool already started");
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    for (int w = 0; w < opts_.num_workers; ++w) spawn_worker(w);
  }
  if (opts_.supervise)
    supervisor_ = std::thread([this] { supervisor_main(); });
}

void WorkerPool::spawn_worker(int worker_id) {
  ShardSlot& slot = *slots_[static_cast<std::size_t>(worker_id)];
  slot.status = ShardStatus::kRunning;
  slot.thread = std::thread([this, worker_id] { worker_main(worker_id); });
}

void WorkerPool::join() {
  if (joined_) return;
  // The supervisor returns once every shard is terminal (exited or
  // dead), having already joined the threads it respawned over.
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& slot : slots_)
    if (slot->thread.joinable()) slot->thread.join();
  // Unsupervised crashes (or shards declared dead) leave their batch
  // parked in the in-flight slot: fail those futures loudly rather
  // than letting clients observe broken_promise at destruction.
  for (auto& slot : slots_)
    if (!slot->in_flight.empty())
      fail_requests(slot->in_flight,
                    "shard crashed with this request in flight; enable "
                    "supervision or replay the journal to recover");
  joined_ = true;
}

void WorkerPool::report_crash(int worker_id) {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    slots_[static_cast<std::size_t>(worker_id)]->status =
        ShardStatus::kCrashed;
  }
  sup_cv_.notify_all();
}

void WorkerPool::report_exit(int worker_id) {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    slots_[static_cast<std::size_t>(worker_id)]->status =
        ShardStatus::kExited;
  }
  sup_cv_.notify_all();
}

void WorkerPool::fail_requests(std::vector<InferenceRequest>& reqs,
                               const std::string& why) {
  for (InferenceRequest& req : reqs) {
    std::ostringstream oss;
    oss << "request " << req.id << ": " << why;
    req.fail(std::make_exception_ptr(std::runtime_error(oss.str())));
  }
  reqs.clear();
}

void WorkerPool::supervisor_main() {
  std::unique_lock<std::mutex> lock(sup_mu_);
  const auto terminal = [](ShardStatus s) {
    return s == ShardStatus::kExited || s == ShardStatus::kDead;
  };
  for (;;) {
    sup_cv_.wait(lock, [&] {
      bool all_terminal = true;
      for (const auto& slot : slots_) {
        if (slot->status == ShardStatus::kCrashed) return true;
        all_terminal = all_terminal && terminal(slot->status);
      }
      return all_terminal;
    });

    for (int w = 0; w < opts_.num_workers; ++w) {
      ShardSlot& slot = *slots_[static_cast<std::size_t>(w)];
      if (slot.status != ShardStatus::kCrashed) continue;
      // Join the dead thread first: that is the happens-before edge
      // that makes its in-flight slot safe to touch.
      std::thread dead = std::move(slot.thread);
      lock.unlock();
      dead.join();
      lock.lock();

      std::vector<InferenceRequest> orphans = std::move(slot.in_flight);
      slot.in_flight.clear();
      if (slot.respawns >= opts_.max_respawns_per_shard) {
        slot.status = ShardStatus::kDead;
        lock.unlock();
        fail_requests(orphans, "shard exceeded its respawn budget");
        lock.lock();
        continue;
      }
      slot.respawns++;
      respawns_total_.fetch_add(1, std::memory_order_relaxed);
      // Requeue before respawning so the new shard (or any live peer)
      // finds the orphaned work even if the queue is already closed.
      // The orphans keep their pinned model handles: the respawned
      // shard re-executes them on exactly the banks they resolved at
      // admission, so the retried outputs are bit-identical.
      queue_.requeue_front(std::move(orphans));
      spawn_worker(w);
    }

    bool all_terminal = true;
    for (const auto& slot : slots_)
      all_terminal = all_terminal && terminal(slot->status);
    if (all_terminal) return;
  }
}

core::PpaReport WorkerPool::aggregate_report() const {
  SSMA_CHECK_MSG(joined_, "aggregate_report requires join()");
  return core::merge_reports(shard_reports_);
}

void WorkerPool::worker_main(int worker_id) {
  SSMA_TRACE_SET_THREAD("shard-" + std::to_string(worker_id));
  ShardSlot& slot = *slots_[static_cast<std::size_t>(worker_id)];
  // Private per-shard engine: backend scratch, PPA ledgers and pacing
  // clocks are shard-local, so shards share nothing but the immutable
  // model handles their requests pin.
  const std::unique_ptr<engine::ExecutionEngine> eng =
      engine::make_engine(opts_.engine);
  const Batcher batcher(opts_.batcher);
  recovery::FaultInjector* fault = opts_.fault;

  std::vector<double> queue_ns, total_ns;

  // Steady-state hot-path buffers, owned by the shard for its whole
  // life: the stitched activation matrix and the output accumulators
  // reuse their capacity across batches (the engine holds the encode
  // scratch), so a shard at steady state performs no per-batch
  // allocations on the encode/decode path beyond response payloads.
  maddness::QuantizedActivations q;
  std::vector<std::int16_t> out;

  // Polls `site`; returns true when the worker must abandon the batch
  // (crash or drop). Applies delays in place.
  const auto fatal_fault = [&](FaultSite site) {
    if (!fault) return false;
    const FaultAction act = fault->poll(site, worker_id);
    switch (act.kind) {
      case FaultKind::kDelay:
        std::this_thread::sleep_for(act.delay);
        return false;
      case FaultKind::kKillShard:
        // Crash: leave in_flight parked for the supervisor and die.
        report_crash(worker_id);
        return true;
      case FaultKind::kDropBeforeAck:
        // Lost-response fault: the worker survives but the batch is
        // discarded unacked; requeue it for deterministic re-execution.
        queue_.requeue_front(std::move(slot.in_flight));
        return true;
      default:
        return false;
    }
  };

  for (;;) {
    Batch batch = batcher.next_batch(queue_);
    if (batch.expired)
      metrics_.record_reject(RejectReason::kDeadlineExpired,
                             batch.expired);
    if (batch.empty()) break;  // queue closed and drained
    // Park the batch in the supervision slot before touching it: from
    // here until the ack completes, a crash leaves the requests
    // recoverable.
    slot.in_flight = std::move(batch.requests);
    if (fatal_fault(FaultSite::kBatchFormed)) {
      if (slot.in_flight.empty()) continue;  // dropped, not crashed
      return;
    }
    const Clock::time_point t_exec = Clock::now();

#if defined(SSMA_TRACE_ENABLED)
    // Each request's queue_wait span closes the moment its batch is
    // picked up — same t_exec the queue-latency metric uses.
    auto& trace = telemetry::TraceSession::instance();
    std::uint64_t id_lo = slot.in_flight.front().id;
    std::uint64_t id_hi = id_lo;
    for (const InferenceRequest& r : slot.in_flight) {
      id_lo = std::min(id_lo, r.id);
      id_hi = std::max(id_hi, r.id);
      if (trace.enabled())
        trace.record_span(telemetry::Stage::kQueueWait, r.enqueued_at,
                          t_exec, r.id, r.id);
    }
#endif

    // The batcher never mixes handles, so the whole batch runs on the
    // first request's pinned model. Hold an owning pin for the scope of
    // the batch: the requests' pins die inside the ack loop (set_value
    // moves them out), and for a retired version they can be the last
    // owners — the bank (and its name, read after the loop for the
    // metrics attribution) must outlive them.
    const engine::ModelRef model_pin = slot.in_flight.front().model;
    const engine::ModelHandle& model = *model_pin;
    const std::size_t cols = model.cols();
    const std::size_t nout = model.nout();

    // Stitch the batch into one activation matrix; rows keep request
    // order, so outputs slice back out contiguously.
    q.rows = batch.tokens;
    q.cols = cols;
    q.scale = model.stage(0).activation_scale();
    q.codes.clear();
    for (const InferenceRequest& req : slot.in_flight) {
      SSMA_CHECK_MSG(req.codes.size() == req.rows * cols,
                     "request payload shape mismatch");
      SSMA_CHECK_MSG(req.model.get() == &model,
                     "batch mixed model handles");
      q.codes.insert(q.codes.end(), req.codes.begin(), req.codes.end());
    }

    {
      // Engine-internal spans (encode/lut_accumulate/epilogue) inherit
      // this batch's id range through the thread-local scope.
      SSMA_TRACE_REQUEST_SCOPE(id_lo, id_hi);
      eng->run_batch(model, q, out);
    }

    if (fatal_fault(FaultSite::kExecute)) {
      if (slot.in_flight.empty()) continue;
      return;
    }
    if (fatal_fault(FaultSite::kAck)) {
      if (slot.in_flight.empty()) continue;
      return;
    }

    // Acked-write gate: with replication in sync/window mode, hold the
    // whole batch's acks until its newest journal record is replicated
    // past the watermark. One wait covers every request in the batch
    // (records are sequenced, so the max dominates). A timed-out wait
    // degrades to async for this batch — counted, never wedged.
    if (auto* repl = replication_.load(std::memory_order_acquire)) {
      std::uint64_t max_seq = 0;
      for (const InferenceRequest& r : slot.in_flight)
        max_seq = std::max(max_seq, r.wal_seq);
      if (max_seq > 0) repl->wait_acked(max_seq);
    }

    // Ack stage. Atomic in-process: promises fulfill exactly once, so
    // faults are only injected before it, never inside it. The journal
    // ack lands after the response — a crash in between re-executes
    // the request on recovery (at-least-once across restarts).
    const Clock::time_point t_done = Clock::now();
    SSMA_TRACE_SPAN_IDS(kAck, id_lo, id_hi);
    queue_ns.clear();
    total_ns.clear();
    std::size_t row = 0;
    for (InferenceRequest& req : slot.in_flight) {
      InferenceResult res;
      res.request_id = req.id;
      res.rows = req.rows;
      res.worker_id = worker_id;
      res.model = model.name();
      res.model_version = model.version();
      res.completed_at = t_done;
      res.outputs.assign(out.begin() + static_cast<std::ptrdiff_t>(
                                           row * nout),
                         out.begin() + static_cast<std::ptrdiff_t>(
                                           (row + req.rows) * nout));
      row += req.rows;
      queue_ns.push_back(std::chrono::duration<double, std::nano>(
                             t_exec - req.enqueued_at)
                             .count());
      total_ns.push_back(std::chrono::duration<double, std::nano>(
                             t_done - req.enqueued_at)
                             .count());
      const std::uint32_t out_crc = maddness::crc32(
          res.outputs.data(), res.outputs.size() * sizeof(std::int16_t));
      const std::uint64_t req_id = req.id;
      req.fulfill(std::move(res));
      if (auto* journal = journal_.load(std::memory_order_acquire)) {
        const Clock::time_point t_j = Clock::now();
        {
          SSMA_TRACE_SPAN_IDS(kJournalAppend, req_id, req_id);
          journal->append_completed(req_id, worker_id, out_crc);
        }
        metrics_.record_journal_append(
            std::chrono::duration<double, std::nano>(Clock::now() - t_j)
                .count());
      }
    }
    slot.in_flight.clear();
    shard_tokens_[static_cast<std::size_t>(worker_id)] += batch.tokens;
    metrics_.record_batch(model.name(), batch.tokens, queue_ns, total_ns);
    // Post-ack tap: q/out are still this shard's live buffers and
    // model_pin keeps the bank alive for the call. Runs after the
    // futures resolve, so a slow (misbehaving) observer can never
    // delay a client response — only the shard's next pickup.
    if (auto* obs = observer_.load(std::memory_order_acquire))
      obs->on_batch(model, q, out,
                    std::chrono::duration<double, std::nano>(t_done -
                                                             t_exec)
                        .count());
  }

  if (eng->info().collects_ppa)
    shard_reports_[static_cast<std::size_t>(worker_id)] =
        eng->ppa_report();
  report_exit(worker_id);
}

}  // namespace ssma::serve
