#include "serve/worker_pool.hpp"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace ssma::serve {

WorkerPool::WorkerPool(std::string amm_blob, RequestQueue& queue,
                       Metrics& metrics, const WorkerPoolOptions& opts)
    : amm_blob_(std::move(amm_blob)),
      queue_(queue),
      metrics_(metrics),
      opts_(opts) {
  SSMA_CHECK(opts.num_workers >= 1);
  shard_reports_.resize(static_cast<std::size_t>(opts.num_workers));
  shard_tokens_.assign(static_cast<std::size_t>(opts.num_workers), 0);
}

WorkerPool::~WorkerPool() {
  if (!threads_.empty() && !joined_) {
    queue_.close();
    join();
  }
}

void WorkerPool::start() {
  SSMA_CHECK_MSG(threads_.empty(), "WorkerPool already started");
  threads_.reserve(static_cast<std::size_t>(opts_.num_workers));
  for (int w = 0; w < opts_.num_workers; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

void WorkerPool::join() {
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  joined_ = true;
}

core::PpaReport WorkerPool::aggregate_report() const {
  SSMA_CHECK_MSG(joined_, "aggregate_report requires join()");
  return core::merge_reports(shard_reports_);
}

void WorkerPool::worker_main(int worker_id) {
  // Share-nothing replica: every shard deserializes its own operator
  // from the blob — the same path a deployment uses to program a macro.
  std::istringstream is(amm_blob_);
  const maddness::Amm amm = maddness::Amm::load(is);
  core::Accelerator accel(opts_.accel);
  const Batcher batcher(opts_.batcher);
  const auto cols = static_cast<std::size_t>(amm.cfg().total_dims());
  const auto nout = static_cast<std::size_t>(amm.lut().nout);

  double pace_ns = 0.0;
  if (opts_.mode == ExecutionMode::kDevicePaced) {
    pace_ns = opts_.device_ns_per_token > 0.0
                  ? opts_.device_ns_per_token
                  : accel.analytic_report(0).token_interval_ns;
    SSMA_CHECK_MSG(pace_ns > 0.0, "device pacing needs a token interval");
  }
  Clock::time_point device_free = Clock::now();

  std::vector<core::PpaReport> batch_reports;
  std::size_t tokens_served = 0;
  std::vector<double> queue_ns, total_ns;

  for (;;) {
    Batch batch = batcher.next_batch(queue_);
    if (batch.empty()) break;  // queue closed and drained
    const Clock::time_point t_exec = Clock::now();

    // Stitch the batch into one activation matrix; rows keep request
    // order, so outputs slice back out contiguously.
    maddness::QuantizedActivations q;
    q.rows = batch.tokens;
    q.cols = cols;
    q.scale = amm.activation_scale();
    q.codes.reserve(batch.tokens * cols);
    for (const InferenceRequest& req : batch.requests) {
      SSMA_CHECK_MSG(req.codes.size() == req.rows * cols,
                     "request payload shape mismatch");
      q.codes.insert(q.codes.end(), req.codes.begin(), req.codes.end());
    }

    std::vector<std::int16_t> out;
    if (opts_.mode == ExecutionMode::kSimulate) {
      core::AcceleratorResult r = accel.run(amm, q);
      out = std::move(r.outputs);
      batch_reports.push_back(std::move(r.report));
    } else {
      out = amm.apply_int16(q);
      if (opts_.mode == ExecutionMode::kDevicePaced) {
        // The batch occupies this shard's device for tokens * interval;
        // back-to-back batches queue on the device, idle gaps don't
        // accumulate credit.
        device_free =
            std::max(device_free, t_exec) +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::nano>(
                    static_cast<double>(batch.tokens) * pace_ns));
        std::this_thread::sleep_until(device_free);
      }
    }

    const Clock::time_point t_done = Clock::now();
    queue_ns.clear();
    total_ns.clear();
    std::size_t row = 0;
    for (InferenceRequest& req : batch.requests) {
      InferenceResult res;
      res.request_id = req.id;
      res.rows = req.rows;
      res.worker_id = worker_id;
      res.completed_at = t_done;
      res.outputs.assign(out.begin() + static_cast<std::ptrdiff_t>(
                                           row * nout),
                         out.begin() + static_cast<std::ptrdiff_t>(
                                           (row + req.rows) * nout));
      row += req.rows;
      queue_ns.push_back(std::chrono::duration<double, std::nano>(
                             t_exec - req.enqueued_at)
                             .count());
      total_ns.push_back(std::chrono::duration<double, std::nano>(
                             t_done - req.enqueued_at)
                             .count());
      req.result.set_value(std::move(res));
    }
    tokens_served += batch.tokens;
    metrics_.record_batch(batch.tokens, queue_ns, total_ns);
  }

  if (opts_.mode == ExecutionMode::kSimulate) {
    if (batch_reports.empty()) {
      // Idle shard: its macro still exists — contribute the silicon
      // (config echo + area/SRAM) with zeroed run-dependent fields.
      core::PpaReport silicon = accel.analytic_report(0);
      silicon.freq_mhz = 0.0;
      silicon.throughput_tops = 0.0;
      silicon.token_interval_ns = 0.0;
      silicon.tops_per_w = 0.0;
      silicon.tops_per_mm2 = 0.0;
      silicon.energy_per_op_fj = 0.0;
      silicon.energy_decoder_share = 0.0;
      silicon.energy_encoder_share = 0.0;
      shard_reports_[static_cast<std::size_t>(worker_id)] = silicon;
    } else {
      shard_reports_[static_cast<std::size_t>(worker_id)] =
          core::merge_sequential_reports(batch_reports);
    }
  }
  shard_tokens_[static_cast<std::size_t>(worker_id)] = tokens_served;
}

}  // namespace ssma::serve
