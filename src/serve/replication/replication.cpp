#include "serve/replication/replication.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "maddness/framing.hpp"
#include "net/wire_protocol.hpp"
#include "serve/replication/socket_util.hpp"
#include "serve/request_queue.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/wire.hpp"

namespace ssma::serve::replication {

using net::FrameDecoder;
using net::MsgType;
using net::ReplMessage;

const char* to_string(AckMode mode) {
  switch (mode) {
    case AckMode::kAsync:
      return "async";
    case AckMode::kWindow:
      return "window";
    case AckMode::kSync:
      return "sync";
  }
  return "?";
}

namespace {

/// Blocking frame receive: drains the decoder, refilling from the
/// socket as needed. False on peer close, socket error, or a bad frame.
bool recv_frame(int fd, FrameDecoder& dec, std::string* payload) {
  for (;;) {
    switch (dec.next(payload)) {
      case FrameDecoder::Result::kFrame:
        return true;
      case FrameDecoder::Result::kBad:
        return false;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    dec.feed(buf, static_cast<std::size_t>(n));
  }
}

/// Tails a journal file by VIRTUAL byte offset (the stable addressing
/// that survives compaction): translates to a physical seek through the
/// journal's CompactionInfo and reopens the stream whenever compaction
/// rewrites the file (generation bump).
class JournalTailer {
 public:
  explicit JournalTailer(recovery::RequestJournal& journal)
      : journal_(journal), info_(journal.compaction_info()) {
    is_.open(journal_.path(), std::ios::binary);
  }

  const recovery::RequestJournal::CompactionInfo& info() const {
    return info_;
  }

  /// Reads the frame at virtual offset `*vpos`; advances *vpos past it
  /// on success. False on a not-yet-visible frame or an offset behind
  /// the compaction horizon.
  bool read_at(std::uint64_t* vpos, std::string* payload) {
    const auto now = journal_.compaction_info();
    if (now.generation != info_.generation) {
      info_ = now;
      is_.close();
      is_.open(journal_.path(), std::ios::binary);
    }
    if (*vpos < info_.base_bytes) return false;
    const std::uint64_t phys =
        *vpos - info_.base_bytes + info_.header_bytes;
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(phys));
    if (!is_ || !maddness::try_read_framed_blob(is_, payload))
      return false;
    *vpos += 12 + payload->size();  // u64 len + u32 crc + payload
    return true;
  }

 private:
  recovery::RequestJournal& journal_;
  recovery::RequestJournal::CompactionInfo info_;
  std::ifstream is_;
};

}  // namespace

ReplicationLog::ReplicationLog(recovery::RequestJournal& journal,
                               recovery::CheckpointManager* checkpoints,
                               const ReplicationOptions& opts)
    : journal_(journal), checkpoints_(checkpoints), opts_(opts) {
  leader_seq_ = journal_.durable_seq();
  leader_bytes_ = journal_.durable_bytes();
  // Pre-existing records are untracked for byte/age lag (no append
  // timestamps exist for them); the record-count lag still covers them.
  replicated_bytes_ = leader_bytes_;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SSMA_CHECK_MSG(listen_fd_ >= 0, "replication: socket() failed");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  SSMA_CHECK_MSG(::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) == 1, "replication: bad listen host: " + opts_.host);
  SSMA_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0, "replication: bind failed on " + opts_.host);
  SSMA_CHECK_MSG(::listen(listen_fd_, 8) == 0, "replication: listen failed");
  socklen_t len = sizeof(addr);
  SSMA_CHECK_MSG(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&addr), &len) == 0, "replication: getsockname failed");
  port_ = ntohs(addr.sin_port);

  journal_.set_commit_hook([this](std::uint64_t seq, std::uint64_t bytes) {
    on_commit(seq, bytes);
  });
  accept_thread_ = std::thread([this] { accept_main(); });
}

ReplicationLog::~ReplicationLog() { stop(); }

void ReplicationLog::on_commit(std::uint64_t seq, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  leader_seq_ = seq;
  leader_bytes_ = bytes;
  // pending_ only feeds the lag gauges; never let it grow one entry
  // per request for the process lifetime when nothing is draining it.
  bool any_ready = false;
  for (const auto& f : followers_)
    if (f->ready) {
      any_ready = true;
      break;
    }
  if (!any_ready && pending_.size() > 1) {
    // No handshaken follower to advance the watermark: keep only the
    // oldest entry (the lag_ns anchor) until one connects.
    pending_.erase(pending_.begin() + 1, pending_.end());
  } else if (pending_.size() >= kMaxPending) {
    // Follower connected but deeply lagged: drop every other interior
    // entry. The byte/ns gauges coarsen; memory stays bounded.
    std::deque<Pending> thinned;
    for (std::size_t i = 0; i < pending_.size(); ++i)
      if (i == 0 || i + 1 == pending_.size() || i % 2 == 0)
        thinned.push_back(pending_[i]);
    pending_.swap(thinned);
  }
  pending_.push_back({seq, bytes, std::chrono::steady_clock::now()});
  cv_.notify_all();
}

void ReplicationLog::accept_main() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    followers_.emplace_back(std::make_unique<Follower>());
    Follower* f = followers_.back().get();
    f->fd = fd;
    f->session = std::thread([this, f] { session_main(f); });
  }
}

std::uint64_t ReplicationLog::newest_valid_checkpoint() {
  if (!checkpoints_) return 0;
  const auto versions = checkpoints_->versions();
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    bool valid;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto cached = ckpt_valid_.find(*it);
      if (cached != ckpt_valid_.end()) {
        if (cached->second) return *it;
        continue;
      }
    }
    try {
      (void)recovery::CheckpointManager::load_file(
          checkpoints_->path_of(*it));
      valid = true;
    } catch (const std::exception&) {
      valid = false;  // torn (e.g. injected kTornCheckpoint) — skip
    }
    std::lock_guard<std::mutex> lk(mu_);
    ckpt_valid_[*it] = valid;
    if (valid) return *it;
  }
  return 0;
}

bool ReplicationLog::faulted_send(Follower* f, const std::string& frame,
                                  bool* sent) {
  SSMA_TRACE_SPAN(kReplSend);
  *sent = false;
  int dup = 1;
  if (opts_.fault) {
    const auto action = opts_.fault->poll(recovery::FaultSite::kReplSend);
    switch (action.kind) {
      case recovery::FaultKind::kDelay:
        std::this_thread::sleep_for(action.delay);
        break;
      case recovery::FaultKind::kDropMessage: {
        // Silently not delivered: the stream position advances, and the
        // drop heals either when the follower detects the sequence gap
        // on the next record and reconnects with its real high-water
        // mark, or — if traffic stops — when the idle resend rewinds to
        // the follower's ack mark and re-offers it.
        std::lock_guard<std::mutex> lk(mu_);
        ++dropped_sends_;
        *sent = true;
        return true;
      }
      case recovery::FaultKind::kTornMessage: {
        // Half a frame, then cut: the follower's decoder sees a torn
        // stream and reconnects.
        (void)send_all(f->fd, frame.data(), frame.size() / 2);
        ::shutdown(f->fd, SHUT_RDWR);
        std::lock_guard<std::mutex> lk(mu_);
        ++torn_sends_;
        return false;
      }
      case recovery::FaultKind::kDupMessage: {
        dup = 2;
        std::lock_guard<std::mutex> lk(mu_);
        ++dup_sends_;
        break;
      }
      default:
        break;
    }
  }
  for (int i = 0; i < dup; ++i) {
    if (!send_all(f->fd, frame.data(), frame.size())) return false;
    std::lock_guard<std::mutex> lk(mu_);
    bytes_sent_ += frame.size();
  }
  *sent = true;
  return true;
}

bool ReplicationLog::ship_checkpoints(Follower* f) {
  const std::uint64_t v = newest_valid_checkpoint();
  if (v == 0 || v <= f->shipped_ckpt) return true;
  std::ifstream is(checkpoints_->path_of(v), std::ios::binary);
  if (!is) return true;  // raced a cleanup; next round retries
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  ReplMessage m;
  m.type = MsgType::kReplCheckpoint;
  m.arg = v;
  m.bytes = std::move(bytes);
  bool sent = false;
  // A dropped checkpoint cannot be gap-detected from sequence numbers
  // the way records are, so treat drop like a torn stream: cut the
  // connection and let the reconnect handshake re-ship it.
  if (!faulted_send(f, m.encode(), &sent) || !sent) {
    ::shutdown(f->fd, SHUT_RDWR);
    return false;
  }
  f->shipped_ckpt = v;
  std::lock_guard<std::mutex> lk(mu_);
  ++checkpoints_shipped_;
  return true;
}

void ReplicationLog::session_main(Follower* f) {
  FrameDecoder dec(opts_.max_frame_bytes);
  std::string payload;
  ReplMessage hello;
  bool ok = recv_frame(f->fd, dec, &payload) &&
            net::parse_repl(payload, &hello) &&
            hello.type == MsgType::kReplHello;
  if (ok && hello.arg > journal_.durable_seq()) {
    // The follower claims records this leader never wrote: it has
    // diverged (e.g. promoted, or paired with a different leader) and
    // must not be silently rewound.
    ReplMessage rej;
    rej.type = MsgType::kReplReject;
    rej.arg = static_cast<std::uint64_t>(RejectReason::kStaleFollower);
    rej.bytes = "follower seq " + std::to_string(hello.arg) +
                " ahead of leader seq " +
                std::to_string(journal_.durable_seq());
    const std::string frame = rej.encode();
    (void)send_all(f->fd, frame.data(), frame.size());
    std::lock_guard<std::mutex> lk(mu_);
    ++rejected_followers_;
    ok = false;
  }
  JournalTailer tail(journal_);
  if (ok && hello.arg > 0 && hello.arg < tail.info().base_seq) {
    // The follower's resume point was pruned by compaction while it was
    // disconnected (compaction only waits for CONNECTED followers'
    // acks). Its prefix can no longer be served byte-exact: refuse
    // loudly rather than rewind it.
    ReplMessage rej;
    rej.type = MsgType::kReplReject;
    rej.arg = static_cast<std::uint64_t>(RejectReason::kStaleFollower);
    rej.bytes = "follower seq " + std::to_string(hello.arg) +
                " behind compaction horizon " +
                std::to_string(tail.info().base_seq);
    const std::string frame = rej.encode();
    (void)send_all(f->fd, frame.data(), frame.size());
    std::lock_guard<std::mutex> lk(mu_);
    ++rejected_followers_;
    ok = false;
  }

  std::uint64_t next_seq = hello.arg + 1;
  std::uint64_t pos = 8;  // VIRTUAL offset past the journal magic
  if (ok) {
    f->shipped_ckpt = hello.arg2;
    if (!ship_checkpoints(f)) ok = false;
  }
  if (ok && hello.arg == 0 && tail.info().base_seq > 0) {
    // Fresh follower joining a compacted leader: its journal cannot be
    // a byte-prefix of ours (the prefix is gone), so ship the
    // compaction base first. The follower adopts it (adopt_base) and
    // its file becomes byte-identical to our compacted header; records
    // then stream from the first surviving one.
    ReplMessage base;
    base.type = MsgType::kReplBase;
    base.arg = tail.info().base_seq;
    base.arg2 = tail.info().base_bytes;
    bool sent = false;
    if (!faulted_send(f, base.encode(), &sent) || !sent) {
      ::shutdown(f->fd, SHUT_RDWR);
      ok = false;
    } else {
      next_seq = tail.info().base_seq + 1;
      pos = tail.info().base_bytes;
    }
  } else if (ok) {
    // Resume point: the follower's journal is a byte-prefix of ours,
    // so the durable VIRTUAL byte offset it reports in the hello IS
    // the offset of its next frame — seek there directly instead of
    // re-scanning hello.arg frames (O(journal) per reconnect adds up
    // to O(journal^2) under reconnect churn). An empty/implausible
    // offset falls back to the sequential skip.
    std::uint64_t follower_bytes = 0;
    if (hello.bytes.size() == 8) {
      std::istringstream hb(hello.bytes);
      follower_bytes = wire::get_u64(hb);
    }
    if (follower_bytes >= tail.info().base_bytes &&
        follower_bytes <= journal_.durable_bytes() &&
        (hello.arg > 0 || follower_bytes == 8)) {
      pos = follower_bytes;
    } else {
      // Skip the frames the follower already has, starting from the
      // first surviving record.
      pos = tail.info().base_bytes;
      for (std::uint64_t i = tail.info().base_seq;
           ok && i < hello.arg; ++i)
        ok = tail.read_at(&pos, &payload);
    }
  }
  if (ok) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      f->ready = true;
      f->acked_seq = hello.arg;
      replicated_seq_ = std::max(replicated_seq_, hello.arg);
      cv_.notify_all();
    }
    f->reader = std::thread([this, f] { reader_main(f); });

    // Sent-but-unacked frames (seq -> file offset of the frame). A
    // dropped send is normally healed by the follower spotting the
    // sequence gap on the NEXT record; when traffic stops there is no
    // next record, so after `resend_after` of quiet the sender rewinds
    // to the follower's ack mark and re-offers (the follower re-acks
    // duplicates idempotently).
    std::deque<std::pair<std::uint64_t, std::uint64_t>> unacked;
    constexpr std::size_t kMaxUnackedTracked = 65536;
    auto last_activity = std::chrono::steady_clock::now();

    bool broken = false;
    while (!broken) {
      std::uint64_t target;
      std::uint64_t acked;
      {
        std::unique_lock<std::mutex> lk(mu_);
        // The timeout doubles as the checkpoint-discovery poll: model
        // registrations checkpoint without journaling a record.
        cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
          return stopping_ || leader_seq_ >= next_seq;
        });
        if (stopping_) break;
        target = leader_seq_;
        acked = f->acked_seq;
      }
      while (!unacked.empty() && unacked.front().first <= acked) {
        unacked.pop_front();
        last_activity = std::chrono::steady_clock::now();
      }
      if (!ship_checkpoints(f)) break;
      if (next_seq > target && !unacked.empty() &&
          std::chrono::steady_clock::now() - last_activity >
              opts_.resend_after) {
        if (unacked.front().first != acked + 1) {
          // The rewind point aged out of the tracked window (cap hit):
          // resync through the reconnect handshake instead.
          break;
        }
        next_seq = unacked.front().first;
        pos = unacked.front().second;
        unacked.clear();
        last_activity = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lk(mu_);
        ++idle_resends_;
      }
      while (next_seq <= target && !broken) {
        // The record is durable (leader_seq_ covers it), so the frame
        // is fully on disk; retry briefly against fs visibility jitter.
        const std::uint64_t frame_pos = pos;
        bool have = false;
        for (int attempt = 0; attempt < 100 && !have; ++attempt) {
          have = tail.read_at(&pos, &payload);
          if (!have)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!have) {
          broken = true;
          break;
        }
        ReplMessage rec;
        rec.type = MsgType::kReplRecord;
        rec.arg = next_seq;
        rec.bytes = payload;
        bool sent = false;
        if (!faulted_send(f, rec.encode(), &sent)) {
          broken = true;
          break;
        }
        if (unacked.size() == kMaxUnackedTracked) unacked.pop_front();
        unacked.emplace_back(next_seq, frame_pos);
        last_activity = std::chrono::steady_clock::now();
        ++next_seq;
        std::lock_guard<std::mutex> lk(mu_);
        ++records_sent_;
      }
    }
  }

  ::shutdown(f->fd, SHUT_RDWR);
  if (f->reader.joinable()) f->reader.join();
  std::lock_guard<std::mutex> lk(mu_);
  ::close(f->fd);
  f->fd = -1;
  f->ready = false;
  f->done = true;
  cv_.notify_all();
}

void ReplicationLog::reader_main(Follower* f) {
  FrameDecoder dec(opts_.max_frame_bytes);
  std::string payload;
  ReplMessage m;
  while (recv_frame(f->fd, dec, &payload)) {
    if (!net::parse_repl(payload, &m) || m.type != MsgType::kReplAck)
      break;
    std::lock_guard<std::mutex> lk(mu_);
    f->acked_seq = std::max(f->acked_seq, m.arg);
    if (f->acked_seq > replicated_seq_) {
      replicated_seq_ = f->acked_seq;
      while (!pending_.empty() && pending_.front().seq <= replicated_seq_) {
        replicated_bytes_ = pending_.front().bytes;
        pending_.pop_front();
      }
      cv_.notify_all();
    }
  }
  // Wake the sender so a half-dead connection (peer gone, sends still
  // buffering) is torn down promptly.
  ::shutdown(f->fd, SHUT_RDWR);
}

bool ReplicationLog::wait_follower(std::size_t n,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto ready_count = [&] {
    std::size_t ready = 0;
    for (const auto& f : followers_)
      if (f->ready) ++ready;
    return ready;
  };
  ++waiters_;
  (void)cv_.wait_for(lk, timeout,
                     [&] { return stopping_ || ready_count() >= n; });
  if (--waiters_ == 0) cv_.notify_all();
  return ready_count() >= n;
}

std::uint64_t ReplicationLog::min_follower_ack() const {
  std::lock_guard<std::mutex> lk(mu_);
  bool any = false;
  std::uint64_t min_ack = ~std::uint64_t{0};
  for (const auto& f : followers_) {
    if (!f->ready) continue;
    any = true;
    min_ack = std::min(min_ack, f->acked_seq);
  }
  return any ? min_ack : replicated_seq_;
}

bool ReplicationLog::wait_acked(std::uint64_t seq) {
  if (opts_.ack_mode == AckMode::kAsync) return true;
  const std::uint64_t target =
      opts_.ack_mode == AckMode::kSync
          ? seq
          : (seq > opts_.window ? seq - opts_.window : 0);
  if (target == 0) return true;
  std::unique_lock<std::mutex> lk(mu_);
  ++waiters_;
  const bool ok = cv_.wait_for(lk, opts_.ack_timeout, [&] {
    return stopping_ || replicated_seq_ >= target;
  });
  if (--waiters_ == 0) cv_.notify_all();
  if (!ok) ++sync_degraded_;
  return ok;
}

ReplicationStats ReplicationLog::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicationStats s;
  s.leader_seq = leader_seq_;
  s.replicated_seq = replicated_seq_;
  for (const auto& f : followers_)
    if (f->ready) ++s.followers;
  s.records_sent = records_sent_;
  s.bytes_sent = bytes_sent_;
  s.checkpoints_shipped = checkpoints_shipped_;
  s.rejected_followers = rejected_followers_;
  s.sync_degraded = sync_degraded_;
  s.dropped_sends = dropped_sends_;
  s.torn_sends = torn_sends_;
  s.dup_sends = dup_sends_;
  s.idle_resends = idle_resends_;
  s.lag_records =
      leader_seq_ > replicated_seq_ ? leader_seq_ - replicated_seq_ : 0;
  s.lag_bytes = leader_bytes_ > replicated_bytes_
                    ? leader_bytes_ - replicated_bytes_
                    : 0;
  if (!pending_.empty()) {
    s.lag_ns = std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - pending_.front().at)
                   .count();
  }
  s.pending_entries = pending_.size();
  return s;
}

void ReplicationLog::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    cv_.notify_all();
  }
  journal_.set_commit_hook(nullptr);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& f : followers_)
      if (f->fd >= 0) ::shutdown(f->fd, SHUT_RDWR);
  }
  for (auto& f : followers_)
    if (f->session.joinable()) f->session.join();
  // Drain in-flight wait_acked()/wait_follower() callers: they wake on
  // stopping_ and leave promptly, but destruction must not pull
  // mu_/cv_ out from under a waiter still inside cv_.wait_for.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return waiters_ == 0; });
}

}  // namespace ssma::serve::replication
