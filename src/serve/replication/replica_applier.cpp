#include "serve/replication/replica_applier.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "maddness/framing.hpp"
#include "net/wire_protocol.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/replication/socket_util.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace ssma::serve::replication {

using net::FrameDecoder;
using net::MsgType;
using net::ReplMessage;

namespace {

bool recv_frame(int fd, FrameDecoder& dec, std::string* payload) {
  for (;;) {
    switch (dec.next(payload)) {
      case FrameDecoder::Result::kFrame:
        return true;
      case FrameDecoder::Result::kBad:
        return false;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    dec.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

ReplicaApplier::ReplicaApplier(const ApplierOptions& opts) : opts_(opts) {
  SSMA_CHECK_MSG(!opts_.dir.empty(), "replication: applier dir required");
  std::filesystem::create_directories(opts_.dir);
  journal_path_ = opts_.dir + "/journal.ssj";
  ckpt_dir_ = opts_.dir + "/checkpoints";
  journal_ = std::make_unique<recovery::RequestJournal>(journal_path_);
  // Path/versions helper only; never written through, so its version
  // counter (fixed at construction, before any checkpoint arrives) is
  // irrelevant. The promoted server gets a fresh manager.
  ckpt_paths_ = std::make_unique<recovery::CheckpointManager>(ckpt_dir_);
  thread_ = std::thread([this] { run(); });
}

ReplicaApplier::~ReplicaApplier() { stop(); }

std::uint64_t ReplicaApplier::newest_local_checkpoint() const {
  const auto versions = ckpt_paths_->versions();
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    try {
      (void)recovery::CheckpointManager::load_file(ckpt_paths_->path_of(*it));
      return *it;
    } catch (const std::exception&) {
      continue;  // torn — an older version may still validate
    }
  }
  return 0;
}

void ReplicaApplier::build_standby() {
  recovery::CheckpointManager cm(ckpt_dir_);
  auto rs = recovery::recover_state(cm, journal_path_);
  if (!rs.has_checkpoint()) return;
  ServerOptions sopts = opts_.server;
  // The standby must not journal or checkpoint on its own: the applier
  // owns the follower's stores and the records in them are the
  // leader's. Promotion wires them in.
  sopts.recovery = RecoveryOptions{};
  auto standby = InferenceServer::restore(rs, sopts);
  auto futs = standby->replay(rs.journal.unacknowledged);
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < futs.size(); ++i)
    replay_futures_.emplace_back(rs.journal.unacknowledged[i].id,
                                 std::move(futs[i]));
  for (const auto& [id, crc] : rs.journal.completed_crc) {
    leader_crc_[id] = crc;
    completed_ids_.insert(id);
  }
  applied_records_ += rs.journal.unacknowledged.size();
  completed_records_ += rs.journal.completed_crc.size();
  max_applied_id_ = std::max(max_applied_id_, rs.journal.max_id);
  ckpt_next_request_id_ = std::max(ckpt_next_request_id_, rs.next_request_id);
  ckpt_version_ = std::max(ckpt_version_, rs.checkpoint_version);
  standby_ = std::move(standby);
  cv_.notify_all();
}

bool ReplicaApplier::handle_checkpoint(const ReplMessage& m) {
  const std::string path = ckpt_paths_->path_of(m.arg);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(m.bytes.data(),
             static_cast<std::streamsize>(m.bytes.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  recovery::CheckpointState st;
  try {
    st = recovery::CheckpointManager::load_file(tmp);
  } catch (const std::exception&) {
    // The frame CRC passed but the checkpoint payload does not
    // validate: treat as a torn stream and resync.
    std::remove(tmp.c_str());
    return false;
  }
  std::filesystem::rename(tmp, path);

  if (!standby_) {
    build_standby();
  } else if (!st.registry_blob.empty()) {
    // Incremental registry application: already-installed versions are
    // skipped (live pins untouched), the stream's latest pointers are
    // honored exactly — the hot-swap-aware half of promotion fidelity.
    std::istringstream is(st.registry_blob);
    standby_->registry().merge(is);
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++checkpoints_received_;
  ckpt_version_ = std::max(ckpt_version_, m.arg);
  ckpt_next_request_id_ =
      std::max(ckpt_next_request_id_, st.next_request_id);
  return true;
}

bool ReplicaApplier::handle_record(const ReplMessage& m, int fd) {
  int acks = 1;
  if (opts_.fault) {
    const auto action = opts_.fault->poll(recovery::FaultSite::kReplRecv);
    switch (action.kind) {
      case recovery::FaultKind::kDelay:
        std::this_thread::sleep_for(action.delay);
        break;
      case recovery::FaultKind::kDropMessage: {
        // Received but "lost" before persistence: no ack, no append.
        // The next record is a sequence gap, forcing a resync that
        // re-streams this one.
        std::lock_guard<std::mutex> lk(mu_);
        ++recv_faults_;
        return true;
      }
      case recovery::FaultKind::kTornMessage: {
        std::lock_guard<std::mutex> lk(mu_);
        ++recv_faults_;
        return false;
      }
      case recovery::FaultKind::kDupMessage:
        acks = 2;  // duplicate ack; the leader's watermark is monotonic
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++recv_faults_;
        }
        break;
      default:
        break;
    }
  }

  const std::uint64_t durable = journal_->durable_seq();
  if (m.arg <= durable) {
    // Duplicate delivery (leader-side kDupMessage or a resend race):
    // already durable, so just re-ack the high-water mark.
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++dup_records_;
    }
    ReplMessage ack;
    ack.type = MsgType::kReplAck;
    ack.arg = durable;
    const std::string frame = ack.encode();
    return send_all(fd, frame.data(), frame.size());
  }
  if (m.arg != durable + 1) {
    // Sequence gap (a drop upstream): resync from our true mark.
    std::lock_guard<std::mutex> lk(mu_);
    ++gap_reconnects_;
    return false;
  }

  const std::uint64_t seq = journal_->append_raw(m.bytes);
  SSMA_CHECK_MSG(seq == m.arg,
                 "replication: follower journal diverged from stream");

  recovery::ParsedRecord pr;
  if (recovery::RequestJournal::parse_record(m.bytes, &pr)) {
    if (pr.is_accepted) {
      if (standby_) {
        SSMA_TRACE_SPAN_IDS(kReplApply, pr.accepted.id, pr.accepted.id);
        auto futs = standby_->replay({pr.accepted});
        std::lock_guard<std::mutex> lk(mu_);
        replay_futures_.emplace_back(pr.accepted.id, std::move(futs[0]));
        ++applied_records_;
        max_applied_id_ = std::max(max_applied_id_, pr.accepted.id);
        const auto now = std::chrono::steady_clock::now();
        if (first_apply_at_.time_since_epoch().count() == 0)
          first_apply_at_ = now;
        last_apply_at_ = now;
      }
    } else {
      std::lock_guard<std::mutex> lk(mu_);
      leader_crc_[pr.completed_id] = pr.completed_crc;
      completed_ids_.insert(pr.completed_id);
      ++completed_records_;
    }
  }
  cv_.notify_all();

  ReplMessage ack;
  ack.type = MsgType::kReplAck;
  ack.arg = seq;
  const std::string frame = ack.encode();
  for (int i = 0; i < acks; ++i)
    if (!send_all(fd, frame.data(), frame.size())) return false;
  return true;
}

void ReplicaApplier::session(int fd) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    fd_ = fd;
    connected_ = true;
  }
  ReplMessage hello;
  hello.type = MsgType::kReplHello;
  hello.arg = journal_->durable_seq();
  hello.arg2 = ckpt_version_;
  {
    // Durable byte offset: our journal is a byte-prefix of the
    // leader's, so this lets the leader seek straight to our resume
    // point instead of re-scanning `arg` frames on every reconnect.
    std::ostringstream hb;
    wire::put_u64(hb, journal_->durable_bytes());
    hello.bytes = hb.str();
  }
  const std::string frame = hello.encode();
  if (send_all(fd, frame.data(), frame.size())) {
    FrameDecoder dec(opts_.max_frame_bytes);
    std::string payload;
    ReplMessage m;
    while (recv_frame(fd, dec, &payload)) {
      if (!net::parse_repl(payload, &m)) break;
      if (m.type == MsgType::kReplReject) {
        std::lock_guard<std::mutex> lk(mu_);
        rejected_ = true;
        reject_reason_ = static_cast<RejectReason>(m.arg);
        reject_detail_ = m.bytes;
        stopping_ = true;  // the leader says we diverged; retrying won't help
        cv_.notify_all();
        break;
      }
      if (m.type == MsgType::kReplCheckpoint) {
        if (!handle_checkpoint(m)) break;
      } else if (m.type == MsgType::kReplRecord) {
        if (!handle_record(m, fd)) break;
      } else if (m.type == MsgType::kReplBase) {
        // Compacted leader, fresh follower: adopt the compaction base
        // so our file is byte-identical to the leader's compacted
        // header, then ack it as our durable mark. adopt_base throws if
        // we already hold records — the leader only sends this to a
        // follower that handshook with seq 0.
        journal_->adopt_base(m.arg, m.arg2);
        ReplMessage ack;
        ack.type = MsgType::kReplAck;
        ack.arg = m.arg;
        const std::string af = ack.encode();
        if (!send_all(fd, af.data(), af.size())) break;
      } else {
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  ::close(fd);
  fd_ = -1;
  connected_ = false;
}

void ReplicaApplier::run() {
  // Follower-restart resume: adopt whatever checkpoints + journal this
  // dir already holds before asking the leader for the delta.
  build_standby();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ckpt_version_ = std::max(ckpt_version_, newest_local_checkpoint());
  }

  Rng rng(opts_.backoff_seed);
  std::uint64_t attempt = 0;
  bool ever_connected = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (stopping_) return;
      ++connect_attempts_;
    }
    const int fd = tcp_connect(opts_.leader_host, opts_.leader_port);
    if (fd >= 0) {
      attempt = 0;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
          ::close(fd);
          return;
        }
        if (ever_connected) ++reconnects_;
      }
      ever_connected = true;
      session(fd);
      continue;
    }
    // Capped exponential backoff with deterministic seeded jitter.
    const std::uint64_t base =
        static_cast<std::uint64_t>(opts_.backoff_base.count());
    const std::uint64_t cap =
        static_cast<std::uint64_t>(opts_.backoff_cap.count());
    const std::uint64_t shift = std::min<std::uint64_t>(attempt, 20);
    std::uint64_t delay = std::min(cap, base << shift);
    delay += rng.next_below(delay / 2 + 1);
    ++attempt;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::milliseconds(delay),
                 [&] { return stopping_; });
  }
}

bool ReplicaApplier::wait_caught_up(std::uint64_t seq,
                                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_until(lk, deadline, [&] {
    return stopping_ || journal_->durable_seq() >= seq;
  }) && journal_->durable_seq() >= seq;
}

bool ReplicaApplier::wait_standby(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout,
                      [&] { return stopping_ || standby_ != nullptr; }) &&
         standby_ != nullptr;
}

ApplierStats ReplicaApplier::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ApplierStats s;
  s.connected = connected_;
  s.has_standby = standby_ != nullptr;
  s.connect_attempts = connect_attempts_;
  s.reconnects = reconnects_;
  s.durable_seq = journal_->durable_seq();
  s.checkpoints_received = checkpoints_received_;
  s.applied_records = applied_records_;
  s.completed_records = completed_records_;
  s.dup_records = dup_records_;
  s.gap_reconnects = gap_reconnects_;
  s.recv_faults = recv_faults_;
  s.rejected = rejected_;
  s.reject_reason = reject_reason_;
  if (applied_records_ > 0 &&
      last_apply_at_ > first_apply_at_) {
    const double secs = std::chrono::duration<double>(last_apply_at_ -
                                                      first_apply_at_)
                            .count();
    if (secs > 0)
      s.apply_rate_hz = static_cast<double>(applied_records_ - 1) / secs;
  }
  return s;
}

void ReplicaApplier::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

std::unique_ptr<InferenceServer> ReplicaApplier::promote(
    PromotionReport* report) {
  const auto t0 = std::chrono::steady_clock::now();
  SSMA_TRACE_SPAN(kPromotion);
  stop();  // seal the stream: nothing mutates state past this point
  SSMA_CHECK_MSG(!promoted_, "replication: promote() called twice");
  if (rejected_)
    throw RejectedError(reject_reason_,
                        "replication: leader rejected this follower: " +
                            reject_detail_);
  if (!standby_)
    throw RejectedError(RejectReason::kReplicaNotReady,
                        "replication: no checkpoint received — cannot "
                        "promote an empty standby");
  promoted_ = true;

  PromotionReport rep;
  rep.durable_seq = journal_->durable_seq();
  // Finish the replay and audit: every applied request's output CRC
  // must match the leader's replicated completion record where one
  // exists; requests the leader never acknowledged get their
  // completion records written here — the zero-RPO backfill.
  for (auto& [id, fut] : replay_futures_) {
    try {
      const InferenceResult r = fut.get();
      const std::uint32_t crc = maddness::crc32(
          r.outputs.data(), r.outputs.size() * sizeof(std::int16_t));
      const auto it = leader_crc_.find(id);
      if (it != leader_crc_.end() && it->second != crc)
        ++rep.crc_mismatches;
      if (!completed_ids_.count(id)) {
        journal_->append_completed(id, /*worker_id=*/-1, crc);
        completed_ids_.insert(id);
        ++rep.completed_backfilled;
      }
      ++rep.applied;
    } catch (const std::exception&) {
      ++rep.replay_failures;
    }
  }
  replay_futures_.clear();

  // The promoted leader must never reuse a request id the old leader
  // handed out.
  standby_->ensure_id_watermark(
      std::max(max_applied_id_ + 1, ckpt_next_request_id_));
  // Fresh manager so its version counter adopts every shipped file —
  // the promoted server's own checkpoints continue the leader's
  // numbering instead of colliding with it.
  promoted_ckpts_ =
      std::make_unique<recovery::CheckpointManager>(ckpt_dir_);
  standby_->attach_recovery(journal_.get(), promoted_ckpts_.get(),
                            opts_.checkpoint_every);
  rep.seal_to_serving_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  standby_->note_promotion(rep.applied, stats().apply_rate_hz);
  if (report) *report = rep;
  return std::move(standby_);
}

}  // namespace ssma::serve::replication
