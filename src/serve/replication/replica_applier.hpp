// Follower side of the distributed-HA pair: a warm standby that
// continuously applies the leader's replication stream and can be
// promoted into a serving InferenceServer with zero RPO.
//
// The applier connects to a ReplicationLog, handshakes with its own
// durable high-water mark (so a follower restart resumes exactly where
// its journal left off), and then:
//
//   - persists every shipped checkpoint file into its own checkpoint
//     directory (atomic tmp + rename, leader-byte-exact);
//   - appends every streamed journal record verbatim, keeping the
//     follower journal a byte-prefix of the leader's;
//   - replays each accepted record into a warm standby server built
//     from the first checkpoint, so promotion-time work is bounded by
//     in-flight requests, not journal length. Later checkpoints merge
//     into the standby's registry (live pins untouched), which is how
//     a promoted follower resolves "@latest" exactly as the leader
//     would — including across hot-swap boundaries;
//   - acks each record's sequence number, advancing the leader's
//     replication watermark (what sync/window acked-writes wait on).
//
// Duplicate records (seq <= durable) are acked and skipped; a sequence
// gap or torn stream tears the connection down and the reconnect
// handshake resumes from the follower's true high-water mark — the
// stream self-heals under drops, tears and duplication, which the
// chaos tests drive via the kReplSend/kReplRecv fault sites.
//
// promote() seals the stream, finishes the replay, audits replayed
// output CRCs against the leader's replicated completion records,
// backfills completion records for everything the leader never got to
// acknowledge, and attaches the follower's journal + checkpoint store
// to the standby — which is returned as a fully serving, fully
// protected leader. The applier (which owns that journal and store)
// must outlive the promoted server.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/server.hpp"

namespace ssma::net {
struct ReplMessage;
}

namespace ssma::serve::replication {

struct ApplierOptions {
  std::string leader_host = "127.0.0.1";
  std::uint16_t leader_port = 0;
  /// Follower state root: journal.ssj + checkpoints/ live here.
  std::string dir;
  /// Standby construction options. `server.recovery` is ignored — the
  /// applier owns the follower's journal and checkpoint store and
  /// wires them in at promotion.
  ServerOptions server;
  /// Checkpoint cadence handed to the promoted server.
  std::size_t checkpoint_every = 0;
  /// Reconnect backoff: capped exponential with deterministic seeded
  /// jitter (so chaos runs reproduce from SSMA_TEST_SEED).
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{1000};
  std::uint64_t backoff_seed = 0x5eedfa57;
  std::size_t max_frame_bytes = 256u << 20;
  /// Polled at kReplRecv as each record arrives. Borrowed.
  recovery::FaultInjector* fault = nullptr;
};

struct ApplierStats {
  bool connected = false;
  bool has_standby = false;
  std::uint64_t connect_attempts = 0;  ///< dials, successful or not
  std::uint64_t reconnects = 0;      ///< connects after the first one
  std::uint64_t durable_seq = 0;     ///< follower journal high-water mark
  std::uint64_t checkpoints_received = 0;
  std::uint64_t applied_records = 0;    ///< accepted records replayed
  std::uint64_t completed_records = 0;  ///< leader completion CRCs seen
  std::uint64_t dup_records = 0;
  std::uint64_t gap_reconnects = 0;
  std::uint64_t recv_faults = 0;  ///< injected kReplRecv fires
  bool rejected = false;          ///< leader sent kReplReject
  RejectReason reject_reason = RejectReason::kShutdown;
  /// Accepted records applied per second since the first apply.
  double apply_rate_hz = 0.0;
};

/// What promote() did, for runbooks and the failover bench.
struct PromotionReport {
  std::uint64_t durable_seq = 0;  ///< records durable at promotion
  std::uint64_t applied = 0;      ///< accepted records with outputs
  /// Completion records written for requests the leader accepted but
  /// whose acks never replicated — the zero-RPO backfill.
  std::uint64_t completed_backfilled = 0;
  /// Replayed outputs whose CRC disagrees with the leader's replicated
  /// completion record. Always 0 on a healthy deterministic pair.
  std::uint64_t crc_mismatches = 0;
  std::uint64_t replay_failures = 0;  ///< futures that threw (bug/retire)
  double seal_to_serving_ms = 0.0;
};

class ReplicaApplier {
 public:
  /// Creates `dir` layout, opens (or resumes) the follower journal and
  /// starts the streaming thread.
  explicit ReplicaApplier(const ApplierOptions& opts);
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  std::string journal_path() const { return journal_path_; }
  std::string checkpoint_dir() const { return ckpt_dir_; }

  /// Blocks until the follower journal covers `seq` (true) or timeout.
  bool wait_caught_up(std::uint64_t seq, std::chrono::milliseconds timeout);
  /// Blocks until the warm standby exists (first checkpoint applied).
  bool wait_standby(std::chrono::milliseconds timeout);

  ApplierStats stats() const;

  /// Seals the stream (idempotent): disconnects and joins the thread.
  void stop();

  /// Seals the stream and turns the standby into a serving leader:
  /// drains the replay futures, audits CRCs, backfills completion
  /// records, attaches this follower's journal + checkpoint store and
  /// returns the server. Throws RejectedError(kReplicaNotReady) when no
  /// checkpoint ever arrived, RejectedError(kStaleFollower) when the
  /// leader rejected the handshake. Call at most once.
  std::unique_ptr<InferenceServer> promote(PromotionReport* report = nullptr);

 private:
  void run();
  /// One connected session: handshake + apply loop. Returns when the
  /// connection dies or stop() is called.
  void session(int fd);
  bool handle_checkpoint(const net::ReplMessage& m);
  /// Returns false when the session must be torn down (gap/tear).
  bool handle_record(const net::ReplMessage& m, int fd);
  void build_standby();
  /// Newest on-disk checkpoint version that validates (0 = none).
  std::uint64_t newest_local_checkpoint() const;

  ApplierOptions opts_;
  std::string journal_path_;
  std::string ckpt_dir_;
  std::unique_ptr<recovery::RequestJournal> journal_;
  /// Path helper only (never written through); the promoted server gets
  /// a fresh manager so its version counter adopts shipped files.
  std::unique_ptr<recovery::CheckpointManager> ckpt_paths_;
  std::unique_ptr<recovery::CheckpointManager> promoted_ckpts_;

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool promoted_ = false;
  int fd_ = -1;

  std::unique_ptr<InferenceServer> standby_;
  /// Replay futures not yet drained, in apply order.
  std::vector<std::pair<std::uint64_t, std::future<InferenceResult>>>
      replay_futures_;
  /// id -> CRC from the leader's replicated completion records.
  std::unordered_map<std::uint64_t, std::uint32_t> leader_crc_;
  /// ids with a completion record in the follower journal.
  std::unordered_set<std::uint64_t> completed_ids_;
  std::uint64_t max_applied_id_ = 0;
  std::uint64_t ckpt_next_request_id_ = 0;
  std::uint64_t ckpt_version_ = 0;  ///< newest applied checkpoint

  bool connected_ = false;
  std::uint64_t connect_attempts_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t checkpoints_received_ = 0;
  std::uint64_t applied_records_ = 0;
  std::uint64_t completed_records_ = 0;
  std::uint64_t dup_records_ = 0;
  std::uint64_t gap_reconnects_ = 0;
  std::uint64_t recv_faults_ = 0;
  bool rejected_ = false;
  RejectReason reject_reason_ = RejectReason::kShutdown;
  std::string reject_detail_;
  std::chrono::steady_clock::time_point first_apply_at_{};
  std::chrono::steady_clock::time_point last_apply_at_{};
};

}  // namespace ssma::serve::replication
