// Leader side of the distributed-HA pair: journal streaming replication
// plus checkpoint shipping.
//
// A ReplicationLog sits next to a leader InferenceServer's
// RequestJournal and tails it — the journal file itself is the
// replication buffer, so there is no second in-memory log to keep
// consistent. Followers connect over the library's standard CRC-framed
// wire protocol (net/wire_protocol.hpp, kRepl* messages), handshake
// with their durable high-water mark, receive the newest checkpoint if
// theirs is older, and then receive every journal record from their
// resume point on, byte-exact. The follower's journal file is thereby
// a byte-prefix of the leader's at all times, which is what makes
// promotion zero-RPO: replaying it on the deterministic kernel
// reproduces the leader's acknowledged outputs to the bit.
//
// Acked-write semantics — the durability contract clients buy:
//
//   kAsync   submit() acks as soon as the record is locally durable;
//            replication trails best-effort (bounded, measured loss on
//            leader death).
//   kWindow  acks may run at most `window` records ahead of the
//            replication watermark.
//   kSync    every ack waits until the record itself is replicated.
//
// The worker ack path calls wait_acked() to enforce this. A watermark
// wait that exceeds `ack_timeout` degrades to async for that record
// (counted in stats().sync_degraded) rather than wedging the serving
// path on a dead follower — availability over durability, explicitly
// measured.
//
// Checkpoint-before-records invariant: the server checkpoints a model
// version durably before any request can pin it (stage -> checkpoint ->
// publish -> checkpoint), so the newest checkpoint at any record's
// journal time contains every model that record can reference. The
// sender ships the newest valid checkpoint before streaming records
// past it, which is therefore sufficient for the follower to replay
// everything — including across hot-swap boundaries.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"

namespace ssma::serve::replication {

enum class AckMode : std::uint8_t {
  kAsync = 0,
  kWindow = 1,
  kSync = 2,
};
const char* to_string(AckMode mode);

struct ReplicationOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  AckMode ack_mode = AckMode::kAsync;
  /// kWindow: max acked-but-unreplicated records before acks stall.
  std::uint64_t window = 64;
  /// Watermark wait bound before an ack degrades to async (liveness
  /// under follower death; counted in stats().sync_degraded).
  std::chrono::milliseconds ack_timeout{2000};
  /// Idle heartbeat-resend: when the stream has been quiet this long
  /// with sent-but-unacked records outstanding, re-offer them from the
  /// follower's ack mark. Heals a dropped last record that no follow-up
  /// traffic would ever gap-detect.
  std::chrono::milliseconds resend_after{250};
  std::size_t max_frame_bytes = 256u << 20;
  /// Polled at kReplSend before every outbound message. Borrowed.
  recovery::FaultInjector* fault = nullptr;
};

/// Point-in-time replication telemetry; all counters are lifetime.
struct ReplicationStats {
  std::uint64_t leader_seq = 0;       ///< newest locally durable record
  std::uint64_t replicated_seq = 0;   ///< watermark: max follower ack
  std::size_t followers = 0;          ///< handshaken live connections
  std::uint64_t records_sent = 0;
  std::uint64_t bytes_sent = 0;       ///< record + checkpoint payloads
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t rejected_followers = 0;  ///< kStaleFollower handshakes
  std::uint64_t sync_degraded = 0;    ///< ack waits that timed out
  std::uint64_t dropped_sends = 0;    ///< injected kDropMessage fires
  std::uint64_t torn_sends = 0;       ///< injected kTornMessage fires
  std::uint64_t dup_sends = 0;        ///< injected kDupMessage fires
  std::uint64_t idle_resends = 0;     ///< quiet-stream rewind re-offers
  std::uint64_t lag_records = 0;      ///< leader_seq - replicated_seq
  std::uint64_t lag_bytes = 0;        ///< journal bytes past watermark
  /// Age of the oldest unreplicated record (0 when fully caught up).
  double lag_ns = 0.0;
  /// Lag-gauge bookkeeping entries currently held (bounded; see
  /// ReplicationLog::pending_).
  std::size_t pending_entries = 0;
};

/// Leader-side replication endpoint. Construction binds the listener
/// and installs itself as the journal's commit hook; destruction (or
/// stop()) tears both down. One instance per journal.
class ReplicationLog {
 public:
  ReplicationLog(recovery::RequestJournal& journal,
                 recovery::CheckpointManager* checkpoints,
                 const ReplicationOptions& opts);
  ~ReplicationLog();

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Bound port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Blocks until `n` followers have completed the handshake (true) or
  /// `timeout` elapses (false). Test/bench synchronization helper.
  bool wait_follower(std::size_t n, std::chrono::milliseconds timeout);

  /// Enforces the ack mode for the record at `seq`: returns once the
  /// watermark permits acknowledging it. Returns false when the wait
  /// degraded to async on timeout (sync_degraded incremented). kAsync
  /// returns true immediately.
  bool wait_acked(std::uint64_t seq);

  /// The slowest handshaken follower's durable ack mark — the journal
  /// compaction bound: records at or below it are replicated
  /// everywhere, so pruning them can never strand a connected
  /// follower's resume point. With no handshaken follower, the
  /// historical watermark (replicated_seq) is returned.
  std::uint64_t min_follower_ack() const;

  ReplicationStats stats() const;

  /// Seals the stream: stops accepting, closes every follower
  /// connection, joins all threads and drains any in-flight
  /// wait_acked()/wait_follower() callers (they return once stopping
  /// is observed, so destruction cannot race a waiter). Idempotent;
  /// the destructor calls it.
  void stop();

 private:
  struct Follower {
    int fd = -1;
    std::uint64_t acked_seq = 0;
    std::uint64_t shipped_ckpt = 0;  ///< newest checkpoint version sent
    bool ready = false;              ///< handshake complete
    bool done = false;               ///< session threads finished
    std::thread session;             ///< handshake + sender loop
    std::thread reader;              ///< ack drain
  };

  void on_commit(std::uint64_t seq, std::uint64_t bytes);
  void accept_main();
  void session_main(Follower* f);
  void reader_main(Follower* f);
  /// Ships the newest valid checkpoint newer than f->shipped_ckpt.
  /// Returns false when the connection broke.
  bool ship_checkpoints(Follower* f);
  /// Sends one encoded frame, applying any armed kReplSend fault.
  /// Returns false when the connection is (or was made) unusable.
  bool faulted_send(Follower* f, const std::string& frame,
                    bool* advanced);
  /// Newest on-disk checkpoint version whose file validates (0 = none).
  std::uint64_t newest_valid_checkpoint();

  recovery::RequestJournal& journal_;
  recovery::CheckpointManager* checkpoints_;
  ReplicationOptions opts_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t leader_seq_ = 0;
  std::uint64_t leader_bytes_ = 0;
  std::uint64_t replicated_seq_ = 0;
  std::uint64_t replicated_bytes_ = 0;
  /// (seq, file bytes after it, append time) of records not yet past
  /// the watermark — feeds the bytes/ns lag gauges only, so it is kept
  /// bounded: with no handshaken follower only the oldest entry is
  /// retained, and a deeply lagged follower gets thinned interior
  /// entries (gauges coarsen, memory stays O(kMaxPending)).
  struct Pending {
    std::uint64_t seq;
    std::uint64_t bytes;
    std::chrono::steady_clock::time_point at;
  };
  static constexpr std::size_t kMaxPending = 8192;
  std::deque<Pending> pending_;
  /// Threads currently blocked in wait_acked()/wait_follower(); stop()
  /// drains them before returning so destruction cannot race a waiter
  /// still inside cv_.wait_for on mu_/cv_.
  std::size_t waiters_ = 0;
  std::list<std::unique_ptr<Follower>> followers_;
  std::map<std::uint64_t, bool> ckpt_valid_;  ///< load_file result cache

  // Lifetime counters (under mu_).
  std::uint64_t records_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t checkpoints_shipped_ = 0;
  std::uint64_t rejected_followers_ = 0;
  std::uint64_t sync_degraded_ = 0;
  std::uint64_t dropped_sends_ = 0;
  std::uint64_t torn_sends_ = 0;
  std::uint64_t dup_sends_ = 0;
  std::uint64_t idle_resends_ = 0;
};

}  // namespace ssma::serve::replication
