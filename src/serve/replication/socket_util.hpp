// Small blocking-socket helpers shared by the replication leader and
// follower. The replication plane deliberately uses plain blocking
// sockets with one thread per peer — it carries one ordered stream per
// follower, so the epoll machinery of the client-facing front door
// (net/server.cpp) would buy nothing but complexity here.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

namespace ssma::serve::replication {

/// Connects to host:port; returns the fd or -1 (errno holds the cause).
inline int tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Writes all n bytes (retrying EINTR); false on any other error.
inline bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace ssma::serve::replication
