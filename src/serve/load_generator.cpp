#include "serve/load_generator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::serve {

namespace {

LoadReport finish_report(const LoadSpec& spec, std::size_t completed,
                         double wall_seconds,
                         const LatencyHistogram& latency) {
  LoadReport r;
  r.seed = spec.seed;
  r.completed = completed;
  r.tokens = completed * spec.rows_per_request;
  r.wall_seconds = wall_seconds;
  if (wall_seconds > 0.0) {
    r.achieved_rps = static_cast<double>(completed) / wall_seconds;
    r.tokens_per_sec = static_cast<double>(r.tokens) / wall_seconds;
  }
  r.p50_ms = latency.percentile_ns(50) * 1e-6;
  r.p95_ms = latency.percentile_ns(95) * 1e-6;
  r.p99_ms = latency.percentile_ns(99) * 1e-6;
  r.mean_ms = latency.mean_ns() * 1e-6;
  r.max_ms = latency.max_ns() * 1e-6;
  return r;
}

}  // namespace

std::string LoadReport::json() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << "{\"seed\":" << seed << ",\"completed\":" << completed
      << ",\"tokens\":" << tokens
      << ",\"wall_seconds\":" << wall_seconds
      << ",\"offered_rps\":";
  // A closed-loop run has no offered rate; null reads as "not
  // applicable" where 0.000 read as a measured zero.
  if (open_loop)
    oss << offered_rps;
  else
    oss << "null";
  oss << ",\"achieved_rps\":" << achieved_rps
      << ",\"tokens_per_sec\":" << tokens_per_sec
      << ",\"p50_ms\":" << p50_ms << ",\"p95_ms\":" << p95_ms
      << ",\"p99_ms\":" << p99_ms << ",\"mean_ms\":" << mean_ms
      << ",\"max_ms\":" << max_ms << "}";
  return oss.str();
}

LoadGenerator::LoadGenerator(const maddness::QuantizedActivations& pool,
                             const LoadSpec& spec)
    : pool_(pool), spec_(spec) {
  SSMA_CHECK(pool.rows >= 1);
  SSMA_CHECK(spec.total_requests >= 1);
  SSMA_CHECK(spec.rows_per_request >= 1);
}

std::size_t LoadGenerator::first_row(std::uint64_t id) const {
  return static_cast<std::size_t>(id * spec_.rows_per_request) %
         pool_.rows;
}

const std::string& LoadGenerator::model_ref(std::uint64_t id) const {
  static const std::string kNone;
  if (spec_.model_refs.empty()) return kNone;
  return spec_.model_refs[static_cast<std::size_t>(
      id % spec_.model_refs.size())];
}

std::vector<std::uint8_t> LoadGenerator::request_codes(
    std::uint64_t id) const {
  std::vector<std::uint8_t> codes;
  codes.reserve(spec_.rows_per_request * pool_.cols);
  std::size_t row = first_row(id);
  for (std::size_t r = 0; r < spec_.rows_per_request; ++r) {
    codes.insert(codes.end(), pool_.row(row), pool_.row(row) + pool_.cols);
    row = (row + 1) % pool_.rows;
  }
  return codes;
}

LoadReport LoadGenerator::run_open_loop(InferenceServer& server,
                                        double requests_per_sec) {
  SSMA_CHECK(requests_per_sec > 0.0);
  Rng rng(spec_.seed);

  // Pre-draw the Poisson arrival offsets (exponential gaps).
  std::vector<double> arrival_s(spec_.total_requests);
  double t = 0.0;
  for (std::size_t i = 0; i < spec_.total_requests; ++i) {
    t += -std::log(1.0 - rng.next_double()) / requests_per_sec;
    arrival_s[i] = t;
  }

  struct Pending {
    std::future<InferenceResult> fut;
    Clock::time_point intended;
  };
  std::vector<Pending> pending;
  pending.reserve(spec_.total_requests);

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < spec_.total_requests; ++i) {
    const Clock::time_point at =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    std::this_thread::sleep_until(at);
    // submit() may block on a full queue: that delay is part of the
    // latency the open-loop client observes.
    const std::string& ref = model_ref(i);
    pending.push_back(
        {ref.empty()
             ? server.submit(request_codes(i), spec_.rows_per_request)
             : server.submit(ref, request_codes(i),
                             spec_.rows_per_request),
         at});
  }

  LatencyHistogram latency;
  Clock::time_point last_done = start;
  std::size_t completed = 0;
  for (Pending& p : pending) {
    try {
      const InferenceResult res = p.fut.get();
      latency.add(std::chrono::duration<double, std::nano>(
                      res.completed_at - p.intended)
                      .count());
      last_done = std::max(last_done, res.completed_at);
      completed++;
    } catch (const std::exception&) {
      // Server shut down under us: the request was rejected, not served.
    }
  }

  LoadReport r = finish_report(
      spec_, completed,
      std::chrono::duration<double>(last_done - start).count(), latency);
  r.open_loop = true;
  r.offered_rps = requests_per_sec;
  return r;
}

LoadReport LoadGenerator::run_closed_loop(InferenceServer& server,
                                          int concurrency) {
  SSMA_CHECK(concurrency >= 1);
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::vector<LatencyHistogram> per_client(
      static_cast<std::size_t>(concurrency));

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const std::uint64_t id =
            next.fetch_add(1, std::memory_order_relaxed);
        if (id >= spec_.total_requests) break;
        const Clock::time_point t0 = Clock::now();
        try {
          const std::string& ref = model_ref(id);
          std::future<InferenceResult> fut =
              ref.empty() ? server.submit(request_codes(id),
                                          spec_.rows_per_request)
                          : server.submit(ref, request_codes(id),
                                          spec_.rows_per_request);
          const InferenceResult res = fut.get();
          per_client[static_cast<std::size_t>(c)].add(
              std::chrono::duration<double, std::nano>(res.completed_at -
                                                       t0)
                  .count());
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          // Server shut down under us: stop this client, don't abort
          // the process from an uncaught thread exception.
          break;
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyHistogram latency;
  for (const LatencyHistogram& h : per_client) latency.merge(h);
  return finish_report(spec_, completed.load(), wall, latency);
}

}  // namespace ssma::serve
