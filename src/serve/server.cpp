#include "serve/server.hpp"

#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/pipeline.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/replication/replication.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::serve {

namespace {

/// Folds the deprecated v1 ServerOptions shim fields into the engine
/// options: a shim left at its default defers to `opts.engine`.
engine::EngineOptions resolved_engine_options(const ServerOptions& opts) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  engine::EngineOptions eo = opts.engine;
  if (opts.mode != engine::Backend::kKernel) eo.backend = opts.mode;
  if (opts.device_ns_per_token != 0.0)
    eo.device_ns_per_token = opts.device_ns_per_token;
  const core::AcceleratorOptions dflt;
  const core::AcceleratorOptions& a = opts.accel;
  if (a.ndec != dflt.ndec || a.ns != dflt.ns ||
      a.op.vdd != dflt.op.vdd || a.op.corner != dflt.op.corner ||
      a.op.temp_c != dflt.op.temp_c)
    eo.accel = a;
  return eo;
#pragma GCC diagnostic pop
}

std::shared_ptr<engine::ModelRegistry> registry_with_default(
    const maddness::Amm& amm) {
  auto registry = std::make_shared<engine::ModelRegistry>();
  registry->register_model(engine::ModelRegistry::kDefaultModel, amm);
  return registry;
}

}  // namespace

InferenceServer::InferenceServer(const ServerOptions& opts)
    : InferenceServer(std::make_shared<engine::ModelRegistry>(), opts) {}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
InferenceServer::InferenceServer(const maddness::Amm& amm,
                                 const ServerOptions& opts)
    : InferenceServer(registry_with_default(amm), opts) {}
#pragma GCC diagnostic pop

InferenceServer::InferenceServer(
    std::shared_ptr<engine::ModelRegistry> registry,
    const ServerOptions& opts, std::uint64_t first_request_id)
    : registry_(std::move(registry)),
      next_id_(first_request_id),
      recovery_(opts.recovery) {
  SSMA_CHECK(opts.num_workers >= 1);
  SSMA_CHECK(registry_ != nullptr);
  queue_ = std::make_unique<RequestQueue>(opts.queue_capacity);
  queue_->set_fault_injector(recovery_.fault);

  WorkerPoolOptions wopts;
  wopts.num_workers = opts.num_workers;
  wopts.engine = resolved_engine_options(opts);
  wopts.batcher = opts.batcher;
  wopts.fault = recovery_.fault;
  wopts.journal = recovery_.journal;
  wopts.replication = recovery_.replication;
  wopts.supervise = recovery_.supervise;
  wopts.max_respawns_per_shard = recovery_.max_respawns_per_shard;
  pool_ = std::make_unique<WorkerPool>(*queue_, metrics_, wopts);
  metrics_.mark_start();
  // Startup checkpoint: guarantees the restore path always has a
  // version to rebuild the registry from (even an empty one — new
  // models checkpoint again at registration).
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  pool_->start();
}

InferenceServer::~InferenceServer() { shutdown(); }

std::unique_ptr<InferenceServer> InferenceServer::restore(
    const recovery::RecoveredState& rs, const ServerOptions& opts) {
  SSMA_CHECK_MSG(rs.has_checkpoint(),
                 "restore needs a valid checkpoint (the server writes "
                 "one at startup — was the checkpoint dir lost?)");
  auto registry = std::make_shared<engine::ModelRegistry>();
  if (rs.checkpoint.is_v1()) {
    // v1 record: one anonymous operator — adopt it as the implicitly
    // named default model, version 1.
    if (!rs.checkpoint.amm_blob.empty())
      registry->install(engine::ModelHandle::from_blob(
          engine::ModelRegistry::kDefaultModel, 1,
          rs.checkpoint.amm_blob));
  } else {
    std::istringstream is(rs.checkpoint.registry_blob);
    registry->load(is);
  }
  auto server = std::make_unique<InferenceServer>(
      std::move(registry), opts, rs.next_request_id);
  server->accepted_.store(rs.checkpoint.accepted_requests,
                          std::memory_order_relaxed);
  server->metrics_.restore(rs.checkpoint.completed_requests,
                           rs.checkpoint.tokens, rs.checkpoint.batches);
  // The constructor's startup checkpoint ran before the counters above
  // were installed; write another so the newest version on disk carries
  // the recovered lifetime totals, not zeros.
  server->maybe_checkpoint(rs.checkpoint.accepted_requests,
                           /*force=*/true);
  return server;
}

std::uint64_t InferenceServer::register_model(const std::string& name,
                                              const maddness::Amm& amm) {
  return register_model(name, amm.save_string());
}

std::uint64_t InferenceServer::register_model(const std::string& name,
                                              std::string blob) {
  SSMA_TRACE_SPAN(kSwap);
  // Stage -> checkpoint -> publish -> checkpoint. The first checkpoint
  // makes the bank durable before "@latest" traffic can pin (and
  // journal) it, so replay after a crash always finds what a record
  // references; the second makes the newest on-disk record carry the
  // bumped latest pointer, so a restore after a completed swap resolves
  // "@latest" to the new version. A crash between the two restores the
  // old latest with the new version still explicitly resolvable — the
  // swap simply didn't commit.
  const std::uint64_t version =
      registry_->register_model(name, std::move(blob), /*publish=*/false);
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  registry_->publish(name, version);
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  return version;
}

std::uint64_t InferenceServer::stage_model(const std::string& name,
                                           std::string blob) {
  const std::uint64_t version =
      registry_->register_model(name, std::move(blob), /*publish=*/false);
  // Durable (and replicated, via checkpoint shipping) before any shadow
  // batch can reference the staged bank — same invariant as the first
  // half of register_model's stage->checkpoint->publish->checkpoint.
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  return version;
}

void InferenceServer::promote_model(const std::string& name,
                                    std::uint64_t version) {
  SSMA_TRACE_SPAN(kSwap);
  registry_->publish(name, version);
  // The promotion decision is a durability event: force a checkpoint so
  // the bumped latest pointer survives a crash and replicates through
  // the checkpoint-shipping stream.
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
}

void InferenceServer::discard_model(const std::string& name,
                                    std::uint64_t version) {
  registry_->discard_staged(name, version);
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
}

std::uint64_t InferenceServer::register_pipeline(
    const std::string& name,
    const std::vector<const maddness::Amm*>& stages) {
  return register_model(name, engine::pipeline_blob(stages));
}

void InferenceServer::retire_model(const std::string& name,
                                   std::uint64_t version) {
  registry_->retire(name, version);
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
}

void InferenceServer::maybe_checkpoint(std::uint64_t accepted,
                                       bool force) {
  if (!recovery_.checkpoints) return;
  if (!force && (recovery_.checkpoint_every == 0 ||
                 accepted % recovery_.checkpoint_every != 0))
    return;
  SSMA_TRACE_SPAN(kCheckpoint);
  const MetricsSnapshot snap = metrics_.snapshot();
  recovery::CheckpointState st;
  std::ostringstream blob;
  registry_->save(blob);
  st.registry_blob = blob.str();
  st.next_request_id = next_id_.load(std::memory_order_relaxed);
  st.accepted_requests = accepted;
  st.completed_requests = snap.requests;
  st.tokens = snap.tokens;
  st.batches = snap.batches;
  recovery_.checkpoints->write(st);
}

std::future<InferenceResult> InferenceServer::submit_with_id(
    std::uint64_t id, engine::ModelRef model,
    std::vector<std::uint8_t> codes, std::size_t rows,
    bool journal_accept, SubmitExtras extras) {
  SSMA_CHECK(rows >= 1);
  SSMA_CHECK(model != nullptr);
  SSMA_CHECK_MSG(codes.size() == rows * model->cols(),
                 "submit payload must be rows x model cols ("
                     << model->ref() << " expects " << model->cols()
                     << " cols)");
  SSMA_TRACE_SPAN_IDS(kAdmit, id, id);

  // The request is built before any admission check so every rejection
  // path resolves through req.fail() — on_done always fires exactly
  // once, which is what lets the network layer promise "no lost acks".
  InferenceRequest req;
  req.id = id;
  req.rows = rows;
  req.codes = std::move(codes);
  req.model = std::move(model);
  req.priority = extras.priority;
  req.deadline = extras.deadline;
  req.tenant = std::move(extras.tenant);
  req.on_done = std::move(extras.on_done);
  std::future<InferenceResult> fut = req.result.get_future();

  const auto reject = [&](RejectReason reason,
                          const std::string& why) {
    metrics_.record_reject(reason);
    req.fail(reason == RejectReason::kShutdown
                 ? std::make_exception_ptr(ShutdownError(why))
                 : std::make_exception_ptr(RejectedError(reason, why)));
    return std::move(fut);
  };

  // Typed rejection instead of journaling into (or blocking on) a
  // queue that is being torn down. A submit that races shutdown() past
  // this check is still safe: the closed queue refuses the push below.
  if (draining_.load(std::memory_order_acquire))
    return reject(RejectReason::kShutdown,
                  "InferenceServer is shut down");
  // Dead on arrival: refuse before the journal sees it — a replay
  // would re-serve a request whose caller stopped waiting long ago.
  if (req.deadline <= Clock::now())
    return reject(RejectReason::kDeadlineExpired,
                  "request deadline expired before admission");
  // Write-ahead: the accept record lands before the request can be
  // served, so a crash anywhere downstream can replay it — on exactly
  // the (name, version) pinned here.
  if (journal_accept && recovery_.journal) {
    const auto t0 = Clock::now();
    {
      SSMA_TRACE_SPAN_IDS(kJournalAppend, id, id);
      // The record's sequence number rides on the request: the worker
      // ack path gates on it when replication enforces sync/window
      // acked-write semantics.
      req.wal_seq = recovery_.journal->append_accepted(
          id, req.model->name(), req.model->version(), rows, req.codes);
    }
    metrics_.record_journal_append(
        std::chrono::duration<double, std::nano>(Clock::now() - t0)
            .count());
  }

  req.enqueued_at = Clock::now();

  if (recovery_.fault) {
    const recovery::FaultAction act =
        recovery_.fault->poll(recovery::FaultSite::kEnqueue);
    if (act.kind == recovery::FaultKind::kDelay) {
      std::this_thread::sleep_for(act.delay);
    } else if (act.kind != recovery::FaultKind::kNone) {
      // Simulated crash between accept and enqueue: the request is in
      // the journal but never reaches a worker. Recovery replays it.
      req.fail(std::make_exception_ptr(std::runtime_error(
          "injected fault: request accepted but lost before enqueue")));
      return fut;
    }
  }

  if (extras.nonblocking) {
    if (!queue_->try_push(std::move(req))) {
      // try_push does not consume on failure; distinguish closed from
      // full for the typed reason (a close racing in after the check
      // still reads as full — both mean "back off", so that is fine).
      return queue_->closed()
                 ? reject(RejectReason::kShutdown,
                          "InferenceServer is shut down")
                 : reject(RejectReason::kQueueFull,
                          "admission queue is full");
    }
  } else if (!queue_->push(std::move(req))) {
    // Closed: the request was not consumed, fail its future here.
    return reject(RejectReason::kShutdown,
                  "InferenceServer is shut down");
  }
  // Cadence decides on this submit's own count (not a re-load, which
  // concurrent submits could race past the multiple).
  const std::uint64_t accepted =
      accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
  maybe_checkpoint(accepted, /*force=*/false);
  return fut;
}

std::future<InferenceResult> InferenceServer::submit(
    engine::ModelRef model, std::vector<std::uint8_t> codes,
    std::size_t rows) {
  return submit(std::move(model), std::move(codes), rows,
                SubmitExtras{});
}

std::future<InferenceResult> InferenceServer::submit(
    engine::ModelRef model, std::vector<std::uint8_t> codes,
    std::size_t rows, SubmitExtras extras) {
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  return submit_with_id(id, std::move(model), std::move(codes), rows,
                        /*journal_accept=*/true, std::move(extras));
}

std::future<InferenceResult> InferenceServer::submit(
    const std::string& model_ref, std::vector<std::uint8_t> codes,
    std::size_t rows) {
  return submit(registry_->resolve(model_ref), std::move(codes), rows);
}

std::future<InferenceResult> InferenceServer::submit(
    std::vector<std::uint8_t> codes, std::size_t rows) {
  return submit(registry_->resolve(engine::ModelRegistry::kDefaultModel,
                                   0),
                std::move(codes), rows);
}

std::vector<std::future<InferenceResult>> InferenceServer::submit_batch(
    const std::string& model_ref,
    const maddness::QuantizedActivations& q,
    std::size_t rows_per_request) {
  SSMA_CHECK(rows_per_request >= 1);
  const engine::ModelRef model = registry_->resolve(model_ref);
  SSMA_CHECK_MSG(q.cols == model->cols(), "activation width mismatch");
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < q.rows; r += rows_per_request) {
    const std::size_t n = std::min(rows_per_request, q.rows - r);
    std::vector<std::uint8_t> codes(q.row(r), q.row(r) + n * q.cols);
    futures.push_back(submit(model, std::move(codes), n));
  }
  return futures;
}

std::vector<std::future<InferenceResult>> InferenceServer::submit_batch(
    const maddness::QuantizedActivations& q,
    std::size_t rows_per_request) {
  return submit_batch(engine::ModelRegistry::kDefaultModel, q,
                      rows_per_request);
}

std::vector<std::future<InferenceResult>> InferenceServer::replay(
    const std::vector<recovery::AcceptedRecord>& requests) {
  SSMA_TRACE_SPAN(kReplay);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(requests.size());
  for (const recovery::AcceptedRecord& rec : requests) {
    // v1-era records carry no model tag: they predate the registry and
    // can only mean the implicitly-named default model.
    const std::string& name = rec.model.empty()
                                  ? engine::ModelRegistry::kDefaultModel
                                  : rec.model;
    engine::ModelRef model =
        registry_->try_resolve(name, rec.model_version);
    if (!model) {
      std::promise<InferenceResult> p;
      std::ostringstream oss;
      oss << "replay: journaled request " << rec.id << " pinned model "
          << name << "@" << rec.model_version
          << " which the restored registry does not contain";
      p.set_exception(std::make_exception_ptr(CheckError(oss.str())));
      futures.push_back(p.get_future());
      continue;
    }
    // Already journaled by the crashed run — no second accept record.
    futures.push_back(submit_with_id(rec.id, std::move(model), rec.codes,
                                     rec.rows,
                                     /*journal_accept=*/false,
                                     SubmitExtras{}));
  }
  return futures;
}

void InferenceServer::shutdown() {
  if (shut_down_) return;
  draining_.store(true, std::memory_order_release);
  queue_->close();
  pool_->join();
  // Shards are gone; anything still queued (possible when shards died
  // unsupervised) can never be served — fail those futures loudly.
  InferenceRequest leftover;
  while (queue_->pop_wait(&leftover) == PopStatus::kOk)
    leftover.fail(std::make_exception_ptr(
        std::runtime_error("server shut down with the request still "
                           "queued (crashed shards?); replay the journal "
                           "to recover")));
  metrics_.mark_stop();
  shut_down_ = true;
}

void InferenceServer::attach_recovery(
    recovery::RequestJournal* journal,
    recovery::CheckpointManager* checkpoints,
    std::size_t checkpoint_every) {
  recovery_.journal = journal;
  recovery_.checkpoints = checkpoints;
  recovery_.checkpoint_every = checkpoint_every;
  pool_->set_journal(journal);
  // First checkpoint under new ownership: the promoted leader's newest
  // on-disk version carries its current registry and counters.
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
}

void InferenceServer::ensure_id_watermark(std::uint64_t min_next_id) {
  std::uint64_t cur = next_id_.load(std::memory_order_relaxed);
  while (cur < min_next_id &&
         !next_id_.compare_exchange_weak(cur, min_next_id,
                                         std::memory_order_relaxed)) {
  }
}

void InferenceServer::set_replication(replication::ReplicationLog* repl) {
  recovery_.replication = repl;
  pool_->set_replication(repl);
}

void InferenceServer::note_promotion(std::uint64_t applied_records,
                                     double apply_rate_hz) {
  promotion_.promoted = true;
  promotion_.applied = applied_records;
  promotion_.apply_rate_hz = apply_rate_hz;
}

std::uint64_t InferenceServer::compact_journal() {
  // A checkpoint is required: the pruned records' accepted/completed
  // counters live on only through the checkpoint state a restore reads.
  if (!recovery_.journal || !recovery_.checkpoints) return 0;
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  // Never compact past the slowest connected follower's ack mark — its
  // resume point must stay servable byte-exact.
  const std::uint64_t bound =
      recovery_.replication ? recovery_.replication->min_follower_ack()
                            : ~std::uint64_t{0};
  return recovery_.journal->compact(bound);
}

void InferenceServer::set_batch_observer(BatchObserver* observer) {
  pool_->set_observer(observer);
}

std::string InferenceServer::render_prometheus() const {
  PromGauges g;
  g.queue_depth = queue_->size();
  g.queue_capacity = queue_->capacity();
  g.workers = static_cast<std::size_t>(pool_->num_workers());
  g.worker_respawns = static_cast<std::size_t>(pool_->respawn_count());
  g.trace_enabled = telemetry::TraceSession::instance().enabled();
  if (recovery_.replication) {
    const replication::ReplicationStats rs =
        recovery_.replication->stats();
    g.repl_role = 1;  // streaming leader
    g.repl_leader_seq = rs.leader_seq;
    g.repl_replicated_seq = rs.replicated_seq;
    g.repl_followers = rs.followers;
    g.repl_lag_records = rs.lag_records;
    g.repl_lag_bytes = rs.lag_bytes;
    g.repl_lag_seconds = rs.lag_ns / 1e9;
    g.repl_checkpoints_shipped = rs.checkpoints_shipped;
    g.repl_sync_degraded = rs.sync_degraded;
  } else if (promotion_.promoted) {
    g.repl_role = 2;  // promoted follower
    g.repl_applied_records = promotion_.applied;
    g.repl_apply_rate_hz = promotion_.apply_rate_hz;
  }
  return metrics_.render_prometheus(g);
}

core::PpaReport InferenceServer::aggregate_report() const {
  SSMA_CHECK_MSG(shut_down_, "aggregate_report requires shutdown()");
  return pool_->aggregate_report();
}

const std::vector<std::size_t>& InferenceServer::shard_tokens() const {
  SSMA_CHECK_MSG(shut_down_, "shard_tokens requires shutdown()");
  return pool_->shard_tokens();
}

}  // namespace ssma::serve
