#include "serve/server.hpp"

#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "util/check.hpp"

namespace ssma::serve {

namespace {

std::string serialize_amm(const maddness::Amm& amm) {
  std::ostringstream blob;
  amm.save(blob);
  return blob.str();
}

}  // namespace

InferenceServer::InferenceServer(const maddness::Amm& amm,
                                 const ServerOptions& opts)
    : InferenceServer(serialize_amm(amm), opts, 0) {}

InferenceServer::InferenceServer(std::string amm_blob,
                                 const ServerOptions& opts,
                                 std::uint64_t first_request_id)
    : amm_blob_(std::move(amm_blob)),
      next_id_(first_request_id),
      recovery_(opts.recovery) {
  SSMA_CHECK(opts.num_workers >= 1);
  std::istringstream is(amm_blob_);
  const maddness::Amm amm = maddness::Amm::load(is);
  cols_ = static_cast<std::size_t>(amm.cfg().total_dims());
  nout_ = static_cast<std::size_t>(amm.lut().nout);
  plan_ = core::plan_tiles(amm.cfg().ncodebooks, static_cast<int>(nout_),
                           opts.accel.ns, opts.accel.ndec);
  queue_ = std::make_unique<RequestQueue>(opts.queue_capacity);
  queue_->set_fault_injector(recovery_.fault);

  WorkerPoolOptions wopts;
  wopts.num_workers = opts.num_workers;
  wopts.mode = opts.mode;
  wopts.accel = opts.accel;
  wopts.batcher = opts.batcher;
  wopts.device_ns_per_token = opts.device_ns_per_token;
  wopts.fault = recovery_.fault;
  wopts.journal = recovery_.journal;
  wopts.checkpoints = recovery_.checkpoints;
  wopts.supervise = recovery_.supervise;
  wopts.max_respawns_per_shard = recovery_.max_respawns_per_shard;
  pool_ = std::make_unique<WorkerPool>(amm_blob_, *queue_, metrics_,
                                       wopts);
  metrics_.mark_start();
  // Startup checkpoint: guarantees the respawn and restore paths always
  // have a version to program shards from.
  maybe_checkpoint(accepted_.load(std::memory_order_relaxed),
                   /*force=*/true);
  pool_->start();
}

InferenceServer::~InferenceServer() { shutdown(); }

std::unique_ptr<InferenceServer> InferenceServer::restore(
    const recovery::RecoveredState& rs, const ServerOptions& opts) {
  SSMA_CHECK_MSG(rs.has_checkpoint(),
                 "restore needs a valid checkpoint (the server writes "
                 "one at startup — was the checkpoint dir lost?)");
  auto server = std::make_unique<InferenceServer>(
      rs.checkpoint.amm_blob, opts, rs.next_request_id);
  server->accepted_.store(rs.checkpoint.accepted_requests,
                          std::memory_order_relaxed);
  server->metrics_.restore(rs.checkpoint.completed_requests,
                           rs.checkpoint.tokens, rs.checkpoint.batches);
  // The constructor's startup checkpoint ran before the counters above
  // were installed; write another so the newest version on disk carries
  // the recovered lifetime totals, not zeros.
  server->maybe_checkpoint(rs.checkpoint.accepted_requests,
                           /*force=*/true);
  return server;
}

void InferenceServer::maybe_checkpoint(std::uint64_t accepted,
                                       bool force) {
  if (!recovery_.checkpoints) return;
  if (!force && (recovery_.checkpoint_every == 0 ||
                 accepted % recovery_.checkpoint_every != 0))
    return;
  const MetricsSnapshot snap = metrics_.snapshot();
  recovery::CheckpointState st;
  st.amm_blob = amm_blob_;
  st.next_request_id = next_id_.load(std::memory_order_relaxed);
  st.accepted_requests = accepted;
  st.completed_requests = snap.requests;
  st.tokens = snap.tokens;
  st.batches = snap.batches;
  recovery_.checkpoints->write(st);
}

std::future<InferenceResult> InferenceServer::submit_with_id(
    std::uint64_t id, std::vector<std::uint8_t> codes, std::size_t rows,
    bool journal_accept) {
  SSMA_CHECK(rows >= 1);
  SSMA_CHECK_MSG(codes.size() == rows * cols_,
                 "submit payload must be rows x cols()");
  // Write-ahead: the accept record lands before the request can be
  // served, so a crash anywhere downstream can replay it.
  if (journal_accept && recovery_.journal)
    recovery_.journal->append_accepted(id, rows, codes);

  InferenceRequest req;
  req.id = id;
  req.rows = rows;
  req.codes = std::move(codes);
  req.enqueued_at = Clock::now();
  std::future<InferenceResult> fut = req.result.get_future();

  if (recovery_.fault) {
    const recovery::FaultAction act =
        recovery_.fault->poll(recovery::FaultSite::kEnqueue);
    if (act.kind == recovery::FaultKind::kDelay) {
      std::this_thread::sleep_for(act.delay);
    } else if (act.kind != recovery::FaultKind::kNone) {
      // Simulated crash between accept and enqueue: the request is in
      // the journal but never reaches a worker. Recovery replays it.
      req.result.set_exception(std::make_exception_ptr(std::runtime_error(
          "injected fault: request accepted but lost before enqueue")));
      return fut;
    }
  }

  if (!queue_->push(std::move(req))) {
    // Closed: the request was not consumed, fail its future here.
    req.result.set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceServer is shut down")));
    return fut;
  }
  // Cadence decides on this submit's own count (not a re-load, which
  // concurrent submits could race past the multiple).
  const std::uint64_t accepted =
      accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
  maybe_checkpoint(accepted, /*force=*/false);
  return fut;
}

std::future<InferenceResult> InferenceServer::submit(
    std::vector<std::uint8_t> codes, std::size_t rows) {
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  return submit_with_id(id, std::move(codes), rows,
                        /*journal_accept=*/true);
}

std::vector<std::future<InferenceResult>> InferenceServer::submit_batch(
    const maddness::QuantizedActivations& q,
    std::size_t rows_per_request) {
  SSMA_CHECK(rows_per_request >= 1);
  SSMA_CHECK_MSG(q.cols == cols_, "activation width mismatch");
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < q.rows; r += rows_per_request) {
    const std::size_t n = std::min(rows_per_request, q.rows - r);
    std::vector<std::uint8_t> codes(q.row(r), q.row(r) + n * cols_);
    futures.push_back(submit(std::move(codes), n));
  }
  return futures;
}

std::vector<std::future<InferenceResult>> InferenceServer::replay(
    const std::vector<recovery::AcceptedRecord>& requests) {
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(requests.size());
  for (const recovery::AcceptedRecord& rec : requests)
    // Already journaled by the crashed run — no second accept record.
    futures.push_back(submit_with_id(rec.id, rec.codes, rec.rows,
                                     /*journal_accept=*/false));
  return futures;
}

void InferenceServer::shutdown() {
  if (shut_down_) return;
  queue_->close();
  pool_->join();
  // Shards are gone; anything still queued (possible when shards died
  // unsupervised) can never be served — fail those futures loudly.
  InferenceRequest leftover;
  while (queue_->pop_wait(&leftover) == PopStatus::kOk)
    leftover.result.set_exception(std::make_exception_ptr(
        std::runtime_error("server shut down with the request still "
                           "queued (crashed shards?); replay the journal "
                           "to recover")));
  metrics_.mark_stop();
  shut_down_ = true;
}

core::PpaReport InferenceServer::aggregate_report() const {
  SSMA_CHECK_MSG(shut_down_, "aggregate_report requires shutdown()");
  return pool_->aggregate_report();
}

const std::vector<std::size_t>& InferenceServer::shard_tokens() const {
  SSMA_CHECK_MSG(shut_down_, "shard_tokens requires shutdown()");
  return pool_->shard_tokens();
}

}  // namespace ssma::serve
