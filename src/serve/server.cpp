#include "serve/server.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace ssma::serve {

InferenceServer::InferenceServer(const maddness::Amm& amm,
                                 const ServerOptions& opts) {
  SSMA_CHECK(opts.num_workers >= 1);
  cols_ = static_cast<std::size_t>(amm.cfg().total_dims());
  nout_ = static_cast<std::size_t>(amm.lut().nout);
  plan_ = core::plan_tiles(amm.cfg().ncodebooks, static_cast<int>(nout_),
                           opts.accel.ns, opts.accel.ndec);
  queue_ = std::make_unique<RequestQueue>(opts.queue_capacity);

  std::ostringstream blob;
  amm.save(blob);
  WorkerPoolOptions wopts;
  wopts.num_workers = opts.num_workers;
  wopts.mode = opts.mode;
  wopts.accel = opts.accel;
  wopts.batcher = opts.batcher;
  wopts.device_ns_per_token = opts.device_ns_per_token;
  pool_ = std::make_unique<WorkerPool>(blob.str(), *queue_, metrics_,
                                       wopts);
  metrics_.mark_start();
  pool_->start();
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(
    std::vector<std::uint8_t> codes, std::size_t rows) {
  SSMA_CHECK(rows >= 1);
  SSMA_CHECK_MSG(codes.size() == rows * cols_,
                 "submit payload must be rows x cols()");
  InferenceRequest req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.rows = rows;
  req.codes = std::move(codes);
  req.enqueued_at = Clock::now();
  std::future<InferenceResult> fut = req.result.get_future();
  if (!queue_->push(std::move(req))) {
    // Closed: the request was not consumed, fail its future here.
    req.result.set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceServer is shut down")));
  }
  return fut;
}

std::vector<std::future<InferenceResult>> InferenceServer::submit_batch(
    const maddness::QuantizedActivations& q,
    std::size_t rows_per_request) {
  SSMA_CHECK(rows_per_request >= 1);
  SSMA_CHECK_MSG(q.cols == cols_, "activation width mismatch");
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < q.rows; r += rows_per_request) {
    const std::size_t n = std::min(rows_per_request, q.rows - r);
    std::vector<std::uint8_t> codes(q.row(r), q.row(r) + n * cols_);
    futures.push_back(submit(std::move(codes), n));
  }
  return futures;
}

void InferenceServer::shutdown() {
  if (shut_down_) return;
  queue_->close();
  pool_->join();
  metrics_.mark_stop();
  shut_down_ = true;
}

core::PpaReport InferenceServer::aggregate_report() const {
  SSMA_CHECK_MSG(shut_down_, "aggregate_report requires shutdown()");
  return pool_->aggregate_report();
}

const std::vector<std::size_t>& InferenceServer::shard_tokens() const {
  SSMA_CHECK_MSG(shut_down_, "shard_tokens requires shutdown()");
  return pool_->shard_tokens();
}

}  // namespace ssma::serve
