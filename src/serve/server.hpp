// InferenceServer — the public facade of the serving runtime, v2: a
// versioned multi-model registry fronting a backend-pluggable engine
// pool. Clients register models (hot, under load), then submit
// quantized activation rows against a model ref; futures resolve to
// int16 outputs bit-exact vs the model's reference decode.
//
//   InferenceServer server(opts);                  // spawns workers
//   server.register_model("embed", amm);           // -> version 1
//   auto fut = server.submit("embed@latest", codes, rows);
//   InferenceResult r = fut.get();                 // r.model_version == 1
//   server.register_model("embed", retrained);     // -> v2, zero downtime
//   server.shutdown();                             // drain + join
//
// Hot-swap semantics: submit() pins the resolved ModelHandle into the
// request, so registering a new version never changes what an admitted
// request computes — in-flight batches finish on the old bank (kept
// alive by the shared_ptr pin), later submits resolve the new one.
//
// With ServerOptions::recovery wired up, the server write-ahead-journals
// every accepted request (tagged with its pinned name@version),
// snapshots the whole registry into versioned CRC-checked checkpoints,
// supervises crashed worker shards back to life, and — after a hard
// crash — restores from the latest checkpoint and replays the journal's
// unacknowledged requests bit-exactly, each on the exact bank version
// it originally pinned:
//
//   auto rs = recovery::recover_state(ckpts, journal_path);
//   auto server = InferenceServer::restore(rs, opts);
//   auto futs = server->replay(rs.journal.unacknowledged);
//
// v1 compatibility: the one-model constructor still compiles (it
// registers its operator as "default" version 1 and the model-less
// submit() resolves "default@latest"); ServerOptions keeps deprecated
// mode/accel/device_ns_per_token shims that fold into `engine`.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ppa_report.hpp"
#include "engine/execution_engine.hpp"
#include "engine/model_registry.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/worker_pool.hpp"

namespace ssma::serve {

namespace recovery {
struct AcceptedRecord;
class CheckpointManager;
struct RecoveredState;
}  // namespace recovery

namespace replication {
class ReplicationLog;
}  // namespace replication

/// What a future holds when a request is refused because the server is
/// draining or shut down — a typed, immediate rejection, never a hang.
/// Now a RejectedError (reason() == kShutdown); kept as a distinct type
/// so pre-admission catch sites keep compiling.
class ShutdownError : public RejectedError {
 public:
  explicit ShutdownError(const std::string& what)
      : RejectedError(RejectReason::kShutdown, what) {}
};

/// Optional per-request admission context for submit(). The plain
/// overloads are equivalent to passing a default-constructed one.
struct SubmitExtras {
  Priority priority = Priority::kNormal;
  /// Absolute SLO deadline; max() = none. An already-expired deadline
  /// is refused at submit (kDeadlineExpired) before it can be journaled.
  Clock::time_point deadline = Clock::time_point::max();
  /// Admission identity (metrics attribution; the admission controller
  /// rate-limits by this upstream of submit()).
  std::string tenant;
  /// When true, a full queue is a typed kQueueFull rejection instead of
  /// blocking the caller — the network event loop must never park in
  /// submit().
  bool nonblocking = false;
  /// Completion hook copied onto the request; see
  /// InferenceRequest::on_done. Fires for rejections too.
  std::function<void(const InferenceResult*, const std::exception_ptr&)>
      on_done;
};

/// Fault-tolerance wiring. All pointers are borrowed (not owned) and
/// must outlive the server.
struct RecoveryOptions {
  /// Write-ahead journal: accept records before enqueue, ack records
  /// after fulfillment.
  recovery::RequestJournal* journal = nullptr;
  /// Checkpoint store; the server writes a version at startup and on
  /// every model registration so a crash at any later point can
  /// restore every bank a journaled request may reference.
  recovery::CheckpointManager* checkpoints = nullptr;
  /// Snapshot cadence: a checkpoint every N accepted requests
  /// (0 = only the startup/registration checkpoints).
  std::size_t checkpoint_every = 0;
  /// Deterministic fault hook, threaded through admission, the queue,
  /// the worker pool, and checkpoint writes.
  recovery::FaultInjector* fault = nullptr;
  /// Leader-side replication endpoint (journal streaming + checkpoint
  /// shipping). When set, the worker ack path enforces its ack mode:
  /// a response is not acknowledged until the request's journal record
  /// is replicated past the configured watermark (sync/window), making
  /// follower promotion zero-RPO for acked writes.
  replication::ReplicationLog* replication = nullptr;
  /// Supervise shards: respawn crashed workers and requeue their
  /// in-flight batch.
  bool supervise = false;
  int max_respawns_per_shard = 3;
};

// The implicitly-defined ctors/assignments touch the deprecated shim
// members; only direct field access at call sites should warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct ServerOptions {
  int num_workers = 4;
  std::size_t queue_capacity = 1024;  ///< requests; push blocks when full
  BatcherOptions batcher;
  /// Backend + macro shape + pacing for every shard's private engine.
  engine::EngineOptions engine;
  RecoveryOptions recovery;

  // --- v1 compatibility shims. These fold into `engine` at server
  // construction (a non-default shim value wins over the corresponding
  // `engine` field); new code sets `engine` directly. ---
  [[deprecated("use engine.backend")]] engine::Backend mode =
      engine::Backend::kKernel;
  [[deprecated("use engine.accel")]] core::AcceleratorOptions accel;
  [[deprecated(
      "use engine.device_ns_per_token")]] double device_ns_per_token = 0.0;
};
#pragma GCC diagnostic pop

class InferenceServer {
 public:
  /// Starts the worker pool over an empty registry; register models
  /// before (or while) submitting against them.
  explicit InferenceServer(const ServerOptions& opts);
  /// Starts over an existing registry (shared with other owners; e.g.
  /// pre-populated offline or shared across servers).
  /// `first_request_id` seeds the admission watermark — restore() passes
  /// the recovered one so even the constructor's startup checkpoint
  /// carries it.
  InferenceServer(std::shared_ptr<engine::ModelRegistry> registry,
                  const ServerOptions& opts,
                  std::uint64_t first_request_id = 0);
  /// v1 shim: registers `amm` as "default" version 1 and starts.
  [[deprecated(
      "register models explicitly: InferenceServer(opts) + "
      "register_model()")]]
  InferenceServer(const maddness::Amm& amm, const ServerOptions& opts);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Builds a server from recovered state: the checkpoint's registry
  /// (a v1 checkpoint's single blob becomes "default" version 1), id
  /// watermark and lifetime metrics counters restored. Call replay()
  /// with the journal's unacknowledged requests next.
  static std::unique_ptr<InferenceServer> restore(
      const recovery::RecoveredState& rs, const ServerOptions& opts);

  // ------------------------------------------------------ registry
  /// Registers a new version of `name` (atomic bump) and — when
  /// checkpointing is wired — immediately checkpoints the registry, so
  /// every admissible version is durable before it can be journaled.
  /// Safe under full load: this is the zero-downtime hot-swap entry.
  std::uint64_t register_model(const std::string& name,
                               const maddness::Amm& amm);
  std::uint64_t register_model(const std::string& name, std::string blob);
  std::uint64_t register_pipeline(
      const std::string& name,
      const std::vector<const maddness::Amm*>& stages);
  /// Makes (name, version) unresolvable; in-flight batches drain.
  void retire_model(const std::string& name, std::uint64_t version);
  engine::ModelRegistry& registry() { return *registry_; }
  const engine::ModelRegistry& registry() const { return *registry_; }

  // ----------------------------------------------- staged rollout
  /// First half of a rollout: installs `blob` as the next version of
  /// `name` WITHOUT bumping "@latest", and force-checkpoints so the
  /// staged bank is durable (and ships to replication followers) before
  /// any shadow traffic references it. Returns the staged version.
  std::uint64_t stage_model(const std::string& name, std::string blob);
  /// Second half: publishes a staged version (atomic "@latest" bump)
  /// and force-checkpoints so the promotion decision is durable and
  /// replicates. The rollout controller calls this on a passed budget.
  void promote_model(const std::string& name, std::uint64_t version);
  /// Rollback: drops a staged-but-never-published version and
  /// force-checkpoints the retraction. Throws CheckError if the version
  /// was already published (use retire_model).
  void discard_model(const std::string& name, std::uint64_t version);

  // ----------------------------------------------------- admission
  /// Submits `rows` quantized activation rows (rows x cols, row-major)
  /// against `model_ref` ("name", "name@latest", or "name@N"); the
  /// resolved handle is pinned for the request's lifetime. Blocks
  /// while the queue is full (backpressure); during drain/shutdown the
  /// returned future holds a ShutdownError instead of blocking.
  /// Throws CheckError on an unknown model or a shape mismatch.
  std::future<InferenceResult> submit(const std::string& model_ref,
                                      std::vector<std::uint8_t> codes,
                                      std::size_t rows = 1);
  /// Same, against an already-resolved (pre-pinned) handle — the
  /// hot-path form that skips the registry lookup.
  std::future<InferenceResult> submit(engine::ModelRef model,
                                      std::vector<std::uint8_t> codes,
                                      std::size_t rows = 1);
  /// Full-context form: priority class, SLO deadline, tenant identity,
  /// non-blocking admission and a completion hook. The network front
  /// end submits through here.
  std::future<InferenceResult> submit(engine::ModelRef model,
                                      std::vector<std::uint8_t> codes,
                                      std::size_t rows,
                                      SubmitExtras extras);
  /// v1 shim: submits against "default@latest".
  std::future<InferenceResult> submit(std::vector<std::uint8_t> codes,
                                      std::size_t rows = 1);

  /// Splits a pre-quantized matrix into per-request row slices and
  /// submits them all; the last request takes the remainder.
  std::vector<std::future<InferenceResult>> submit_batch(
      const std::string& model_ref,
      const maddness::QuantizedActivations& q,
      std::size_t rows_per_request);
  /// v1 shim: submit_batch against "default@latest".
  std::vector<std::future<InferenceResult>> submit_batch(
      const maddness::QuantizedActivations& q,
      std::size_t rows_per_request);

  /// Re-submits journaled requests under their original ids (no new
  /// accept records — they are already in the journal), each resolved
  /// to the exact model version it pinned at admission (v1-era records
  /// map to "default"). Deterministic decode makes the replayed
  /// outputs bit-identical to what the crashed run would have
  /// produced, even across a hot-swap boundary. A record whose version
  /// is no longer in the registry fails its future with CheckError.
  std::vector<std::future<InferenceResult>> replay(
      const std::vector<recovery::AcceptedRecord>& requests);

  /// Closes admission, drains every queued request, joins the workers
  /// and freezes the metrics clock. Requests stranded by dead shards
  /// fail with std::runtime_error. Idempotent.
  void shutdown();

  // ------------------------------------------------- promotion hooks
  /// Wires journal + checkpoint store into a running server that was
  /// built without them — the replication promotion path: a warm
  /// standby is restored recovery-less (its records are the leader's),
  /// then owns the follower's stores the moment it becomes the leader.
  /// Writes a checkpoint immediately so the new leader is durable from
  /// its first accepted request. Pointers are borrowed, as in
  /// RecoveryOptions.
  void attach_recovery(recovery::RequestJournal* journal,
                       recovery::CheckpointManager* checkpoints,
                       std::size_t checkpoint_every);
  /// Raises the admission id watermark to at least `min_next_id` (never
  /// lowers it) — a promoted follower must not reuse ids the old leader
  /// handed out.
  void ensure_id_watermark(std::uint64_t min_next_id);
  /// Installs (or clears) the leader-side replication endpoint on a
  /// running server; workers pick it up on their next batch.
  void set_replication(replication::ReplicationLog* repl);
  /// Records that this server was promoted from a follower (surfaced
  /// as ssma_repl_role 2 plus apply counters in the exposition).
  void note_promotion(std::uint64_t applied_records, double apply_rate_hz);

  /// Prunes the journal prefix that is both fully acknowledged and —
  /// when replication is wired — replicated to the slowest handshaken
  /// follower, so long-running leaders stop growing disk unboundedly.
  /// No-op (returns 0) without a journal + checkpoint store (the
  /// checkpoint carries the counters the pruned records backed).
  /// Returns the number of records pruned.
  std::uint64_t compact_journal();

  /// Installs (or clears) the worker pool's post-ack batch observer —
  /// the rollout subsystem's traffic tap. See WorkerPool::set_observer.
  void set_batch_observer(BatchObserver* observer);
  /// Forwards a shadow-comparison batch into the metrics sink (see
  /// Metrics::record_shadow).
  void record_shadow(const std::string& model, std::size_t rows,
                     std::size_t drift_rows, std::int64_t max_abs_drift,
                     double live_ns, double shadow_ns) {
    metrics_.record_shadow(model, rows, drift_rows, max_abs_drift,
                           live_ns, shadow_ns);
  }

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  /// Attribute a refusal decided upstream of submit() (e.g. the network
  /// admission controller) to this server's reject counters, so one
  /// exposition covers the whole front door.
  void record_reject(RejectReason reason, std::size_t n = 1) {
    metrics_.record_reject(reason, n);
  }
  /// Prometheus text exposition: the metrics sink's counters and
  /// histograms plus live gauges (queue depth/capacity, workers,
  /// respawns, tracing state) sampled at call time. Serve this from a
  /// /metrics endpoint or dump it periodically.
  std::string render_prometheus() const;
  std::size_t queue_depth() const { return queue_->size(); }
  std::size_t queue_capacity() const { return queue_->capacity(); }
  /// Shard respawns performed by the supervisor so far.
  int respawn_count() const { return pool_->respawn_count(); }

  /// Pool-aggregate PPA (merge of per-shard reports, idle shards
  /// contributing silicon only). Only meaningful when the engine
  /// backend collects PPA (kSimulate). Requires shutdown() first.
  core::PpaReport aggregate_report() const;
  const std::vector<std::size_t>& shard_tokens() const;

 private:
  std::future<InferenceResult> submit_with_id(
      std::uint64_t id, engine::ModelRef model,
      std::vector<std::uint8_t> codes, std::size_t rows,
      bool journal_accept, SubmitExtras extras);
  /// Writes a checkpoint when `accepted` hits the cadence (or `force`).
  void maybe_checkpoint(std::uint64_t accepted, bool force);

  std::shared_ptr<engine::ModelRegistry> registry_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<bool> draining_{false};
  std::unique_ptr<RequestQueue> queue_;
  Metrics metrics_;
  std::unique_ptr<WorkerPool> pool_;
  RecoveryOptions recovery_;
  bool shut_down_ = false;
  /// Set once by note_promotion(); read by render_prometheus.
  struct PromotionInfo {
    bool promoted = false;
    std::uint64_t applied = 0;
    double apply_rate_hz = 0.0;
  };
  PromotionInfo promotion_;
};

}  // namespace ssma::serve
