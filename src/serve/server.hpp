// InferenceServer — the public facade of the serving runtime. Owns the
// bounded request queue, the metrics sink, and the sharded worker pool;
// clients submit quantized activation rows and receive futures that
// resolve to int16 outputs bit-exact vs Amm::apply_int16.
//
//   Amm amm = Amm::train(cfg, train_x, w);
//   InferenceServer server(amm, {});            // spawns workers
//   auto fut = server.submit(codes, nrows);     // blocks only when full
//   InferenceResult r = fut.get();
//   server.shutdown();                          // drain + join
//
// With ServerOptions::recovery wired up, the server write-ahead-journals
// every accepted request, snapshots its state into versioned CRC-checked
// checkpoints, supervises crashed worker shards back to life, and — after
// a hard crash — restores from the latest checkpoint and replays the
// journal's unacknowledged requests bit-exactly:
//
//   auto rs = recovery::recover_state(ckpts, journal_path);
//   auto server = InferenceServer::restore(rs, opts);
//   auto futs = server->replay(rs.journal.unacknowledged);
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/layer_mapping.hpp"
#include "core/ppa_report.hpp"
#include "maddness/amm.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/worker_pool.hpp"

namespace ssma::serve {

namespace recovery {
struct AcceptedRecord;
struct RecoveredState;
}  // namespace recovery

/// Fault-tolerance wiring. All pointers are borrowed (not owned) and
/// must outlive the server.
struct RecoveryOptions {
  /// Write-ahead journal: accept records before enqueue, ack records
  /// after fulfillment.
  recovery::RequestJournal* journal = nullptr;
  /// Checkpoint store; the server writes version 1 at startup so a
  /// crash at any later point can restore.
  recovery::CheckpointManager* checkpoints = nullptr;
  /// Snapshot cadence: a checkpoint every N accepted requests
  /// (0 = only the startup checkpoint).
  std::size_t checkpoint_every = 0;
  /// Deterministic fault hook, threaded through admission, the queue,
  /// the worker pool, and checkpoint writes.
  recovery::FaultInjector* fault = nullptr;
  /// Supervise shards: respawn crashed workers from the latest
  /// checkpoint and requeue their in-flight batch.
  bool supervise = false;
  int max_respawns_per_shard = 3;
};

struct ServerOptions {
  int num_workers = 4;
  std::size_t queue_capacity = 1024;  ///< requests; push blocks when full
  BatcherOptions batcher;
  ExecutionMode mode = ExecutionMode::kKernel;
  core::AcceleratorOptions accel;
  /// kDevicePaced only: modeled device service time per token (0 = the
  /// analytic model's average token interval for `accel`).
  double device_ns_per_token = 0.0;
  RecoveryOptions recovery;
};

class InferenceServer {
 public:
  /// Serializes the trained operator once and starts the worker pool;
  /// each worker reconstructs a private replica from the blob.
  InferenceServer(const maddness::Amm& amm, const ServerOptions& opts);
  /// Starts from an already-serialized operator blob (the checkpoint
  /// restore path). `first_request_id` seeds the admission watermark.
  InferenceServer(std::string amm_blob, const ServerOptions& opts,
                  std::uint64_t first_request_id = 0);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Builds a server from recovered state: operator blob and id
  /// watermark from the checkpoint, lifetime metrics counters restored.
  /// Call replay() with the journal's unacknowledged requests next.
  static std::unique_ptr<InferenceServer> restore(
      const recovery::RecoveredState& rs, const ServerOptions& opts);

  /// Submits `rows` quantized activation rows (rows x cols(), row-major).
  /// Blocks while the queue is full (backpressure). After shutdown() the
  /// returned future holds a std::runtime_error.
  std::future<InferenceResult> submit(std::vector<std::uint8_t> codes,
                                      std::size_t rows = 1);

  /// Splits a pre-quantized matrix into per-request row slices and
  /// submits them all; the last request takes the remainder.
  std::vector<std::future<InferenceResult>> submit_batch(
      const maddness::QuantizedActivations& q,
      std::size_t rows_per_request);

  /// Re-submits journaled requests under their original ids (no new
  /// accept records — they are already in the journal). Deterministic
  /// decode makes the replayed outputs bit-identical to what the
  /// crashed run would have produced.
  std::vector<std::future<InferenceResult>> replay(
      const std::vector<recovery::AcceptedRecord>& requests);

  /// Closes admission, drains every queued request, joins the workers
  /// and freezes the metrics clock. Requests stranded by dead shards
  /// fail with std::runtime_error. Idempotent.
  void shutdown();

  /// Layer geometry the server was built for.
  std::size_t cols() const { return cols_; }
  std::size_t nout() const { return nout_; }
  /// The macro tile plan every batch maps onto.
  const core::TilePlan& plan() const { return plan_; }

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  std::size_t queue_depth() const { return queue_->size(); }
  /// Shard respawns performed by the supervisor so far.
  int respawn_count() const { return pool_->respawn_count(); }
  /// The serialized operator the shards replicate from.
  const std::string& amm_blob() const { return amm_blob_; }

  /// Pool-aggregate PPA (merge of per-shard reports, idle shards
  /// contributing silicon only). Only meaningful in
  /// ExecutionMode::kSimulate — kernel/paced shards run no macro, so
  /// the merge is default-empty there. Requires shutdown() first.
  core::PpaReport aggregate_report() const;
  const std::vector<std::size_t>& shard_tokens() const;

 private:
  std::future<InferenceResult> submit_with_id(
      std::uint64_t id, std::vector<std::uint8_t> codes, std::size_t rows,
      bool journal_accept);
  /// Writes a checkpoint when `accepted` hits the cadence (or `force`).
  void maybe_checkpoint(std::uint64_t accepted, bool force);

  std::size_t cols_ = 0;
  std::size_t nout_ = 0;
  core::TilePlan plan_;
  std::string amm_blob_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::unique_ptr<RequestQueue> queue_;
  Metrics metrics_;
  std::unique_ptr<WorkerPool> pool_;
  RecoveryOptions recovery_;
  bool shut_down_ = false;
};

}  // namespace ssma::serve
