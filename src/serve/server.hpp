// InferenceServer — the public facade of the serving runtime. Owns the
// bounded request queue, the metrics sink, and the sharded worker pool;
// clients submit quantized activation rows and receive futures that
// resolve to int16 outputs bit-exact vs Amm::apply_int16.
//
//   Amm amm = Amm::train(cfg, train_x, w);
//   InferenceServer server(amm, {});            // spawns workers
//   auto fut = server.submit(codes, nrows);     // blocks only when full
//   InferenceResult r = fut.get();
//   server.shutdown();                          // drain + join
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/layer_mapping.hpp"
#include "core/ppa_report.hpp"
#include "maddness/amm.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/worker_pool.hpp"

namespace ssma::serve {

struct ServerOptions {
  int num_workers = 4;
  std::size_t queue_capacity = 1024;  ///< requests; push blocks when full
  BatcherOptions batcher;
  ExecutionMode mode = ExecutionMode::kKernel;
  core::AcceleratorOptions accel;
  /// kDevicePaced only: modeled device service time per token (0 = the
  /// analytic model's average token interval for `accel`).
  double device_ns_per_token = 0.0;
};

class InferenceServer {
 public:
  /// Serializes the trained operator once and starts the worker pool;
  /// each worker reconstructs a private replica from the blob.
  InferenceServer(const maddness::Amm& amm, const ServerOptions& opts);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits `rows` quantized activation rows (rows x cols(), row-major).
  /// Blocks while the queue is full (backpressure). After shutdown() the
  /// returned future holds a std::runtime_error.
  std::future<InferenceResult> submit(std::vector<std::uint8_t> codes,
                                      std::size_t rows = 1);

  /// Splits a pre-quantized matrix into per-request row slices and
  /// submits them all; the last request takes the remainder.
  std::vector<std::future<InferenceResult>> submit_batch(
      const maddness::QuantizedActivations& q,
      std::size_t rows_per_request);

  /// Closes admission, drains every queued request, joins the workers
  /// and freezes the metrics clock. Idempotent.
  void shutdown();

  /// Layer geometry the server was built for.
  std::size_t cols() const { return cols_; }
  std::size_t nout() const { return nout_; }
  /// The macro tile plan every batch maps onto.
  const core::TilePlan& plan() const { return plan_; }

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  std::size_t queue_depth() const { return queue_->size(); }

  /// Pool-aggregate PPA (merge of per-shard reports, idle shards
  /// contributing silicon only). Only meaningful in
  /// ExecutionMode::kSimulate — kernel/paced shards run no macro, so
  /// the merge is default-empty there. Requires shutdown() first.
  core::PpaReport aggregate_report() const;
  const std::vector<std::size_t>& shard_tokens() const;

 private:
  std::size_t cols_ = 0;
  std::size_t nout_ = 0;
  core::TilePlan plan_;
  std::atomic<std::uint64_t> next_id_{0};
  std::unique_ptr<RequestQueue> queue_;
  Metrics metrics_;
  std::unique_ptr<WorkerPool> pool_;
  bool shut_down_ = false;
};

}  // namespace ssma::serve
