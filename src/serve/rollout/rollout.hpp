// Continuous-learning rollout pipeline: sample live traffic, retrain in
// the background, shadow the candidate against the serving bank, and
// promote (or roll back) automatically under an error budget.
//
// The RolloutManager is a WorkerPool BatchObserver: after each batch's
// futures resolve, the shard thread offers the batch to the manager.
// The tap is try-lock + preallocated buffers — it never blocks a shard
// and never allocates on the hot path (contended taps are counted and
// dropped). Everything expensive — reservoir dequantize, Amm retraining,
// candidate staging, shadow execution on a spare engine — happens on
// the manager's own low-priority controller thread.
//
// Per managed model, the controller walks a state machine:
//
//   kSampling --(reservoir >= min_train_rows)--> kTraining
//   kTraining --(stage_model name@N+1)--------> kShadowing
//   kShadowing --(drift_fraction <= budget)----> kPromoted   (publish)
//   kShadowing --(drift_fraction >  budget)----> kRolledBack (discard)
//
// Promotion and rollback both force-checkpoint through the server, so
// the decision is durable and replicates to PR-9 followers before any
// "@latest" traffic can observe it. Shadow comparisons are
// saturating-clamp-aware: two outputs pinned at the same int16 rail
// compare equal even though their unclamped accumulators may differ —
// the serving contract is the post-clamp value.
//
// Determinism: the reservoir is seeded Algorithm R (per-model stream
// seeded from RolloutOptions::seed), decisions key off row counts —
// never wall-clock — and the drift comparison itself can be forced via
// FaultInjector site kShadowCompare ("shadow_drift"), so every test
// reproduces from SSMA_TEST_SEED.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/execution_engine.hpp"
#include "maddness/config.hpp"
#include "serve/server.hpp"
#include "serve/worker_pool.hpp"
#include "util/matrix.hpp"

namespace ssma::serve::rollout {

enum class RolloutState {
  kIdle,        ///< managed but no traffic observed yet
  kSampling,    ///< filling the traffic reservoir
  kTraining,    ///< background retrain in progress
  kShadowing,   ///< candidate staged, mirroring traffic
  kPromoted,    ///< candidate published as "@latest"
  kRolledBack,  ///< candidate discarded (budget exceeded)
};

const char* to_string(RolloutState s);

struct RolloutOptions {
  /// Reservoir RNG seed (tests derive it from SSMA_TEST_SEED).
  std::uint64_t seed = 0x5eedfa57;
  /// Reservoir capacity in rows — the bounded retraining memory.
  std::size_t reservoir_rows = 256;
  /// Rows the reservoir must hold before retraining starts.
  std::size_t min_train_rows = 128;
  /// Offer every Nth batch to the reservoir (1 = every batch).
  std::size_t sample_every = 1;
  /// Mirror every Nth batch through the staged bank while shadowing.
  std::size_t shadow_every = 1;
  /// Rows compared before the promote/rollback verdict.
  std::size_t min_shadow_rows = 64;
  /// Largest batch (rows) the shadow mailbox preallocates for; larger
  /// batches are mirrored truncated to this many rows.
  std::size_t max_batch_rows = 512;
  /// Per-element |live - shadow| tolerance; a row drifts when any
  /// element exceeds it (saturated rail pairs always compare equal).
  std::int64_t drift_tolerance = 0;
  /// Promote iff drift_rows / shadow_rows <= error_budget.
  double error_budget = 0.0;
  /// Controller idle poll cadence.
  std::chrono::milliseconds poll{1};
  /// Deterministic drift injection (site kShadowCompare); borrowed.
  recovery::FaultInjector* fault = nullptr;
  /// Spare engine the shadow executor runs candidates on (never the
  /// serving shards' engines).
  engine::EngineOptions engine;
};

/// Point-in-time rollout status for one managed model — the admin
/// RPC's rollout_status body renders to_text() of this.
struct RolloutReport {
  std::string model;
  RolloutState state = RolloutState::kIdle;
  std::uint64_t live_version = 0;
  std::uint64_t candidate_version = 0;  ///< 0 until staged
  std::uint64_t seen_rows = 0;          ///< rows offered to the reservoir
  std::size_t sampled_rows = 0;         ///< rows currently held
  std::size_t shadow_rows = 0;
  std::size_t shadow_batches = 0;
  std::size_t drift_rows = 0;
  std::int64_t max_abs_drift = 0;
  double drift_fraction = 0.0;
  double error_budget = 0.0;
  double live_ns_sum = 0.0;
  double shadow_ns_sum = 0.0;
  std::uint64_t tap_dropped = 0;  ///< manager-wide contended-tap drops

  std::string to_text() const;
};

class RolloutManager : public BatchObserver {
 public:
  /// Borrowing: `server` must outlive the manager. Call start() to
  /// attach the tap and spawn the controller.
  RolloutManager(InferenceServer& server, const RolloutOptions& opts);
  ~RolloutManager() override;

  RolloutManager(const RolloutManager&) = delete;
  RolloutManager& operator=(const RolloutManager&) = delete;

  /// Puts `name` under continuous learning: live traffic feeds the
  /// reservoir, a candidate is retrained against `weights` with `cfg`,
  /// then shadowed and auto-promoted/rolled back. All tap buffers are
  /// preallocated here. `weights` is total_dims() x nout and must match
  /// the live bank's geometry.
  void manage(const std::string& name, Matrix weights,
              const maddness::Config& cfg);

  /// Puts an already-staged version of `name` straight into kShadowing
  /// (no sampling/training) — the bench's shadow-overhead path and the
  /// operator's manual-canary path. The verdict rules are the same.
  void shadow_existing(const std::string& name,
                       std::uint64_t staged_version);

  /// Attaches the batch tap and spawns the controller thread.
  void start();
  /// Stops the controller and detaches the tap. A shard mid-on_batch
  /// may still hold the tap pointer, so destroy the manager only after
  /// InferenceServer::shutdown() (or once serving is quiescent).
  void stop();

  /// Snapshot of one managed model's rollout. Throws CheckError for an
  /// unmanaged name.
  RolloutReport report(const std::string& name) const;
  std::vector<RolloutReport> reports() const;

  /// Blocks until `name` reaches kPromoted or kRolledBack (or timeout).
  /// Returns the terminal state reached, or the current state on
  /// timeout.
  RolloutState wait_for_decision(const std::string& name,
                                 std::chrono::milliseconds timeout);

  /// Operator overrides (admin plane): publish / discard the current
  /// candidate immediately, budget notwithstanding. Throw CheckError
  /// when there is no candidate staged.
  void force_promote(const std::string& name);
  void force_rollback(const std::string& name);

  // BatchObserver — the shard-thread tap. Try-lock, preallocated,
  // never blocks.
  void on_batch(const engine::ModelHandle& model,
                const maddness::QuantizedActivations& q,
                const std::vector<std::int16_t>& out,
                double service_ns) override;

 private:
  /// One managed model. All fields are guarded by mu_ except where
  /// noted; the controller copies what it needs out before unlocking
  /// for the expensive phases.
  struct Managed {
    std::string name;
    Matrix weights;
    maddness::Config cfg;
    std::uint64_t live_version = 0;
    RolloutState state = RolloutState::kIdle;

    // --- traffic reservoir (Algorithm R), preallocated ---
    std::size_t cols = 0;
    std::size_t nout = 0;
    std::vector<std::uint8_t> reservoir;  ///< reservoir_rows x cols
    std::size_t reservoir_size = 0;       ///< rows held
    float reservoir_scale = 0.0f;         ///< live scale at capture
    std::uint64_t seen_rows = 0;
    std::mt19937_64 rng;
    std::uint64_t batch_counter = 0;

    // --- shadow mailbox: single slot, preallocated capacity ---
    bool mailbox_full = false;
    std::size_t mailbox_rows = 0;
    float mailbox_scale = 0.0f;
    double mailbox_live_ns = 0.0;
    std::vector<std::uint8_t> mailbox_codes;  ///< max_batch_rows x cols
    std::vector<std::int16_t> mailbox_out;    ///< max_batch_rows x nout

    // --- candidate + verdict bookkeeping ---
    std::uint64_t candidate_version = 0;
    engine::ModelRef candidate;  ///< pinned while shadowing
    std::size_t shadow_rows = 0;
    std::size_t shadow_batches = 0;
    std::size_t drift_rows = 0;
    std::int64_t max_abs_drift = 0;
    double live_ns_sum = 0.0;
    double shadow_ns_sum = 0.0;
  };

  void controller_main();
  /// One controller pass over `m`; may unlock `lock` around training /
  /// shadow execution / registry calls. Returns true when a state
  /// transition happened (wakes wait_for_decision).
  bool step(Managed& m, std::unique_lock<std::mutex>& lock);
  void train_and_stage(Managed& m, std::unique_lock<std::mutex>& lock);
  bool run_shadow_batch(Managed& m, std::unique_lock<std::mutex>& lock);
  void decide(Managed& m, std::unique_lock<std::mutex>& lock,
              bool promote);
  RolloutReport report_locked(const Managed& m) const;

  InferenceServer& server_;
  const RolloutOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Managed> managed_;
  std::atomic<std::uint64_t> tap_dropped_{0};
  std::atomic<bool> stop_{false};
  std::thread controller_;
  bool started_ = false;

  // Controller-thread-only: the spare shadow engine and its scratch
  // (mailbox contents are swapped into the scratch under the lock, so
  // capacities ping-pong and neither side reallocates at steady state).
  std::unique_ptr<engine::ExecutionEngine> shadow_engine_;
  std::vector<std::int16_t> shadow_out_;
  std::vector<std::uint8_t> scratch_codes_;
  std::vector<std::int16_t> scratch_live_out_;
};

}  // namespace ssma::serve::rollout
