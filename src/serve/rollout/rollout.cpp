#include "serve/rollout/rollout.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "maddness/amm.hpp"
#include "maddness/quantize.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace ssma::serve::rollout {

namespace {

/// FNV-1a over the model name: stable per-model reservoir sub-stream
/// from one RolloutOptions::seed.
std::uint64_t name_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char ch : name) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Per-row drift check, saturating-clamp-aware: an element pair where
/// both sides sit on the same int16 rail compares equal regardless of
/// tolerance (the pre-clamp accumulators may differ; the serving
/// contract is the post-clamp value). Returns the number of drifted
/// rows and maxes `max_abs` over non-rail element diffs.
std::size_t count_drift(const std::int16_t* live, const std::int16_t* shadow,
                        std::size_t rows, std::size_t nout,
                        std::int64_t tolerance, std::int64_t* max_abs) {
  constexpr std::int16_t kHi = std::numeric_limits<std::int16_t>::max();
  constexpr std::int16_t kLo = std::numeric_limits<std::int16_t>::min();
  std::size_t drifted = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    bool row_drifts = false;
    for (std::size_t c = 0; c < nout; ++c) {
      const std::int16_t a = live[r * nout + c];
      const std::int16_t b = shadow[r * nout + c];
      if (a == b) continue;
      if ((a == kHi && b == kHi) || (a == kLo && b == kLo)) continue;
      const std::int64_t d =
          std::abs(static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b));
      *max_abs = std::max(*max_abs, d);
      if (d > tolerance) row_drifts = true;
    }
    if (row_drifts) ++drifted;
  }
  return drifted;
}

}  // namespace

const char* to_string(RolloutState s) {
  switch (s) {
    case RolloutState::kIdle: return "idle";
    case RolloutState::kSampling: return "sampling";
    case RolloutState::kTraining: return "training";
    case RolloutState::kShadowing: return "shadowing";
    case RolloutState::kPromoted: return "promoted";
    case RolloutState::kRolledBack: return "rolled_back";
  }
  return "?";
}

std::string RolloutReport::to_text() const {
  std::ostringstream os;
  os << "model=" << model << " state=" << to_string(state)
     << " live=@" << live_version << " candidate=@" << candidate_version
     << " seen_rows=" << seen_rows << " sampled_rows=" << sampled_rows
     << " shadow_rows=" << shadow_rows
     << " shadow_batches=" << shadow_batches
     << " drift_rows=" << drift_rows
     << " drift_fraction=" << drift_fraction
     << " error_budget=" << error_budget
     << " max_abs_drift=" << max_abs_drift
     << " tap_dropped=" << tap_dropped;
  return os.str();
}

RolloutManager::RolloutManager(InferenceServer& server,
                               const RolloutOptions& opts)
    : server_(server), opts_(opts) {
  SSMA_CHECK(opts_.reservoir_rows >= 1);
  SSMA_CHECK(opts_.min_train_rows >= 1 &&
             opts_.min_train_rows <= opts_.reservoir_rows);
  SSMA_CHECK(opts_.min_shadow_rows >= 1);
  SSMA_CHECK(opts_.error_budget >= 0.0 && opts_.error_budget <= 1.0);
  shadow_engine_ = engine::make_engine(opts_.engine);
}

RolloutManager::~RolloutManager() { stop(); }

void RolloutManager::manage(const std::string& name, Matrix weights,
                            const maddness::Config& cfg) {
  cfg.validate();
  const std::uint64_t live = server_.registry().latest_version(name);
  SSMA_CHECK_MSG(live > 0, "manage of unregistered model " << name);
  const auto cols = static_cast<std::size_t>(cfg.total_dims());
  SSMA_CHECK_MSG(weights.rows() == cols,
                 "rollout weights for " << name << " are " << weights.rows()
                                        << " x " << weights.cols()
                                        << ", model cols=" << cols);
  std::lock_guard<std::mutex> lock(mu_);
  SSMA_CHECK_MSG(managed_.find(name) == managed_.end(),
                 "model " << name << " already under rollout management");
  Managed& m = managed_[name];
  m.name = name;
  m.cfg = cfg;
  m.nout = weights.cols();
  m.weights = std::move(weights);
  m.cols = cols;
  m.live_version = live;
  m.rng.seed(name_seed(opts_.seed, name));
  m.reservoir.assign(opts_.reservoir_rows * m.cols, 0);
  m.mailbox_codes.reserve(opts_.max_batch_rows * m.cols);
  m.mailbox_out.reserve(opts_.max_batch_rows * m.nout);
  m.state = RolloutState::kSampling;
}

void RolloutManager::shadow_existing(const std::string& name,
                                     std::uint64_t staged_version) {
  engine::ModelRef cand = server_.registry().resolve(name, staged_version);
  const std::uint64_t live = server_.registry().latest_version(name);
  SSMA_CHECK_MSG(live > 0, "shadow_existing of unregistered model " << name);
  std::lock_guard<std::mutex> lock(mu_);
  SSMA_CHECK_MSG(managed_.find(name) == managed_.end(),
                 "model " << name << " already under rollout management");
  Managed& m = managed_[name];
  m.name = name;
  m.cols = cand->cols();
  m.nout = cand->nout();
  m.live_version = live;
  m.rng.seed(name_seed(opts_.seed, name));
  m.mailbox_codes.reserve(opts_.max_batch_rows * m.cols);
  m.mailbox_out.reserve(opts_.max_batch_rows * m.nout);
  m.candidate_version = staged_version;
  m.candidate = std::move(cand);
  m.state = RolloutState::kShadowing;
}

void RolloutManager::start() {
  SSMA_CHECK_MSG(!started_, "RolloutManager already started");
  started_ = true;
  stop_.store(false, std::memory_order_release);
  controller_ = std::thread([this] { controller_main(); });
  server_.set_batch_observer(this);
}

void RolloutManager::stop() {
  if (!started_) return;
  server_.set_batch_observer(nullptr);
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (controller_.joinable()) controller_.join();
  started_ = false;
}

void RolloutManager::on_batch(const engine::ModelHandle& model,
                              const maddness::QuantizedActivations& q,
                              const std::vector<std::int16_t>& out,
                              double service_ns) {
  // Shard hot path: try-lock only. A contended tap is a dropped sample,
  // never a stall — the controller holds mu_ for microseconds at a
  // time, so drops stay rare and are surfaced in the report.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    tap_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = managed_.find(model.name());
  if (it == managed_.end()) return;
  Managed& m = it->second;
  // Only the live bank's traffic feeds the rollout: a batch on a
  // pinned old version (or a mismatched geometry) is ignored.
  if (model.version() != m.live_version || q.cols != m.cols ||
      out.size() != q.rows * m.nout)
    return;
  m.batch_counter++;
  if (m.state == RolloutState::kSampling) {
    if (opts_.sample_every > 1 &&
        (m.batch_counter % opts_.sample_every) != 0)
      return;
    if (m.reservoir_scale == 0.0f) m.reservoir_scale = q.scale;
    // Algorithm R over the row stream: slot j < capacity replaced with
    // probability capacity / seen — a uniform sample of all rows ever
    // offered, in bounded memory.
    for (std::size_t r = 0; r < q.rows; ++r) {
      m.seen_rows++;
      std::size_t slot;
      if (m.reservoir_size < opts_.reservoir_rows) {
        slot = m.reservoir_size++;
      } else {
        const std::uint64_t j = m.rng() % m.seen_rows;
        if (j >= opts_.reservoir_rows) continue;
        slot = static_cast<std::size_t>(j);
      }
      std::copy(q.row(r), q.row(r) + m.cols,
                m.reservoir.data() + slot * m.cols);
    }
  } else if (m.state == RolloutState::kShadowing) {
    if (m.mailbox_full) return;  // controller still digesting the last
    if (opts_.shadow_every > 1 &&
        (m.batch_counter % opts_.shadow_every) != 0)
      return;
    const std::size_t rows = std::min(q.rows, opts_.max_batch_rows);
    if (rows == 0) return;
    m.mailbox_rows = rows;
    m.mailbox_scale = q.scale;
    m.mailbox_live_ns = service_ns;
    // assign() reuses the capacity reserved at manage() — no hot-path
    // allocation once the mailbox has seen its first batch shape.
    m.mailbox_codes.assign(q.codes.begin(),
                           q.codes.begin() +
                               static_cast<std::ptrdiff_t>(rows * m.cols));
    m.mailbox_out.assign(out.begin(),
                         out.begin() +
                             static_cast<std::ptrdiff_t>(rows * m.nout));
    m.mailbox_full = true;
  }
}

void RolloutManager::controller_main() {
  SSMA_TRACE_SET_THREAD("rollout-controller");
#if defined(__linux__)
  // Training and shadow execution must yield to the serving shards when
  // cores are scarce: drop this thread to the lowest CFS weight. Best
  // effort — an unprivileged failure just means fair scheduling.
  (void)setpriority(PRIO_PROCESS,
                    static_cast<id_t>(::syscall(SYS_gettid)), 19);
#endif
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (auto& [name, m] : managed_) {
      (void)name;
      progressed = step(m, lock) || progressed;
    }
    if (!progressed) cv_.wait_for(lock, opts_.poll);
  }
}

bool RolloutManager::step(Managed& m, std::unique_lock<std::mutex>& lock) {
  switch (m.state) {
    case RolloutState::kSampling:
      if (m.reservoir_size >= opts_.min_train_rows) {
        train_and_stage(m, lock);
        return true;
      }
      return false;
    case RolloutState::kShadowing:
      if (m.mailbox_full) return run_shadow_batch(m, lock);
      return false;
    default:
      return false;
  }
}

void RolloutManager::train_and_stage(Managed& m,
                                     std::unique_lock<std::mutex>& lock) {
  // Flip the state first: from here the tap ignores this model, so the
  // reservoir is frozen and safe to read without the lock — retraining
  // must not stall the shard taps of other managed models.
  m.state = RolloutState::kTraining;
  const std::size_t rows = m.reservoir_size;
  const float scale = m.reservoir_scale;
  lock.unlock();

  Matrix acts(rows, m.cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < m.cols; ++c)
      acts(r, c) = static_cast<float>(m.reservoir[r * m.cols + c]) * scale;
  const maddness::Amm cand = maddness::Amm::train(m.cfg, acts, m.weights);
  // Staging force-checkpoints: the candidate is durable (and shipped to
  // replication followers) before the first shadow batch references it.
  const std::uint64_t version =
      server_.stage_model(m.name, cand.save_string());
  engine::ModelRef pin = server_.registry().resolve(m.name, version);

  lock.lock();
  m.candidate_version = version;
  m.candidate = std::move(pin);
  m.state = RolloutState::kShadowing;
  cv_.notify_all();
}

bool RolloutManager::run_shadow_batch(Managed& m,
                                      std::unique_lock<std::mutex>& lock) {
  // Drain the mailbox by swap (keeps both sides' capacity), then do the
  // mirror execution unlocked on the manager's spare engine.
  std::vector<std::uint8_t>& codes = scratch_codes_;
  std::vector<std::int16_t>& live_out = scratch_live_out_;
  codes.swap(m.mailbox_codes);
  live_out.swap(m.mailbox_out);
  const std::size_t rows = m.mailbox_rows;
  const float scale = m.mailbox_scale;
  const double live_ns = m.mailbox_live_ns;
  m.mailbox_full = false;
  const engine::ModelRef candidate = m.candidate;  // pin across unlock
  lock.unlock();

  double shadow_ns = 0.0;
  {
    SSMA_TRACE_SPAN(kShadowExecute);
    // The candidate calibrated its own activation scale on the
    // reservoir, so live codes are re-expressed in the candidate's
    // quantized domain: dequantize at the live scale, requantize at the
    // candidate's.
    Matrix x(rows, m.cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < m.cols; ++c)
        x(r, c) = static_cast<float>(codes[r * m.cols + c]) * scale;
    const maddness::QuantizedActivations qc = maddness::quantize_activations(
        x, candidate->stage(0).activation_scale());
    const Clock::time_point t0 = Clock::now();
    shadow_engine_->run_batch(*candidate, qc, shadow_out_);
    shadow_ns = std::chrono::duration<double, std::nano>(Clock::now() - t0)
                    .count();
  }

  std::size_t drift = 0;
  std::int64_t max_abs = 0;
  {
    SSMA_TRACE_SPAN(kShadowCompare);
    bool faulted = false;
    if (opts_.fault) {
      const recovery::FaultAction act =
          opts_.fault->poll(recovery::FaultSite::kShadowCompare);
      if (act.kind == recovery::FaultKind::kDelay)
        std::this_thread::sleep_for(act.delay);
      else if (act)
        faulted = true;
    }
    if (faulted) {
      // Injected drift: the whole mirrored batch counts as fully
      // drifted — the deterministic regression the rollback tests arm.
      drift = rows;
      max_abs = std::numeric_limits<std::int16_t>::max();
    } else {
      drift = count_drift(live_out.data(), shadow_out_.data(), rows,
                          m.nout, opts_.drift_tolerance, &max_abs);
    }
  }
  server_.record_shadow(m.name, rows, drift, max_abs, live_ns, shadow_ns);

  lock.lock();
  m.shadow_rows += rows;
  m.shadow_batches++;
  m.drift_rows += drift;
  m.max_abs_drift = std::max(m.max_abs_drift, max_abs);
  m.live_ns_sum += live_ns;
  m.shadow_ns_sum += shadow_ns;
  if (m.state == RolloutState::kShadowing &&
      m.shadow_rows >= opts_.min_shadow_rows) {
    const double frac = static_cast<double>(m.drift_rows) /
                        static_cast<double>(m.shadow_rows);
    decide(m, lock, frac <= opts_.error_budget);
    return true;
  }
  return false;
}

void RolloutManager::decide(Managed& m, std::unique_lock<std::mutex>& lock,
                            bool promote) {
  const std::string name = m.name;
  const std::uint64_t version = m.candidate_version;
  // Terminal state lands before the unlock so the tap (and a racing
  // force_* call) can no longer act on this rollout.
  m.state = promote ? RolloutState::kPromoted : RolloutState::kRolledBack;
  engine::ModelRef doomed;
  if (!promote) doomed = std::move(m.candidate);
  lock.unlock();
  // Both verdicts force-checkpoint inside the server, so the decision
  // is durable — and streams to replication followers — before any
  // client can observe the new "@latest".
  if (promote)
    server_.promote_model(name, version);
  else
    server_.discard_model(name, version);
  doomed.reset();
  lock.lock();
  if (promote) m.live_version = version;
  cv_.notify_all();
}

RolloutReport RolloutManager::report_locked(const Managed& m) const {
  RolloutReport r;
  r.model = m.name;
  r.state = m.state;
  r.live_version = m.live_version;
  r.candidate_version = m.candidate_version;
  r.seen_rows = m.seen_rows;
  r.sampled_rows = m.reservoir_size;
  r.shadow_rows = m.shadow_rows;
  r.shadow_batches = m.shadow_batches;
  r.drift_rows = m.drift_rows;
  r.max_abs_drift = m.max_abs_drift;
  r.drift_fraction =
      m.shadow_rows == 0 ? 0.0
                         : static_cast<double>(m.drift_rows) /
                               static_cast<double>(m.shadow_rows);
  r.error_budget = opts_.error_budget;
  r.live_ns_sum = m.live_ns_sum;
  r.shadow_ns_sum = m.shadow_ns_sum;
  r.tap_dropped = tap_dropped_.load(std::memory_order_relaxed);
  return r;
}

RolloutReport RolloutManager::report(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = managed_.find(name);
  SSMA_CHECK_MSG(it != managed_.end(),
                 "model " << name << " is not under rollout management");
  return report_locked(it->second);
}

std::vector<RolloutReport> RolloutManager::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RolloutReport> out;
  out.reserve(managed_.size());
  for (const auto& [name, m] : managed_) {
    (void)name;
    out.push_back(report_locked(m));
  }
  return out;
}

RolloutState RolloutManager::wait_for_decision(
    const std::string& name, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = managed_.find(name);
  SSMA_CHECK_MSG(it != managed_.end(),
                 "model " << name << " is not under rollout management");
  const auto decided = [&] {
    const RolloutState s = it->second.state;
    return s == RolloutState::kPromoted || s == RolloutState::kRolledBack;
  };
  cv_.wait_for(lock, timeout, decided);
  return it->second.state;
}

void RolloutManager::force_promote(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = managed_.find(name);
  SSMA_CHECK_MSG(it != managed_.end(),
                 "model " << name << " is not under rollout management");
  SSMA_CHECK_MSG(it->second.state == RolloutState::kShadowing,
                 "force_promote of " << name << " in state "
                                     << to_string(it->second.state)
                                     << " (no candidate shadowing)");
  decide(it->second, lock, true);
}

void RolloutManager::force_rollback(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = managed_.find(name);
  SSMA_CHECK_MSG(it != managed_.end(),
                 "model " << name << " is not under rollout management");
  SSMA_CHECK_MSG(it->second.state == RolloutState::kShadowing,
                 "force_rollback of " << name << " in state "
                                      << to_string(it->second.state)
                                      << " (no candidate shadowing)");
  decide(it->second, lock, false);
}

}  // namespace ssma::serve::rollout
