// Admission controller: the SLO-aware gate between ingress (network or
// in-process) and the bounded request queue. Three checks, in order:
//
//   1. deadline   — a request whose SLO deadline already passed is
//                   refused immediately (kDeadlineExpired); spending
//                   queue capacity on it can only hurt other tenants.
//   2. watermark  — each priority class owns a queue-depth watermark
//                   (fraction of capacity). When the queue is deeper
//                   than a class's watermark, that class is shed
//                   (kQueueFull) while more urgent classes still pass —
//                   graceful degradation instead of blocking everyone.
//   3. token bucket — per-tenant rate limit in tokens (= activation
//                   rows) per second with a burst cap, so one tenant
//                   cannot monopolize the queue ahead of the watermark
//                   check (kRateLimited).
//
// The controller is clock-injectable (tests drive refill
// deterministically) and bounds its own memory: unconfigured tenants
// are tracked LRU up to `max_tracked_tenants`, and an evicted tenant
// that returns starts with a full burst — a bounded, documented
// over-admit in exchange for O(1) state per active tenant.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/request_queue.hpp"

namespace ssma::serve {

/// Per-tenant admission policy.
struct TenantConfig {
  /// Sustained token (activation-row) rate; <= 0 means unlimited (no
  /// bucket is maintained for the tenant).
  double tokens_per_sec = 0.0;
  /// Bucket capacity: how many tokens a tenant can burst after idling.
  double burst_tokens = 0.0;
  /// SLO class stamped on the tenant's requests; also selects the shed
  /// watermark.
  Priority priority = Priority::kNormal;
};

struct AdmissionOptions {
  /// Policy for tenants absent from `tenants` (default: unlimited,
  /// normal priority — in-process callers keep working unconfigured).
  TenantConfig default_tenant;
  /// Explicit per-tenant policies; these tenants are never LRU-evicted.
  std::map<std::string, TenantConfig> tenants;
  /// Bound on bucket state for tenants using the default policy.
  std::size_t max_tracked_tenants = 1024;
  /// Shed watermarks as a fraction of queue capacity, indexed by
  /// Priority. A request is refused (kQueueFull) when
  /// queue_depth >= watermark * capacity. kHigh's default (> 1.0)
  /// means "never shed by depth — rely on the bounded queue itself".
  std::array<double, kNumPriorities> shed_watermark{1.01, 0.75, 0.5};
};

/// Monotonic counters; snapshot via AdmissionController::stats().
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::array<std::uint64_t, kNumRejectReasons> rejects{};
  std::uint64_t evicted_tenants = 0;
};

class AdmissionController {
 public:
  struct Outcome {
    bool admitted = false;
    /// Valid only when !admitted.
    RejectReason reason = RejectReason::kQueueFull;
    /// The tenant's SLO class (stamped whether or not admitted, so
    /// rejects can be attributed per class).
    Priority priority = Priority::kNormal;
  };

  explicit AdmissionController(const AdmissionOptions& opts);

  /// Decide admission for `rows` tokens from `tenant` at time `now`
  /// against the current queue depth/capacity. `deadline` is the
  /// request's absolute SLO deadline (time_point::max() = none).
  /// Thread-safe; tokens are debited only when the request is admitted.
  Outcome admit(const std::string& tenant, std::size_t rows,
                Clock::time_point now, Clock::time_point deadline,
                std::size_t queue_depth, std::size_t queue_capacity);

  /// The policy that would apply to `tenant` (configured or default).
  const TenantConfig& config_for(const std::string& tenant) const;

  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return opts_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last_refill{};
    /// Position in lru_ (only meaningful for default-policy tenants).
    std::list<std::string>::iterator lru_it;
    bool configured = false;
  };

  // Caller holds mu_.
  Bucket& bucket_for(const std::string& tenant, const TenantConfig& cfg,
                     Clock::time_point now);

  const AdmissionOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;
  /// LRU order of default-policy tenants, most recent at the front.
  std::list<std::string> lru_;
  AdmissionStats stats_;
};

}  // namespace ssma::serve
