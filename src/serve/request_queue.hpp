// Bounded MPMC queue of inference requests — the admission point of the
// serving runtime. Producers (client threads) block when the queue is
// full (backpressure instead of unbounded memory growth); consumers
// (worker threads) drain requests singly or under a token budget so the
// batcher can coalesce without reordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ssma::engine {
class ModelHandle;
}  // namespace ssma::engine

namespace ssma::serve {

namespace recovery {
class FaultInjector;
}  // namespace recovery

using Clock = std::chrono::steady_clock;

/// What a fulfilled request resolves to.
struct InferenceResult {
  std::uint64_t request_id = 0;
  std::size_t rows = 0;
  /// rows x nout int16 accumulators, bit-exact vs the model's
  /// reference decode (Amm::apply_int16 / pipeline_reference_apply).
  std::vector<std::int16_t> outputs;
  int worker_id = -1;           ///< which shard served it
  std::string model;            ///< model name that served the request
  std::uint64_t model_version = 0;  ///< exact bank version used
  Clock::time_point completed_at{};  ///< set by the worker at fulfillment
};

/// One queued unit of work: `rows` quantized activation rows plus the
/// promise the serving worker fulfills. Move-only (owns the promise).
/// `model` is pinned at admission: the batch executes on exactly this
/// bank even if a newer version is registered mid-flight.
struct InferenceRequest {
  std::uint64_t id = 0;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x cols, row-major uint8
  std::shared_ptr<const engine::ModelHandle> model;
  Clock::time_point enqueued_at{};
  std::promise<InferenceResult> result;
};

/// Outcome of a budgeted pop (see RequestQueue::pop_compatible).
enum class PopStatus {
  kOk,           ///< *out holds a request
  kWouldExceed,  ///< head is larger than the remaining budget, or pinned
                 ///< to a different model than the forming batch
  kTimeout,      ///< deadline passed with no compatible request
  kClosed,       ///< queue closed and fully drained
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full (backpressure). Returns false — and
  /// leaves `req` untouched — if the queue was closed.
  bool push(InferenceRequest&& req);

  /// Non-blocking push; false when full or closed.
  bool try_push(InferenceRequest&& req);

  /// Pops the first request pinned to `model_key` (any request when
  /// null) once it fits within `max_rows`; waits until the deadline
  /// passes or the queue is closed and drained otherwise. Model-affine:
  /// requests for other models are skipped in place (their own batches
  /// pick them up), so per-model FIFO is preserved while multi-model
  /// interleave never fragments batches. An oversized first candidate
  /// is reported (kWouldExceed), never skipped.
  PopStatus pop_compatible(std::size_t max_rows, Clock::time_point deadline,
                           InferenceRequest* out,
                           const void* model_key = nullptr);

  /// Blocking pop with no budget or deadline; kOk or kClosed.
  PopStatus pop_wait(InferenceRequest* out);

  /// Recovery path: puts a crashed shard's in-flight requests back at
  /// the head of the queue in their original order, bypassing both the
  /// capacity bound and close() — requeued work must drain even during
  /// shutdown, and blocking the supervisor on a full queue would
  /// deadlock recovery.
  void requeue_front(std::vector<InferenceRequest>&& reqs);

  /// Optional fault hook (kQueuePush delay shaping); not owned.
  void set_fault_injector(recovery::FaultInjector* fault);

  /// After close(), pushes fail and consumers drain the remainder.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  recovery::FaultInjector* fault_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<InferenceRequest> items_;
  bool closed_ = false;
};

}  // namespace ssma::serve
