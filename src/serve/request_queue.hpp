// Bounded MPMC queue of inference requests — the admission point of the
// serving runtime. Producers (client threads) block when the queue is
// full (backpressure instead of unbounded memory growth); consumers
// (worker threads) drain requests singly or under a token budget so the
// batcher can coalesce without reordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

namespace ssma::serve {

namespace recovery {
class FaultInjector;
}  // namespace recovery

using Clock = std::chrono::steady_clock;

/// What a fulfilled request resolves to.
struct InferenceResult {
  std::uint64_t request_id = 0;
  std::size_t rows = 0;
  /// rows x nout int16 accumulators, bit-exact vs Amm::apply_int16.
  std::vector<std::int16_t> outputs;
  int worker_id = -1;           ///< which shard served it
  Clock::time_point completed_at{};  ///< set by the worker at fulfillment
};

/// One queued unit of work: `rows` quantized activation rows plus the
/// promise the serving worker fulfills. Move-only (owns the promise).
struct InferenceRequest {
  std::uint64_t id = 0;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x cols, row-major uint8
  Clock::time_point enqueued_at{};
  std::promise<InferenceResult> result;
};

/// Outcome of a budgeted pop (see RequestQueue::pop_compatible).
enum class PopStatus {
  kOk,           ///< *out holds a request
  kWouldExceed,  ///< head request is larger than the remaining budget
  kTimeout,      ///< deadline passed with no compatible request
  kClosed,       ///< queue closed and fully drained
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full (backpressure). Returns false — and
  /// leaves `req` untouched — if the queue was closed.
  bool push(InferenceRequest&& req);

  /// Non-blocking push; false when full or closed.
  bool try_push(InferenceRequest&& req);

  /// Waits until the head request fits within `max_rows`, the deadline
  /// passes, or the queue is closed and drained. FIFO order is preserved:
  /// an oversized head is reported (kWouldExceed), never skipped.
  PopStatus pop_compatible(std::size_t max_rows, Clock::time_point deadline,
                           InferenceRequest* out);

  /// Blocking pop with no budget or deadline; kOk or kClosed.
  PopStatus pop_wait(InferenceRequest* out);

  /// Recovery path: puts a crashed shard's in-flight requests back at
  /// the head of the queue in their original order, bypassing both the
  /// capacity bound and close() — requeued work must drain even during
  /// shutdown, and blocking the supervisor on a full queue would
  /// deadlock recovery.
  void requeue_front(std::vector<InferenceRequest>&& reqs);

  /// Optional fault hook (kQueuePush delay shaping); not owned.
  void set_fault_injector(recovery::FaultInjector* fault);

  /// After close(), pushes fail and consumers drain the remainder.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  recovery::FaultInjector* fault_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<InferenceRequest> items_;
  bool closed_ = false;
};

}  // namespace ssma::serve
