// Bounded MPMC queue of inference requests — the admission point of the
// serving runtime. Producers (client threads) block when the queue is
// full (backpressure instead of unbounded memory growth); consumers
// (worker threads) drain requests singly or under a token budget so the
// batcher can coalesce without reordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssma::engine {
class ModelHandle;
}  // namespace ssma::engine

namespace ssma::serve {

namespace recovery {
class FaultInjector;
}  // namespace recovery

using Clock = std::chrono::steady_clock;

/// SLO classes for multi-tenant admission. Lower value = more urgent:
/// the queue serves the oldest request of the most urgent class first,
/// and under overload the admission layer sheds the least urgent
/// classes at progressively lower queue watermarks.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
inline constexpr std::size_t kNumPriorities = 3;
const char* priority_name(Priority p);

/// Why an admission-side component refused a request. Every refusal in
/// the serving stack is typed with one of these — the future (and the
/// network status byte) carries the reason, so clients distinguish
/// "back off" (kRateLimited/kQueueFull) from "give up" (kShutdown,
/// kUnknownModel) without string matching.
enum class RejectReason : std::uint8_t {
  kShutdown = 0,         ///< server draining or shut down
  kRateLimited,          ///< tenant token bucket empty
  kQueueFull,            ///< queue over this priority's shed watermark
  kDeadlineExpired,      ///< SLO deadline passed before execution
  kUnknownModel,         ///< model ref did not resolve
  kMalformed,            ///< request failed shape/protocol validation
  kReplicaNotReady,      ///< follower promotion attempted before the
                         ///< standby received its first checkpoint
  kStaleFollower,        ///< follower journal is ahead of the leader's
                         ///< (diverged history) — cannot resume
};
inline constexpr std::size_t kNumRejectReasons = 8;
const char* reject_reason_name(RejectReason r);

/// Typed load-shed/refusal error: what a rejected request's future
/// holds, and what the RPC layer maps onto its status byte.
class RejectedError : public std::runtime_error {
 public:
  RejectedError(RejectReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

/// What a fulfilled request resolves to.
struct InferenceResult {
  std::uint64_t request_id = 0;
  std::size_t rows = 0;
  /// rows x nout int16 accumulators, bit-exact vs the model's
  /// reference decode (Amm::apply_int16 / pipeline_reference_apply).
  std::vector<std::int16_t> outputs;
  int worker_id = -1;           ///< which shard served it
  std::string model;            ///< model name that served the request
  std::uint64_t model_version = 0;  ///< exact bank version used
  Clock::time_point completed_at{};  ///< set by the worker at fulfillment
};

/// One queued unit of work: `rows` quantized activation rows plus the
/// promise the serving worker fulfills. Move-only (owns the promise).
/// `model` is pinned at admission: the batch executes on exactly this
/// bank even if a newer version is registered mid-flight.
struct InferenceRequest {
  std::uint64_t id = 0;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows x cols, row-major uint8
  std::shared_ptr<const engine::ModelHandle> model;
  Clock::time_point enqueued_at{};
  Priority priority = Priority::kNormal;
  /// Absolute SLO deadline; max() means "no deadline". The batcher drops
  /// requests whose deadline has already passed (typed kDeadlineExpired
  /// rejection) instead of spending device time on a result nobody
  /// will wait for.
  Clock::time_point deadline = Clock::time_point::max();
  std::string tenant;  ///< admission identity; empty = anonymous
  /// Journal sequence number of this request's accept record (0 = not
  /// journaled). The worker's ack path holds the response until the
  /// replication watermark covers this seq — the acked-write guarantee.
  std::uint64_t wal_seq = 0;
  /// Optional completion hook, invoked exactly once — from whichever
  /// thread fulfills or fails the request — *before* the promise is
  /// resolved. The network layer uses it to serialize the response
  /// without parking a thread on the future. On success `res` is
  /// non-null and `err` empty; on failure `res` is null and `err`
  /// holds the exception (RejectedError for typed sheds).
  std::function<void(const InferenceResult* res,
                     const std::exception_ptr& err)>
      on_done;
  std::promise<InferenceResult> result;

  /// Resolve successfully: fires on_done, then the promise. Every
  /// fulfillment in the serving stack goes through here so the net
  /// layer never loses an ack.
  void fulfill(InferenceResult&& res) {
    if (on_done) on_done(&res, nullptr);
    result.set_value(std::move(res));
  }
  /// Resolve with an error: fires on_done, then the promise.
  void fail(const std::exception_ptr& err) {
    if (on_done) on_done(nullptr, err);
    result.set_exception(err);
  }
};

/// Outcome of a budgeted pop (see RequestQueue::pop_compatible).
enum class PopStatus {
  kOk,           ///< *out holds a request
  kWouldExceed,  ///< head is larger than the remaining budget, or pinned
                 ///< to a different model than the forming batch
  kTimeout,      ///< deadline passed with no compatible request
  kClosed,       ///< queue closed and fully drained
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full (backpressure). Returns false — and
  /// leaves `req` untouched — if the queue was closed.
  bool push(InferenceRequest&& req);

  /// Non-blocking push; false when full or closed.
  bool try_push(InferenceRequest&& req);

  /// Pops the first request pinned to `model_key` (any request when
  /// null) once it fits within `max_rows`; waits until the deadline
  /// passes or the queue is closed and drained otherwise. Model-affine:
  /// requests for other models are skipped in place (their own batches
  /// pick them up), so per-model FIFO is preserved while multi-model
  /// interleave never fragments batches. An oversized first candidate
  /// is reported (kWouldExceed), never skipped.
  ///
  /// Starvation guard: scanning past another model's request is only
  /// allowed while that request is still "fresh". If a skipped request
  /// was enqueued at or before `no_skip_enqueued_before`, or its SLO
  /// deadline is at or before `no_skip_deadline_before`, the pop
  /// returns kWouldExceed instead — closing the forming batch so the
  /// next pop_wait serves the aged head. The defaults (time_point::min)
  /// disable both bounds.
  PopStatus pop_compatible(
      std::size_t max_rows, Clock::time_point deadline,
      InferenceRequest* out, const void* model_key = nullptr,
      Clock::time_point no_skip_enqueued_before = Clock::time_point::min(),
      Clock::time_point no_skip_deadline_before = Clock::time_point::min());

  /// Blocking pop with no budget or deadline; kOk or kClosed. Serves
  /// the oldest request of the most urgent priority class present
  /// (stable within a class), so high-priority tenants jump the line
  /// exactly once — at batch-head selection — without reordering any
  /// single tenant's stream.
  PopStatus pop_wait(InferenceRequest* out);

  /// Recovery path: puts a crashed shard's in-flight requests back at
  /// the head of the queue in their original order, bypassing both the
  /// capacity bound and close() — requeued work must drain even during
  /// shutdown, and blocking the supervisor on a full queue would
  /// deadlock recovery.
  void requeue_front(std::vector<InferenceRequest>&& reqs);

  /// Optional fault hook (kQueuePush delay shaping); not owned.
  void set_fault_injector(recovery::FaultInjector* fault);

  /// After close(), pushes fail and consumers drain the remainder.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  recovery::FaultInjector* fault_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<InferenceRequest> items_;
  bool closed_ = false;
};

}  // namespace ssma::serve
