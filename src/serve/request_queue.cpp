#include "serve/request_queue.hpp"

#include <iterator>
#include <thread>

#include "serve/recovery/fault_injector.hpp"
#include "util/check.hpp"

namespace ssma::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "unknown";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kShutdown: return "shutdown";
    case RejectReason::kRateLimited: return "rate_limited";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDeadlineExpired: return "deadline_expired";
    case RejectReason::kUnknownModel: return "unknown_model";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kReplicaNotReady: return "replica_not_ready";
    case RejectReason::kStaleFollower: return "stale_follower";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  SSMA_CHECK(capacity >= 1);
}

void RequestQueue::set_fault_injector(recovery::FaultInjector* fault) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_ = fault;
}

bool RequestQueue::push(InferenceRequest&& req) {
  std::unique_lock<std::mutex> lock(mu_);
  if (fault_) {
    const recovery::FaultAction act =
        fault_->poll(recovery::FaultSite::kQueuePush);
    if (act.kind == recovery::FaultKind::kDelay) {
      lock.unlock();
      std::this_thread::sleep_for(act.delay);
      lock.lock();
    }
  }
  not_full_.wait(lock,
                 [&] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(req));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(InferenceRequest&& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  return true;
}

PopStatus RequestQueue::pop_compatible(
    std::size_t max_rows, Clock::time_point deadline,
    InferenceRequest* out, const void* model_key,
    Clock::time_point no_skip_enqueued_before,
    Clock::time_point no_skip_deadline_before) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Model-affine scan: the first request pinned to the forming
    // batch's model (the plain head when no key is given). Per-model
    // FIFO is preserved — candidates are considered in admission order
    // — while other models' requests are left in place for the workers
    // batching those models, so interleaved multi-model traffic does
    // not fragment batches.
    auto it = items_.begin();
    if (model_key != nullptr) {
      while (it != items_.end() && it->model.get() != model_key) {
        // Starvation guard: refuse to reach past another model's
        // request once it has aged beyond the caller's skip bound or
        // its SLO deadline is imminent. Without this, sustained
        // hot-model traffic keeps the scan hopping over a cold model's
        // head forever.
        if (it->enqueued_at <= no_skip_enqueued_before ||
            it->deadline <= no_skip_deadline_before)
          return PopStatus::kWouldExceed;
        ++it;
      }
    }
    if (it != items_.end()) {
      if (it->rows > max_rows) return PopStatus::kWouldExceed;
      *out = std::move(*it);
      items_.erase(it);
      lock.unlock();
      not_full_.notify_one();
      return PopStatus::kOk;
    }
    if (closed_) return PopStatus::kClosed;
    if (Clock::now() >= deadline) return PopStatus::kTimeout;
    not_empty_.wait_until(lock, deadline);
  }
}

PopStatus RequestQueue::pop_wait(InferenceRequest* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return PopStatus::kClosed;
  // Serve the oldest request of the most urgent class present. The
  // scan is stable (first hit wins within a class) and short-circuits
  // on kHigh — the common case under light load is still O(1).
  auto best = items_.begin();
  for (auto it = std::next(items_.begin());
       it != items_.end() && best->priority != Priority::kHigh; ++it) {
    if (it->priority < best->priority) best = it;
  }
  *out = std::move(*best);
  items_.erase(best);
  lock.unlock();
  not_full_.notify_one();
  return PopStatus::kOk;
}

void RequestQueue::requeue_front(std::vector<InferenceRequest>&& reqs) {
  if (reqs.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items_.insert(items_.begin(),
                  std::make_move_iterator(reqs.begin()),
                  std::make_move_iterator(reqs.end()));
  }
  reqs.clear();
  not_empty_.notify_all();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace ssma::serve
