#include "serve/admission.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ssma::serve {

AdmissionController::AdmissionController(const AdmissionOptions& opts)
    : opts_(opts) {
  SSMA_CHECK(opts.max_tracked_tenants >= 1);
  for (double w : opts.shed_watermark) SSMA_CHECK(w > 0.0);
}

const TenantConfig& AdmissionController::config_for(
    const std::string& tenant) const {
  const auto it = opts_.tenants.find(tenant);
  return it != opts_.tenants.end() ? it->second : opts_.default_tenant;
}

AdmissionController::Bucket& AdmissionController::bucket_for(
    const std::string& tenant, const TenantConfig& cfg,
    Clock::time_point now) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    Bucket b;
    // A new (or evicted-and-returned) tenant starts with a full burst:
    // bounded over-admit, but it means eviction never turns into a
    // denial-of-service against a tenant that merely idled too long.
    b.tokens = cfg.burst_tokens;
    b.last_refill = now;
    b.configured = opts_.tenants.count(tenant) != 0;
    it = buckets_.emplace(tenant, std::move(b)).first;
    if (!it->second.configured) {
      lru_.push_front(tenant);
      it->second.lru_it = lru_.begin();
      // Bound memory: drop the least-recently-seen default-policy
      // tenant. Configured tenants are never tracked in lru_, so their
      // buckets are stable for the server's lifetime.
      if (lru_.size() > opts_.max_tracked_tenants) {
        buckets_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evicted_tenants;
      }
    }
  } else if (!it->second.configured) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  Bucket& b = it->second;
  const double dt =
      std::chrono::duration<double>(now - b.last_refill).count();
  if (dt > 0.0) {
    b.tokens = std::min(cfg.burst_tokens,
                        b.tokens + dt * cfg.tokens_per_sec);
    b.last_refill = now;
  }
  return b;
}

AdmissionController::Outcome AdmissionController::admit(
    const std::string& tenant, std::size_t rows, Clock::time_point now,
    Clock::time_point deadline, std::size_t queue_depth,
    std::size_t queue_capacity) {
  const TenantConfig& cfg = config_for(tenant);
  Outcome out;
  out.priority = cfg.priority;

  std::lock_guard<std::mutex> lock(mu_);
  if (deadline <= now) {
    out.reason = RejectReason::kDeadlineExpired;
    ++stats_.rejects[static_cast<std::size_t>(out.reason)];
    return out;
  }
  const double watermark =
      opts_.shed_watermark[static_cast<std::size_t>(cfg.priority)];
  if (queue_capacity > 0 && static_cast<double>(queue_depth) >=
                                watermark * static_cast<double>(
                                                queue_capacity)) {
    out.reason = RejectReason::kQueueFull;
    ++stats_.rejects[static_cast<std::size_t>(out.reason)];
    return out;
  }
  if (cfg.tokens_per_sec > 0.0) {
    Bucket& b = bucket_for(tenant, cfg, now);
    if (b.tokens < static_cast<double>(rows)) {
      out.reason = RejectReason::kRateLimited;
      ++stats_.rejects[static_cast<std::size_t>(out.reason)];
      return out;
    }
    b.tokens -= static_cast<double>(rows);
  }
  out.admitted = true;
  ++stats_.admitted;
  return out;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ssma::serve
