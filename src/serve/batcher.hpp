// Dynamic batcher: coalesces queued requests into token batches. A batch
// closes when it reaches `max_batch_tokens` (rounded down to the tile
// alignment) or when `max_wait` has elapsed since its first request —
// the classic throughput/latency dial of serving runtimes. Batches are
// model-affine: a batch only coalesces requests pinned to its first
// request's model handle (never mixing models or bank versions), pulling
// them past other models' queued requests — per-model FIFO is preserved,
// and an oversized compatible request still closes the batch rather than
// being skipped.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/request_queue.hpp"

namespace ssma::serve {

struct BatcherOptions {
  /// Token (activation-row) budget per batch. Requests larger than the
  /// budget still get served — alone, as a batch of one.
  std::size_t max_batch_tokens = 64;
  /// How long a non-full batch waits for more requests before dispatch.
  std::chrono::microseconds max_wait{200};
  /// Rounds the token budget down to a multiple of this (e.g. the number
  /// of tokens the macro's tile plan pipelines per pass); 1 = no rounding.
  std::size_t align_tokens = 1;
  /// Starvation bound for model-affine coalescing: the batcher never
  /// pulls a compatible request past another model's request that has
  /// been queued longer than this (or whose SLO deadline falls within
  /// the batch wait window) — the batch closes instead, letting the
  /// next pop_wait serve the aged head.
  std::chrono::microseconds max_skip_age{2000};
};

struct Batch {
  std::vector<InferenceRequest> requests;
  std::size_t tokens = 0;
  /// Requests dropped during formation because their SLO deadline had
  /// already passed; each was failed with RejectedError
  /// (kDeadlineExpired) before the batch was returned.
  std::size_t expired = 0;
  bool empty() const { return requests.empty(); }
};

class Batcher {
 public:
  explicit Batcher(const BatcherOptions& opts);

  const BatcherOptions& options() const { return opts_; }
  /// Effective per-batch token budget after alignment.
  std::size_t budget_tokens() const { return budget_; }

  /// Blocks for the first request, then drains compatible requests until
  /// the budget or the wait deadline is hit. An empty batch means the
  /// queue is closed and fully drained — the worker should exit.
  Batch next_batch(RequestQueue& queue) const;

 private:
  BatcherOptions opts_;
  std::size_t budget_;
};

}  // namespace ssma::serve
