#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace ssma::serve {

namespace {

// 100 ns base, ratio 1.12 per bucket, 192 buckets -> ~88 s ceiling.
constexpr double kBaseNs = 100.0;
constexpr double kRatio = 1.12;
constexpr std::size_t kBuckets = 192;
const double kLogRatio = std::log(kRatio);

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_of(double ns) const {
  if (ns <= kBaseNs) return 0;
  const auto b =
      static_cast<std::size_t>(std::log(ns / kBaseNs) / kLogRatio) + 1;
  return std::min(b, kBuckets - 1);
}

void LatencyHistogram::add(double ns) {
  ns = std::max(ns, 0.0);
  buckets_[bucket_of(ns)]++;
  count_++;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

double LatencyHistogram::mean_ns() const {
  return count_ ? sum_ns_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile_ns(double p) const {
  SSMA_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  // Nearest-rank: smallest bucket whose cumulative count reaches rank.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= std::max<std::uint64_t>(rank, 1)) {
      if (i == 0) return kBaseNs;
      // Geometric midpoint of the bucket [base*r^(i-1), base*r^i).
      return kBaseNs * std::pow(kRatio, static_cast<double>(i) - 0.5);
    }
  }
  return max_ns_;
}

void Metrics::mark_start() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = Clock::now();
  started_ = true;
  stopped_ = false;
}

void Metrics::mark_stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ && !stopped_) {
    stop_ = Clock::now();
    stopped_ = true;
  }
}

void Metrics::record_batch(const std::string& model, std::size_t tokens,
                           const std::vector<double>& queue_ns,
                           const std::vector<double>& total_ns) {
  SSMA_CHECK(queue_ns.size() == total_ns.size());
  std::lock_guard<std::mutex> lock(mu_);
  batches_++;
  tokens_ += tokens;
  requests_ += queue_ns.size();
  for (double q : queue_ns) queue_latency_.add(q);
  for (double t : total_ns) total_latency_.add(t);
  if (!model.empty()) {
    PerModel& pm = per_model_[model];
    pm.batches++;
    pm.tokens += tokens;
    pm.requests += total_ns.size();
    for (double t : total_ns) pm.total_latency.add(t);
  }
}

void Metrics::restore(std::size_t requests, std::size_t tokens,
                      std::size_t batches) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = requests;
  tokens_ = tokens;
  batches_ = batches;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.requests = requests_;
  s.tokens = tokens_;
  s.batches = batches_;
  if (started_) {
    const auto end = stopped_ ? stop_ : Clock::now();
    s.wall_seconds =
        std::chrono::duration<double>(end - start_).count();
  }
  if (s.wall_seconds > 0.0) {
    s.requests_per_sec = static_cast<double>(requests_) / s.wall_seconds;
    s.tokens_per_sec = static_cast<double>(tokens_) / s.wall_seconds;
  }
  if (batches_ > 0)
    s.mean_batch_tokens =
        static_cast<double>(tokens_) / static_cast<double>(batches_);
  s.p50_us = total_latency_.percentile_ns(50) * 1e-3;
  s.p95_us = total_latency_.percentile_ns(95) * 1e-3;
  s.p99_us = total_latency_.percentile_ns(99) * 1e-3;
  s.mean_us = total_latency_.mean_ns() * 1e-3;
  s.max_us = total_latency_.max_ns() * 1e-3;
  s.queue_p50_us = queue_latency_.percentile_ns(50) * 1e-3;
  s.queue_p99_us = queue_latency_.percentile_ns(99) * 1e-3;
  s.per_model.reserve(per_model_.size());
  for (const auto& kv : per_model_) {  // std::map: sorted by name
    ModelMetricsSnapshot m;
    m.model = kv.first;
    m.requests = kv.second.requests;
    m.tokens = kv.second.tokens;
    m.batches = kv.second.batches;
    m.p50_us = kv.second.total_latency.percentile_ns(50) * 1e-3;
    m.p99_us = kv.second.total_latency.percentile_ns(99) * 1e-3;
    m.mean_us = kv.second.total_latency.mean_ns() * 1e-3;
    s.per_model.push_back(std::move(m));
  }
  return s;
}

const ModelMetricsSnapshot* MetricsSnapshot::for_model(
    const std::string& model) const {
  for (const ModelMetricsSnapshot& m : per_model)
    if (m.model == model) return &m;
  return nullptr;
}

std::string MetricsSnapshot::render() const {
  TextTable t({"metric", "value"});
  t.add_row({"requests", std::to_string(requests)});
  t.add_row({"tokens", std::to_string(tokens)});
  t.add_row({"batches", std::to_string(batches)});
  t.add_row({"wall [s]", TextTable::num(wall_seconds, 3)});
  t.add_row({"requests/s", TextTable::num(requests_per_sec, 1)});
  t.add_row({"tokens/s", TextTable::num(tokens_per_sec, 1)});
  t.add_row({"mean batch [tokens]", TextTable::num(mean_batch_tokens, 2)});
  t.add_row({"latency p50 [us]", TextTable::num(p50_us, 1)});
  t.add_row({"latency p95 [us]", TextTable::num(p95_us, 1)});
  t.add_row({"latency p99 [us]", TextTable::num(p99_us, 1)});
  t.add_row({"latency mean [us]", TextTable::num(mean_us, 1)});
  t.add_row({"latency max [us]", TextTable::num(max_us, 1)});
  t.add_row({"queue p50 [us]", TextTable::num(queue_p50_us, 1)});
  t.add_row({"queue p99 [us]", TextTable::num(queue_p99_us, 1)});
  std::string out = t.render();
  if (!per_model.empty()) {
    TextTable pm({"model", "requests", "tokens", "batches", "p50 [us]",
                  "p99 [us]"});
    for (const ModelMetricsSnapshot& m : per_model)
      pm.add_row({m.model, std::to_string(m.requests),
                  std::to_string(m.tokens), std::to_string(m.batches),
                  TextTable::num(m.p50_us, 1), TextTable::num(m.p99_us, 1)});
    out += "\n" + pm.render();
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << "{\"requests\":" << requests << ",\"tokens\":" << tokens
      << ",\"batches\":" << batches << ",\"wall_seconds\":" << wall_seconds
      << ",\"requests_per_sec\":" << requests_per_sec
      << ",\"tokens_per_sec\":" << tokens_per_sec
      << ",\"mean_batch_tokens\":" << mean_batch_tokens
      << ",\"p50_us\":" << p50_us << ",\"p95_us\":" << p95_us
      << ",\"p99_us\":" << p99_us << ",\"mean_us\":" << mean_us
      << ",\"max_us\":" << max_us << ",\"queue_p50_us\":" << queue_p50_us
      << ",\"queue_p99_us\":" << queue_p99_us << ",\"per_model\":[";
  for (std::size_t i = 0; i < per_model.size(); ++i) {
    const ModelMetricsSnapshot& m = per_model[i];
    if (i) oss << ",";
    oss << "{\"model\":\"" << m.model << "\",\"requests\":" << m.requests
        << ",\"tokens\":" << m.tokens << ",\"batches\":" << m.batches
        << ",\"p50_us\":" << m.p50_us << ",\"p99_us\":" << m.p99_us
        << ",\"mean_us\":" << m.mean_us << "}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace ssma::serve
