#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "telemetry/kernel_profile.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace ssma::serve {

namespace {

// 100 ns base, ratio 1.12 per bucket, 192 buckets -> ~88 s ceiling.
constexpr double kBaseNs = 100.0;
constexpr double kRatio = 1.12;
constexpr std::size_t kBuckets = 192;
const double kLogRatio = std::log(kRatio);

// Locale-independent %.9g — Prometheus values must render identically
// across environments for the golden-file test.
std::string prom_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void prom_header(std::ostringstream& oss, const std::string& name,
                 const std::string& type, const std::string& help) {
  oss << "# HELP " << name << " " << help << "\n";
  oss << "# TYPE " << name << " " << type << "\n";
}

/// Cumulative-bucket histogram exposition in seconds. Only buckets that
/// advance the cumulative count are emitted (plus +Inf), keeping the
/// 192-bucket histograms readable.
void prom_histogram(std::ostringstream& oss, const std::string& name,
                    const LatencyHistogram& h, const std::string& help) {
  prom_header(oss, name, "histogram", help);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    if (h.bucket_count(i) == 0) continue;
    cum += h.bucket_count(i);
    const double upper = LatencyHistogram::bucket_upper_ns(i);
    if (std::isinf(upper)) break;  // folded into +Inf below
    oss << name << "_bucket{le=\"" << prom_num(upper * 1e-9) << "\"} "
        << cum << "\n";
  }
  oss << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
  oss << name << "_sum " << prom_num(h.sum_ns() * 1e-9) << "\n";
  oss << name << "_count " << h.count() << "\n";
}

/// Summary-style quantiles for the per-model slices (full histograms
/// per model would dwarf the exposition).
void prom_model_summary(std::ostringstream& oss, const std::string& name,
                        const std::string& model,
                        const LatencyHistogram& h) {
  for (double q : {0.5, 0.99}) {
    oss << name << "{model=\"" << model << "\",quantile=\"" << prom_num(q)
        << "\"} " << prom_num(h.percentile_ns(q * 100.0) * 1e-9) << "\n";
  }
  oss << name << "_sum{model=\"" << model << "\"} "
      << prom_num(h.sum_ns() * 1e-9) << "\n";
  oss << name << "_count{model=\"" << model << "\"} " << h.count()
      << "\n";
}

std::size_t occupancy_bucket_of(std::size_t tokens) {
  // Power-of-two buckets: le 1, 2, 4, ..., 1024, +Inf.
  std::size_t i = 0;
  std::size_t bound = 1;
  while (i + 1 < Metrics::kOccupancyBuckets && tokens > bound) {
    bound <<= 1;
    ++i;
  }
  return i;
}

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_of(double ns) const {
  if (ns <= kBaseNs) return 0;
  const auto b =
      static_cast<std::size_t>(std::log(ns / kBaseNs) / kLogRatio) + 1;
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_ns(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return kBaseNs * std::pow(kRatio, static_cast<double>(i));
}

void LatencyHistogram::add(double ns) {
  ns = std::max(ns, 0.0);
  buckets_[bucket_of(ns)]++;
  min_ns_ = count_ ? std::min(min_ns_, ns) : ns;
  count_++;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets_[i] += other.buckets_[i];
  if (other.count_)
    min_ns_ = count_ ? std::min(min_ns_, other.min_ns_) : other.min_ns_;
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

double LatencyHistogram::mean_ns() const {
  return count_ ? sum_ns_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile_ns(double p) const {
  SSMA_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  // The extremes are tracked exactly; a bucket midpoint would be off by
  // up to half a bucket even after clamping.
  if (p == 0.0) return min_ns_;
  if (p == 100.0) return max_ns_;
  // Nearest-rank: smallest bucket whose cumulative count reaches rank.
  const auto rank = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(p / 100.0 * static_cast<double>(count_))),
      1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      double v;
      if (i == 0) {
        v = kBaseNs;  // sub-base bucket: clamp below resolves it
      } else if (i == kBuckets - 1) {
        v = max_ns_;  // clamp bucket has no meaningful midpoint
      } else {
        // Geometric midpoint of the bucket [base*r^(i-1), base*r^i).
        v = kBaseNs * std::pow(kRatio, static_cast<double>(i) - 0.5);
      }
      // The observed extrema are exact; no estimate may leave them.
      // Makes single-sample histograms exact at every p and bounds
      // p=0/p=100 regardless of bucket shape (also post-merge, since
      // merge folds min/max).
      return std::clamp(v, min_ns_, max_ns_);
    }
  }
  return max_ns_;
}

void Metrics::mark_start() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = Clock::now();
  started_ = true;
  stopped_ = false;
}

void Metrics::mark_stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ && !stopped_) {
    stop_ = Clock::now();
    stopped_ = true;
  }
}

void Metrics::record_batch(const std::string& model, std::size_t tokens,
                           const std::vector<double>& queue_ns,
                           const std::vector<double>& total_ns) {
  SSMA_CHECK(queue_ns.size() == total_ns.size());
  std::lock_guard<std::mutex> lock(mu_);
  batches_++;
  tokens_ += tokens;
  requests_ += queue_ns.size();
  occupancy_buckets_[occupancy_bucket_of(tokens)]++;
  for (double q : queue_ns) queue_latency_.add(q);
  for (double t : total_ns) total_latency_.add(t);
  if (!model.empty()) {
    PerModel& pm = per_model_[model];
    pm.batches++;
    pm.tokens += tokens;
    pm.requests += total_ns.size();
    for (std::size_t i = 0; i < total_ns.size(); ++i) {
      pm.total_latency.add(total_ns[i]);
      pm.queue_latency.add(queue_ns[i]);
      pm.service_latency.add(std::max(total_ns[i] - queue_ns[i], 0.0));
    }
  }
}

void Metrics::record_journal_append(double ns) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_latency_.add(ns);
}

void Metrics::record_reject(RejectReason reason, std::size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  rejects_[static_cast<std::size_t>(reason)] += n;
}

void Metrics::set_batch_budget(std::size_t tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_budget_tokens_ = tokens;
}

void Metrics::record_shadow(const std::string& model, std::size_t rows,
                            std::size_t drift_rows,
                            std::int64_t max_abs_drift, double live_ns,
                            double shadow_ns) {
  SSMA_CHECK(drift_rows <= rows);
  std::lock_guard<std::mutex> lock(mu_);
  ShadowSlice& s = shadow_[model];
  s.model = model;
  s.rows += rows;
  s.batches++;
  s.drift_rows += drift_rows;
  s.max_abs_drift = std::max(s.max_abs_drift, max_abs_drift);
  s.live_ns_sum += live_ns;
  s.shadow_ns_sum += shadow_ns;
}

void Metrics::restore(std::size_t requests, std::size_t tokens,
                      std::size_t batches) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = requests;
  tokens_ = tokens;
  batches_ = batches;
}

void Metrics::restore(std::size_t requests, std::size_t tokens,
                      std::size_t batches,
                      const std::vector<ShadowSlice>& shadow) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = requests;
  tokens_ = tokens;
  batches_ = batches;
  shadow_.clear();
  for (const ShadowSlice& s : shadow) shadow_[s.model] = s;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.requests = requests_;
  s.tokens = tokens_;
  s.batches = batches_;
  if (started_) {
    const auto end = stopped_ ? stop_ : Clock::now();
    s.wall_seconds =
        std::chrono::duration<double>(end - start_).count();
  }
  if (s.wall_seconds > 0.0) {
    s.requests_per_sec = static_cast<double>(requests_) / s.wall_seconds;
    s.tokens_per_sec = static_cast<double>(tokens_) / s.wall_seconds;
  }
  if (batches_ > 0)
    s.mean_batch_tokens =
        static_cast<double>(tokens_) / static_cast<double>(batches_);
  s.p50_us = total_latency_.percentile_ns(50) * 1e-3;
  s.p95_us = total_latency_.percentile_ns(95) * 1e-3;
  s.p99_us = total_latency_.percentile_ns(99) * 1e-3;
  s.mean_us = total_latency_.mean_ns() * 1e-3;
  s.max_us = total_latency_.max_ns() * 1e-3;
  s.queue_p50_us = queue_latency_.percentile_ns(50) * 1e-3;
  s.queue_p99_us = queue_latency_.percentile_ns(99) * 1e-3;
  s.journal_appends = journal_latency_.count();
  s.journal_p50_us = journal_latency_.percentile_ns(50) * 1e-3;
  s.journal_p99_us = journal_latency_.percentile_ns(99) * 1e-3;
  for (std::size_t i = 0; i < kNumRejectReasons; ++i)
    s.rejects[i] = static_cast<std::size_t>(rejects_[i]);
  s.per_model.reserve(per_model_.size());
  for (const auto& kv : per_model_) {  // std::map: sorted by name
    ModelMetricsSnapshot m;
    m.model = kv.first;
    m.requests = kv.second.requests;
    m.tokens = kv.second.tokens;
    m.batches = kv.second.batches;
    m.p50_us = kv.second.total_latency.percentile_ns(50) * 1e-3;
    m.p99_us = kv.second.total_latency.percentile_ns(99) * 1e-3;
    m.mean_us = kv.second.total_latency.mean_ns() * 1e-3;
    m.queue_p50_us = kv.second.queue_latency.percentile_ns(50) * 1e-3;
    m.queue_p99_us = kv.second.queue_latency.percentile_ns(99) * 1e-3;
    m.service_p50_us = kv.second.service_latency.percentile_ns(50) * 1e-3;
    m.service_p99_us = kv.second.service_latency.percentile_ns(99) * 1e-3;
    s.per_model.push_back(std::move(m));
  }
  s.shadow.reserve(shadow_.size());
  for (const auto& kv : shadow_)  // std::map: sorted by name
    s.shadow.push_back(kv.second);
  return s;
}

std::size_t MetricsSnapshot::total_rejects() const {
  std::size_t n = 0;
  for (std::size_t r : rejects) n += r;
  return n;
}

const ModelMetricsSnapshot* MetricsSnapshot::for_model(
    const std::string& model) const {
  for (const ModelMetricsSnapshot& m : per_model)
    if (m.model == model) return &m;
  return nullptr;
}

std::string MetricsSnapshot::render() const {
  TextTable t({"metric", "value"});
  t.add_row({"requests", std::to_string(requests)});
  t.add_row({"tokens", std::to_string(tokens)});
  t.add_row({"batches", std::to_string(batches)});
  t.add_row({"wall [s]", TextTable::num(wall_seconds, 3)});
  t.add_row({"requests/s", TextTable::num(requests_per_sec, 1)});
  t.add_row({"tokens/s", TextTable::num(tokens_per_sec, 1)});
  t.add_row({"mean batch [tokens]", TextTable::num(mean_batch_tokens, 2)});
  t.add_row({"latency p50 [us]", TextTable::num(p50_us, 1)});
  t.add_row({"latency p95 [us]", TextTable::num(p95_us, 1)});
  t.add_row({"latency p99 [us]", TextTable::num(p99_us, 1)});
  t.add_row({"latency mean [us]", TextTable::num(mean_us, 1)});
  t.add_row({"latency max [us]", TextTable::num(max_us, 1)});
  t.add_row({"queue p50 [us]", TextTable::num(queue_p50_us, 1)});
  t.add_row({"queue p99 [us]", TextTable::num(queue_p99_us, 1)});
  if (journal_appends) {
    t.add_row({"journal p50 [us]", TextTable::num(journal_p50_us, 1)});
    t.add_row({"journal p99 [us]", TextTable::num(journal_p99_us, 1)});
  }
  if (total_rejects()) {
    for (std::size_t i = 0; i < kNumRejectReasons; ++i) {
      if (!rejects[i]) continue;
      t.add_row({std::string("rejects (") +
                     reject_reason_name(static_cast<RejectReason>(i)) +
                     ")",
                 std::to_string(rejects[i])});
    }
  }
  std::string out = t.render();
  if (!per_model.empty()) {
    TextTable pm({"model", "requests", "tokens", "batches", "p50 [us]",
                  "p99 [us]"});
    for (const ModelMetricsSnapshot& m : per_model)
      pm.add_row({m.model, std::to_string(m.requests),
                  std::to_string(m.tokens), std::to_string(m.batches),
                  TextTable::num(m.p50_us, 1), TextTable::num(m.p99_us, 1)});
    out += "\n" + pm.render();
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << "{\"requests\":" << requests << ",\"tokens\":" << tokens
      << ",\"batches\":" << batches << ",\"wall_seconds\":" << wall_seconds
      << ",\"requests_per_sec\":" << requests_per_sec
      << ",\"tokens_per_sec\":" << tokens_per_sec
      << ",\"mean_batch_tokens\":" << mean_batch_tokens
      << ",\"p50_us\":" << p50_us << ",\"p95_us\":" << p95_us
      << ",\"p99_us\":" << p99_us << ",\"mean_us\":" << mean_us
      << ",\"max_us\":" << max_us << ",\"queue_p50_us\":" << queue_p50_us
      << ",\"queue_p99_us\":" << queue_p99_us
      << ",\"journal_appends\":" << journal_appends
      << ",\"journal_p50_us\":" << journal_p50_us
      << ",\"journal_p99_us\":" << journal_p99_us << ",\"rejects\":{";
  for (std::size_t i = 0; i < kNumRejectReasons; ++i) {
    if (i) oss << ",";
    oss << "\"" << reject_reason_name(static_cast<RejectReason>(i))
        << "\":" << rejects[i];
  }
  oss << "},\"per_model\":[";
  for (std::size_t i = 0; i < per_model.size(); ++i) {
    const ModelMetricsSnapshot& m = per_model[i];
    if (i) oss << ",";
    oss << "{\"model\":\"" << m.model << "\",\"requests\":" << m.requests
        << ",\"tokens\":" << m.tokens << ",\"batches\":" << m.batches
        << ",\"p50_us\":" << m.p50_us << ",\"p99_us\":" << m.p99_us
        << ",\"mean_us\":" << m.mean_us
        << ",\"queue_p50_us\":" << m.queue_p50_us
        << ",\"queue_p99_us\":" << m.queue_p99_us
        << ",\"service_p50_us\":" << m.service_p50_us
        << ",\"service_p99_us\":" << m.service_p99_us << "}";
  }
  oss << "]}";
  return oss.str();
}

std::string Metrics::render_prometheus(const PromGauges& gauges) const {
  std::ostringstream oss;

  {
    std::lock_guard<std::mutex> lock(mu_);

    prom_header(oss, "ssma_requests_total", "counter",
                "Requests fulfilled since start (or restored total).");
    oss << "ssma_requests_total " << requests_ << "\n";
    prom_header(oss, "ssma_tokens_total", "counter",
                "Input rows (tokens) processed.");
    oss << "ssma_tokens_total " << tokens_ << "\n";
    prom_header(oss, "ssma_batches_total", "counter",
                "Batches drained by the worker pool.");
    oss << "ssma_batches_total " << batches_ << "\n";
    // All reasons enumerated statically: the exposition's shape never
    // depends on which rejects have occurred (golden-file friendly, and
    // rate() over an always-present series needs no counter resets).
    prom_header(oss, "ssma_rejects_total", "counter",
                "Requests refused, by typed rejection reason.");
    for (std::size_t i = 0; i < kNumRejectReasons; ++i)
      oss << "ssma_rejects_total{reason=\""
          << reject_reason_name(static_cast<RejectReason>(i)) << "\"} "
          << rejects_[i] << "\n";

    prom_header(oss, "ssma_queue_depth", "gauge",
                "Requests currently waiting in the admission queue.");
    oss << "ssma_queue_depth " << gauges.queue_depth << "\n";
    prom_header(oss, "ssma_queue_capacity", "gauge",
                "Admission queue capacity.");
    oss << "ssma_queue_capacity " << gauges.queue_capacity << "\n";
    prom_header(oss, "ssma_workers", "gauge",
                "Live worker shards.");
    oss << "ssma_workers " << gauges.workers << "\n";
    prom_header(oss, "ssma_worker_respawns_total", "counter",
                "Worker shards respawned after a crash.");
    oss << "ssma_worker_respawns_total " << gauges.worker_respawns
        << "\n";
    prom_header(oss, "ssma_trace_enabled", "gauge",
                "1 when the span-tracing session is enabled.");
    oss << "ssma_trace_enabled " << (gauges.trace_enabled ? 1 : 0)
        << "\n";
    if (gauges.repl_role != 0) {
      prom_header(oss, "ssma_repl_role", "gauge",
                  "Replication role: 1 streaming leader, 2 promoted "
                  "follower.");
      oss << "ssma_repl_role " << gauges.repl_role << "\n";
      if (gauges.repl_role == 1) {
        prom_header(oss, "ssma_repl_leader_seq", "gauge",
                    "Newest locally durable journal sequence number.");
        oss << "ssma_repl_leader_seq " << gauges.repl_leader_seq << "\n";
        prom_header(oss, "ssma_repl_replicated_seq", "gauge",
                    "Replication watermark (max follower ack).");
        oss << "ssma_repl_replicated_seq " << gauges.repl_replicated_seq
            << "\n";
        prom_header(oss, "ssma_repl_followers", "gauge",
                    "Handshaken live follower connections.");
        oss << "ssma_repl_followers " << gauges.repl_followers << "\n";
        prom_header(oss, "ssma_repl_lag_records", "gauge",
                    "Durable records not yet past the watermark.");
        oss << "ssma_repl_lag_records " << gauges.repl_lag_records
            << "\n";
        prom_header(oss, "ssma_repl_lag_bytes", "gauge",
                    "Journal bytes not yet past the watermark.");
        oss << "ssma_repl_lag_bytes " << gauges.repl_lag_bytes << "\n";
        prom_header(oss, "ssma_repl_lag_seconds", "gauge",
                    "Age of the oldest unreplicated record.");
        oss << "ssma_repl_lag_seconds " << gauges.repl_lag_seconds
            << "\n";
        prom_header(oss, "ssma_repl_checkpoints_shipped_total",
                    "counter", "Checkpoint files shipped to followers.");
        oss << "ssma_repl_checkpoints_shipped_total "
            << gauges.repl_checkpoints_shipped << "\n";
        prom_header(oss, "ssma_repl_sync_degraded_total", "counter",
                    "Acked-write watermark waits that timed out and "
                    "degraded to async.");
        oss << "ssma_repl_sync_degraded_total "
            << gauges.repl_sync_degraded << "\n";
      } else {
        prom_header(oss, "ssma_repl_applied_records", "gauge",
                    "Accepted records replayed into the standby before "
                    "promotion.");
        oss << "ssma_repl_applied_records "
            << gauges.repl_applied_records << "\n";
        prom_header(oss, "ssma_repl_apply_rate_hz", "gauge",
                    "Follower apply rate over the streaming phase.");
        oss << "ssma_repl_apply_rate_hz " << gauges.repl_apply_rate_hz
            << "\n";
      }
    }
    prom_header(oss, "ssma_batch_budget_tokens", "gauge",
                "Batcher token budget (occupancy denominator).");
    oss << "ssma_batch_budget_tokens " << batch_budget_tokens_ << "\n";

    prom_histogram(oss, "ssma_request_latency_seconds", total_latency_,
                   "End-to-end latency, enqueue to fulfilled.");
    prom_histogram(oss, "ssma_queue_wait_seconds", queue_latency_,
                   "Time waiting in the queue before batch pickup.");
    prom_histogram(oss, "ssma_journal_append_seconds", journal_latency_,
                   "Write-ahead journal append (incl. flush).");

    prom_header(oss, "ssma_batch_tokens", "histogram",
                "Tokens per drained batch (occupancy).");
    std::uint64_t cum = 0;
    std::size_t bound = 1;
    for (std::size_t i = 0; i < kOccupancyBuckets; ++i) {
      cum += occupancy_buckets_[i];
      if (i + 1 < kOccupancyBuckets) {
        oss << "ssma_batch_tokens_bucket{le=\"" << bound << "\"} " << cum
            << "\n";
        bound <<= 1;
      } else {
        oss << "ssma_batch_tokens_bucket{le=\"+Inf\"} " << cum << "\n";
      }
    }
    oss << "ssma_batch_tokens_sum " << tokens_ << "\n";
    oss << "ssma_batch_tokens_count " << batches_ << "\n";

    if (!per_model_.empty()) {
      prom_header(oss, "ssma_model_requests_total", "counter",
                  "Requests fulfilled per model.");
      for (const auto& kv : per_model_)
        oss << "ssma_model_requests_total{model=\"" << kv.first << "\"} "
            << kv.second.requests << "\n";
      prom_header(oss, "ssma_model_tokens_total", "counter",
                  "Tokens processed per model.");
      for (const auto& kv : per_model_)
        oss << "ssma_model_tokens_total{model=\"" << kv.first << "\"} "
            << kv.second.tokens << "\n";
      prom_header(oss, "ssma_model_latency_seconds", "summary",
                  "End-to-end latency per model.");
      for (const auto& kv : per_model_)
        prom_model_summary(oss, "ssma_model_latency_seconds", kv.first,
                           kv.second.total_latency);
      prom_header(oss, "ssma_model_queue_wait_seconds", "summary",
                  "Queue wait per model.");
      for (const auto& kv : per_model_)
        prom_model_summary(oss, "ssma_model_queue_wait_seconds", kv.first,
                           kv.second.queue_latency);
      prom_header(oss, "ssma_model_service_seconds", "summary",
                  "Service time (total minus queue wait) per model.");
      for (const auto& kv : per_model_)
        prom_model_summary(oss, "ssma_model_service_seconds", kv.first,
                           kv.second.service_latency);
    }

    // Shadow-rollout block: present only once a rollout has mirrored
    // traffic (same shape-stability rule as the per-model slices).
    if (!shadow_.empty()) {
      prom_header(oss, "ssma_shadow_rows_total", "counter",
                  "Rows mirrored through the staged candidate bank.");
      for (const auto& kv : shadow_)
        oss << "ssma_shadow_rows_total{model=\"" << kv.first << "\"} "
            << kv.second.rows << "\n";
      prom_header(oss, "ssma_shadow_batches_total", "counter",
                  "Shadow comparison batches per model.");
      for (const auto& kv : shadow_)
        oss << "ssma_shadow_batches_total{model=\"" << kv.first << "\"} "
            << kv.second.batches << "\n";
      prom_header(oss, "ssma_shadow_drift_rows_total", "counter",
                  "Mirrored rows whose outputs diverged from live.");
      for (const auto& kv : shadow_)
        oss << "ssma_shadow_drift_rows_total{model=\"" << kv.first
            << "\"} " << kv.second.drift_rows << "\n";
      prom_header(oss, "ssma_shadow_max_abs_drift", "gauge",
                  "Worst per-element |live - shadow| accumulator delta.");
      for (const auto& kv : shadow_)
        oss << "ssma_shadow_max_abs_drift{model=\"" << kv.first << "\"} "
            << kv.second.max_abs_drift << "\n";
      prom_header(oss, "ssma_shadow_seconds_total", "counter",
                  "Service time of compared rows, live vs shadow bank.");
      for (const auto& kv : shadow_) {
        oss << "ssma_shadow_seconds_total{model=\"" << kv.first
            << "\",side=\"live\"} "
            << prom_num(kv.second.live_ns_sum * 1e-9) << "\n";
        oss << "ssma_shadow_seconds_total{model=\"" << kv.first
            << "\",side=\"shadow\"} "
            << prom_num(kv.second.shadow_ns_sum * 1e-9) << "\n";
      }
    }
  }

  // Per-tier kernel dispatch counters (zero when tracing is compiled
  // out or nothing ran). All tiers are enumerated statically so the
  // exposition's shape does not depend on the host CPU.
  const auto prof = telemetry::kernel_profile_snapshot();
  struct KernelRow {
    const char* name;
    const char* help;
    const telemetry::KernelCounters* tiers;
  };
  const KernelRow rows[] = {
      {"ssma_kernel_lut", "LUT accumulate kernel dispatches", prof.lut},
      {"ssma_kernel_encode", "Hash-tree encoder dispatches",
       prof.encode},
  };
  for (const KernelRow& row : rows) {
    const std::string base = row.name;
    prom_header(oss, base + "_calls_total", "counter",
                std::string(row.help) + " (calls).");
    for (int t = 0; t < telemetry::kNumKernelTiers; ++t)
      oss << base << "_calls_total{tier=\""
          << telemetry::kernel_tier_label(t) << "\"} "
          << row.tiers[t].calls << "\n";
    prom_header(oss, base + "_rows_total", "counter",
                std::string(row.help) + " (rows).");
    for (int t = 0; t < telemetry::kNumKernelTiers; ++t)
      oss << base << "_rows_total{tier=\""
          << telemetry::kernel_tier_label(t) << "\"} " << row.tiers[t].rows
          << "\n";
    prom_header(oss, base + "_bytes_total", "counter",
                std::string(row.help) + " (table bytes touched).");
    for (int t = 0; t < telemetry::kNumKernelTiers; ++t)
      oss << base << "_bytes_total{tier=\""
          << telemetry::kernel_tier_label(t) << "\"} "
          << row.tiers[t].bytes << "\n";
    prom_header(oss, base + "_seconds_total", "counter",
                std::string(row.help) + " (wall time).");
    for (int t = 0; t < telemetry::kNumKernelTiers; ++t)
      oss << base << "_seconds_total{tier=\""
          << telemetry::kernel_tier_label(t) << "\"} "
          << prom_num(static_cast<double>(row.tiers[t].ns) * 1e-9)
          << "\n";
  }

  return oss.str();
}

}  // namespace ssma::serve
