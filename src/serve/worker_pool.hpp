// Share-nothing worker pool: N threads, each owning a private
// core::Accelerator and its own maddness::Amm replica (reconstructed from
// the serialized operator, never shared), draining token batches from the
// request queue and fulfilling the requests' futures. Results are
// bit-exact and deterministic per request regardless of which shard
// serves it — MADDNESS decode is row-independent, so any partition of
// requests across workers yields identical outputs.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "maddness/amm.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace ssma::serve {

/// How a worker computes a batch.
enum class ExecutionMode {
  /// Software kernel (Amm::apply_int16): the hardware-exact reference
  /// arithmetic at host speed. Default for throughput serving.
  kKernel,
  /// Full event-driven macro simulation (core::Accelerator::run): same
  /// bits, plus per-batch PPA accounting merged into the pool report.
  kSimulate,
  /// Hardware-in-the-loop pacing: outputs come from the kernel, but the
  /// worker then blocks until its private device's service time for the
  /// batch has elapsed (`device_ns_per_token`), like a host thread
  /// waiting on a real macro. Pool throughput then measures how well
  /// the runtime overlaps N devices, independent of host core count.
  kDevicePaced,
};

struct WorkerPoolOptions {
  int num_workers = 4;
  ExecutionMode mode = ExecutionMode::kKernel;
  core::AcceleratorOptions accel;  ///< macro shape for kSimulate shards
  BatcherOptions batcher;
  /// kDevicePaced only: modeled device service time per token. 0 = use
  /// the analytic model's average token interval for `accel`.
  double device_ns_per_token = 0.0;
};

class WorkerPool {
 public:
  /// `amm_blob` is the serialized trained operator (Amm::save); each
  /// worker deserializes its own replica from it at start().
  WorkerPool(std::string amm_blob, RequestQueue& queue, Metrics& metrics,
             const WorkerPoolOptions& opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the worker threads (idempotent-hostile: call once).
  void start();
  /// Waits for all workers to drain the (closed) queue and exit.
  void join();

  int num_workers() const { return opts_.num_workers; }
  const WorkerPoolOptions& options() const { return opts_; }

  /// Pool-aggregate PPA report. Only meaningful in kSimulate mode
  /// (kernel/paced shards run no macro, so their reports stay
  /// default-empty). Valid after join().
  core::PpaReport aggregate_report() const;
  /// Per-shard reports, index == worker id. Valid after join().
  const std::vector<core::PpaReport>& shard_reports() const {
    return shard_reports_;
  }
  /// Tokens served per shard (load-balance visibility). Valid after join().
  const std::vector<std::size_t>& shard_tokens() const {
    return shard_tokens_;
  }

 private:
  void worker_main(int worker_id);

  std::string amm_blob_;
  RequestQueue& queue_;
  Metrics& metrics_;
  WorkerPoolOptions opts_;
  std::vector<std::thread> threads_;
  std::vector<core::PpaReport> shard_reports_;
  std::vector<std::size_t> shard_tokens_;
  bool joined_ = false;
};

}  // namespace ssma::serve
