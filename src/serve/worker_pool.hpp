// Sharded worker pool over the Engine API: N threads, each owning a
// private engine::ExecutionEngine (created from the pool's
// EngineOptions), draining token batches from the request queue and
// fulfilling the requests' futures. Every request carries a pinned
// ModelRef, so a worker computes each batch on exactly the bank the
// request resolved at admission — results are bit-exact and
// deterministic per request regardless of which shard serves it, and a
// version hot-swap never retroactively changes an in-flight batch.
//
// Fault tolerance (opt-in via WorkerPoolOptions::supervise): each shard
// parks its current batch in a per-shard in-flight slot before
// executing it. A supervisor thread watches for shards that die at an
// injected (or real) fault, joins the dead thread, pushes its
// in-flight requests back to the head of the queue, and respawns the
// shard with a fresh engine. Requeued requests keep their pinned model
// handles, so crash recovery is invisible to clients beyond latency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ppa_report.hpp"
#include "engine/execution_engine.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace ssma::serve {

namespace recovery {
class FaultInjector;
class RequestJournal;
}  // namespace recovery

namespace replication {
class ReplicationLog;
}  // namespace replication

/// Backwards-compatible name for the backend selector that used to live
/// here as an enum-switch; prefer engine::Backend in new code.
using ExecutionMode [[deprecated("use engine::Backend")]] =
    engine::Backend;

/// Post-ack tap on the worker hot path. `on_batch` runs on the shard
/// thread after the batch's futures are fulfilled, with the stitched
/// activation codes and the output accumulators still alive — an
/// implementation MUST NOT block or allocate (the rollout sampler uses
/// try-lock + preallocated buffers) or it taxes serving latency.
class BatchObserver {
 public:
  virtual ~BatchObserver() = default;
  /// `q` is the batch's stitched activation matrix at the live model's
  /// scale, `out` the rows x nout int16 outputs, `service_ns` the
  /// execute-through-ack wall time for the whole batch.
  virtual void on_batch(const engine::ModelHandle& model,
                        const maddness::QuantizedActivations& q,
                        const std::vector<std::int16_t>& out,
                        double service_ns) = 0;
};

struct WorkerPoolOptions {
  int num_workers = 4;
  /// Backend + macro shape + pacing for every shard's private engine.
  engine::EngineOptions engine;
  BatcherOptions batcher;

  // --- fault tolerance (none owned) ---
  recovery::FaultInjector* fault = nullptr;
  /// Ack records (request id + output CRC) are appended here.
  recovery::RequestJournal* journal = nullptr;
  /// When set, the ack stage first waits for the batch's journal
  /// records to replicate past the configured watermark (sync/window
  /// acked-write semantics).
  replication::ReplicationLog* replication = nullptr;
  /// Spawn the supervisor thread: detect dead shards, requeue their
  /// in-flight batch, respawn. Without it a crashed shard's in-flight
  /// futures fail at join().
  bool supervise = false;
  /// Per-shard respawn budget before the shard is declared dead for
  /// good (its in-flight futures then fail instead of requeueing).
  int max_respawns_per_shard = 3;
};

class WorkerPool {
 public:
  WorkerPool(RequestQueue& queue, Metrics& metrics,
             const WorkerPoolOptions& opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the worker threads — and the supervisor, when enabled
  /// (idempotent-hostile: call once).
  void start();
  /// Waits for all workers to drain the (closed) queue and exit, then
  /// fails any futures still parked in dead shards' in-flight slots.
  void join();

  int num_workers() const { return opts_.num_workers; }
  const WorkerPoolOptions& options() const { return opts_; }

  /// Swap the ack journal on a running pool (promotion attaches the
  /// follower's journal while workers serve). Workers load it per
  /// record, so the switch takes effect on the next ack.
  void set_journal(recovery::RequestJournal* journal) {
    journal_.store(journal, std::memory_order_release);
  }
  /// Same, for the leader-side replication ack gate.
  void set_replication(replication::ReplicationLog* repl) {
    replication_.store(repl, std::memory_order_release);
  }
  /// Attach (or detach, with nullptr) the post-ack batch tap. Workers
  /// load it per batch, so attachment takes effect on the next batch.
  void set_observer(BatchObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  /// Total shard respawns performed by the supervisor.
  int respawn_count() const {
    return respawns_total_.load(std::memory_order_relaxed);
  }

  /// Pool-aggregate PPA report. Only meaningful when the engine backend
  /// collects PPA (kSimulate — kernel/paced engines report
  /// default-empty). Valid after join().
  core::PpaReport aggregate_report() const;
  /// Per-shard reports, index == worker id. Valid after join().
  const std::vector<core::PpaReport>& shard_reports() const {
    return shard_reports_;
  }
  /// Tokens served per shard (load-balance visibility). Valid after join().
  const std::vector<std::size_t>& shard_tokens() const {
    return shard_tokens_;
  }

 private:
  enum class ShardStatus { kNotStarted, kRunning, kCrashed, kExited, kDead };

  /// Per-shard supervision state. `status` and `thread` are guarded by
  /// sup_mu_; `in_flight` is owned by the shard thread while running
  /// and only touched by the supervisor / join() after that thread has
  /// been joined (the join provides the happens-before edge).
  struct ShardSlot {
    std::thread thread;
    ShardStatus status = ShardStatus::kNotStarted;
    std::vector<InferenceRequest> in_flight;
    int respawns = 0;
  };

  void worker_main(int worker_id);
  void supervisor_main();
  void spawn_worker(int worker_id);
  /// Marks this shard crashed and wakes the supervisor. Called by the
  /// shard thread itself on a fatal injected fault.
  void report_crash(int worker_id);
  void report_exit(int worker_id);
  /// Fails every promise in `reqs` with a runtime_error.
  static void fail_requests(std::vector<InferenceRequest>& reqs,
                            const std::string& why);

  RequestQueue& queue_;
  Metrics& metrics_;
  WorkerPoolOptions opts_;
  /// Live views of opts_.journal / opts_.replication, swappable while
  /// workers run (see set_journal / set_replication).
  std::atomic<recovery::RequestJournal*> journal_{nullptr};
  std::atomic<replication::ReplicationLog*> replication_{nullptr};
  std::atomic<BatchObserver*> observer_{nullptr};
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::thread supervisor_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  std::atomic<int> respawns_total_{0};
  std::vector<core::PpaReport> shard_reports_;
  std::vector<std::size_t> shard_tokens_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace ssma::serve
