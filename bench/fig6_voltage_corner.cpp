// Reproduces Fig. 6: energy efficiency (TOPS/W) vs area efficiency
// (TOPS/mm^2) of the proposed macro (Ndec=4, NS=4) across supply voltages
// 0.5-1.0 V and process corners TTG/FFG/SSG/SFG/FSG, best/worst encoder
// cases, with the paper's TTG averages printed side by side.
#include <cstdio>

#include "core/experiments.hpp"
#include "ppa/corner.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssma;

  std::printf(
      "== Fig. 6: efficiency across supply voltages and process corners ==\n"
      "Config: Ndec=4, NS=4, 25 degC (paper Sec. IV)\n\n");

  const auto points = core::run_fig6_sweep();

  TextTable t({"VDD [V]", "corner", "TOPS/W (best)", "TOPS/W (worst)",
               "TOPS/W (avg)", "TOPS/mm2 (best)", "TOPS/mm2 (worst)",
               "TOPS/mm2 (avg)"});
  for (const auto& p : points) {
    t.add_row({TextTable::num(p.vdd, 1), ppa::corner_name(p.corner),
               TextTable::num(p.best_tops_per_w, 1),
               TextTable::num(p.worst_tops_per_w, 1),
               TextTable::num(p.avg_tops_per_w, 1),
               TextTable::num(p.best_tops_per_mm2, 2),
               TextTable::num(p.worst_tops_per_mm2, 2),
               TextTable::num(p.avg_tops_per_mm2, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("-- TTG averages vs paper (dashed line of Fig. 6) --\n");
  TextTable cmp({"VDD [V]", "TOPS/W (ours)", "TOPS/W (paper)", "delta",
                 "TOPS/mm2 (ours)", "TOPS/mm2 (paper)", "delta"});
  const auto golden = core::fig6_paper_values();
  for (const auto& g : golden) {
    // Find the TTG point at this voltage.
    for (const auto& p : points) {
      if (p.corner != ppa::Corner::TTG || p.vdd != g.vdd) continue;
      const double dw = (p.avg_tops_per_w - g.tops_per_w) / g.tops_per_w;
      const double da =
          (p.avg_tops_per_mm2 - g.tops_per_mm2) / g.tops_per_mm2;
      cmp.add_row({TextTable::num(g.vdd, 1),
                   TextTable::num(p.avg_tops_per_w, 1),
                   TextTable::num(g.tops_per_w, 1), TextTable::pct(dw),
                   TextTable::num(p.avg_tops_per_mm2, 2),
                   TextTable::num(g.tops_per_mm2, 2), TextTable::pct(da)});
    }
  }
  std::printf("%s\n", cmp.render().c_str());
  std::printf(
      "Shape checks: efficiency falls / throughput-density rises\n"
      "monotonically with VDD; TOPS/W is nearly corner-invariant while\n"
      "TOPS/mm2 spreads FFG > TTG > SSG, as in the paper.\n");
  return 0;
}
