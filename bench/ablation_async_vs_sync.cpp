// Ablation for the architectural claim of Sec. III-A: the self-
// synchronous pipeline runs at data-dependent average-case speed while a
// clock-synchronous implementation of the identical datapath must clock
// at guard-banded worst-case speed. Sweeps data regimes (best-case,
// random, worst-case) and clock margins.
#include <cstdio>

#include "sim/clocked_macro.hpp"
#include "sim/macro.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

namespace {

std::vector<maddness::HashTree> mid_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

std::vector<std::vector<std::array<std::int8_t, 16>>> rand_luts(Rng& rng,
                                                                int ns,
                                                                int ndec) {
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return luts;
}

std::vector<std::vector<sim::Subvec>> inputs_for(const std::string& regime,
                                                 Rng& rng, int tokens,
                                                 int ns) {
  std::vector<std::vector<sim::Subvec>> in(tokens,
                                           std::vector<sim::Subvec>(ns));
  for (auto& tok : in)
    for (auto& sv : tok)
      for (auto& v : sv) {
        if (regime == "best")
          v = 0x00;  // every DLC resolves at the MSB
        else if (regime == "worst")
          v = 0x80;  // equality: full ripple
        else
          v = static_cast<std::uint8_t>(rng.next_int(0, 255));
      }
  return in;
}

}  // namespace

int main() {
  const int ndec = 8, ns = 8, tokens = 40;
  Rng rng(7);
  const auto trees = mid_trees(ns);
  const auto luts = rand_luts(rng, ns, ndec);

  std::printf(
      "== Ablation: self-synchronous vs clock-synchronous pipeline ==\n"
      "Same datapath, same LUTs, bit-identical outputs; only the schedule\n"
      "differs. Ndec=%d, NS=%d, 0.5 V TTG.\n\n",
      ndec, ns);

  TextTable t({"data regime", "async interval [ns]", "async TOPS",
               "sync period [ns] (10% margin)", "sync TOPS",
               "async speedup"});

  for (const std::string regime : {"best", "random", "worst"}) {
    Rng drng(17);
    const auto inputs = inputs_for(regime, drng, tokens, ns);

    sim::MacroConfig mc;
    mc.ndec = ndec;
    mc.ns = ns;
    sim::Macro amacro(mc);
    amacro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    const auto ares = amacro.run(inputs);
    const double a_int = ares.stats.output_interval_ns.mean();
    const double ops = static_cast<double>(ns) * ndec * 18.0;
    const double a_tops = ops / a_int * 1e-3;

    sim::ClockedMacro cmacro({ndec, ns, ppa::nominal_05v(), 0.10});
    cmacro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    const auto cres = cmacro.run(inputs);

    // Outputs must agree bit-exactly.
    if (cres.outputs != ares.outputs) {
      std::printf("ERROR: output mismatch between async and sync models\n");
      return 1;
    }

    t.add_row({regime, TextTable::num(a_int, 2), TextTable::num(a_tops, 3),
               TextTable::num(cres.clock_period_ns, 2),
               TextTable::num(cres.throughput_tops, 3),
               TextTable::num(cres.clock_period_ns / a_int, 2) + "x"});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The async pipeline tracks the data: on random activations it runs\n"
      "well below the worst case, which a clocked design must provision\n"
      "for every cycle (plus margin). This is the latency mechanism behind\n"
      "the paper's 'self-synchronous pipeline accumulation' contribution.\n");
  return 0;
}
